"""Columnar (structure-of-arrays) storage for KPE relations.

The tuple representation ``(oid, xl, yl, xh, yh)`` is what the paper's
pseudo-code manipulates and what every driver streams through partition
files; it is also what makes the hot loops slow, because each predicate
evaluation is a Python-level tuple indexing.  A :class:`ColumnarRelation`
holds the same records as five parallel numpy arrays (``oid`` as int64,
the four coordinates as float64), which is the layout every kernel in this
package operates on: sorting is one ``argsort``, window location is one
``searchsorted``, the y-overlap predicate is one boolean mask.

Converters are loss-free in both directions; ``to_kpes`` returns
:class:`~repro.core.rect.KPE` named tuples, so a columnar round trip is
invisible to tuple-based code.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Sequence, Tuple

from repro.core.rect import KPE
from repro.kernels.backend import require_numpy


class ColumnarRelation:
    """A relation of KPEs as five parallel numpy columns.

    ``sorted_by_xl`` records whether the rows are known to be in
    ascending ``xl`` order — the precondition of the forward-scan kernel.
    """

    __slots__ = ("oid", "xl", "yl", "xh", "yh", "sorted_by_xl")

    def __init__(
        self,
        oid: Any,
        xl: Any,
        yl: Any,
        xh: Any,
        yh: Any,
        sorted_by_xl: bool = False,
    ) -> None:
        self.oid = oid
        self.xl = xl
        self.yl = yl
        self.xh = xh
        self.yh = yh
        self.sorted_by_xl = sorted_by_xl

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_kpes(cls, kpes: Sequence[Tuple]) -> "ColumnarRelation":
        """Build columns from a sequence of KPE tuples.

        Relations that already carry columns — a
        :class:`~repro.kernels.mmapstore.MappedRelation` over an ``.rcd``
        file — short-circuit to them: no per-tuple conversion, the
        kernels (and the shm packer, and serve's pinning) consume the
        mapped arrays directly.
        """
        columnar = getattr(kpes, "columnar", None)
        if isinstance(columnar, cls):
            return columnar
        np = require_numpy()
        n = len(kpes)
        if n == 0:
            return cls(
                np.empty(0, dtype=np.int64),
                *(np.empty(0, dtype=np.float64) for _ in range(4)),
            )
        # One flat fromiter for the coordinates (markedly faster than
        # np.asarray on a list of tuples); oids are converted separately
        # so integer identifiers stay exact.
        flat = np.fromiter(
            itertools.chain.from_iterable(kpes), dtype=np.float64, count=5 * n
        )
        table = flat.reshape(n, 5)
        oid = np.fromiter((k[0] for k in kpes), dtype=np.int64, count=n)
        return cls(
            oid,
            np.ascontiguousarray(table[:, 1]),
            np.ascontiguousarray(table[:, 2]),
            np.ascontiguousarray(table[:, 3]),
            np.ascontiguousarray(table[:, 4]),
        )

    @property
    def n(self) -> int:
        return int(self.oid.shape[0])

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # conversion back
    # ------------------------------------------------------------------
    def to_kpes(self) -> List[KPE]:
        """The relation as KPE named tuples (loss-free round trip)."""
        return [
            KPE(o, a, b, c, d)
            for o, a, b, c, d in zip(
                self.oid.tolist(),
                self.xl.tolist(),
                self.yl.tolist(),
                self.xh.tolist(),
                self.yh.tolist(),
            )
        ]

    # ------------------------------------------------------------------
    # kernel preconditions
    # ------------------------------------------------------------------
    def sort_by_xl(self) -> "ColumnarRelation":
        """A copy ordered by ``xl`` (stable, so equal keys keep input order)."""
        np = require_numpy()
        if self.sorted_by_xl:
            return self
        order = np.argsort(self.xl, kind="stable")
        return ColumnarRelation(
            self.oid[order],
            self.xl[order],
            self.yl[order],
            self.xh[order],
            self.yh[order],
            sorted_by_xl=True,
        )


def from_kpes(kpes: Sequence[Tuple]) -> ColumnarRelation:
    """Module-level alias of :meth:`ColumnarRelation.from_kpes`."""
    return ColumnarRelation.from_kpes(kpes)
