"""Vectorized two-layer corner-class duplicate avoidance.

The columnar counterpart of :mod:`repro.pbsm.twolayer`: class assignment
is two array comparisons per replica over the tile arrays, and the nine
cross-class mini-joins are class-partitioned *slices* fed straight into
the existing forward-scan kernel — no reference-point test, no dedup
sort, nothing per pair.

Pipeline per partition task:

1. sort both inputs by ``xl`` (charged once, exactly like the RPM kernel);
2. replay the tile arithmetic of :class:`repro.pbsm.grid.TileGrid` with
   the vectorized helpers of :mod:`repro.kernels.rpm` (bit-identical tile
   indices, the property the parity tests pin down), expand each record
   into its overlapped tiles, and keep the replicas landing in tiles
   mapped to the task's partition;
3. classify every replica with two comparisons
   (``home_tx < tx``, ``home_ty < ty``) and group replicas by
   ``(tile, class)`` with one stable argsort — stability preserves the
   ``xl`` order inside each group, so every group is forward-scan ready
   as a plain slice;
4. per tile present on both sides, run the nine mini-joins of
   :data:`~repro.pbsm.twolayer.MINI_JOIN_SCHEDULE` through
   :func:`~repro.kernels.sweep.forward_scan_batches`; a mini-join below
   the striping floor additionally probes both sweep axes and runs
   *transposed* when y-anchored windows are cheaper (:func:`_best_axis`)
   — unstriped, but with y-pruning intact, closing the coarse-grid gap
   against RPM's single striped per-tile scan.

**Stripe splitting** composes with avoidance without touching ownership:
a split part receives a contiguous, work-balanced range of the task's
mini-join sequence (every part derives the identical plan from the
identical inputs), and a mini-join straddling a part boundary is shared
by handing each covering part a stripe sub-slice of that one scan —
ownership stays the tile's, the stripes only restrict the sweep range,
and concatenating the parts in order reproduces the unsplit output byte
for byte.  The classification/layout work is charged once, to part 0,
under the same charge-once convention as the RPM kernel's sorts.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.internal.sweep_list import sweep_list_join
from repro.kernels.backend import get_numpy, require_numpy
from repro.kernels.columnar import ColumnarRelation
from repro.kernels.rpm import point_tiles, tile_partitions
from repro.kernels.sweep import (
    DEFAULT_BATCH_CANDIDATES,
    STRIPE_MIN_RECORDS,
    _charge_batch_sort,
    forward_scan_batches,
    sorted_columns,
)
from repro.pbsm.grid import TileGrid
from repro.pbsm.twolayer import MINI_JOIN_SCHEDULE, twolayer_partition_join

#: Array operations charged per input record for the vectorized tile
#: ranges (two tile computations per corner pair, widths, replica counts).
CLASSIFY_BATCH_OPS_PER_RECORD = 6

#: Array operations charged per expanded replica: tile enumeration (3),
#: partition hash + filter (2), the two class comparisons, group key (1).
CLASSIFY_BATCH_OPS_PER_REPLICA = 8

#: Below this many records per mini-join the sweep-axis probe costs more
#: than the candidate reduction it can buy; tiny scans just run x-anchored.
AXIS_PROBE_MIN_RECORDS = 64

#: ``(a_lo, a_hi, b_lo, b_hi)`` — one mini-join as slices into the
#: gathered, (tile, class)-grouped replica arrays.
MiniJoin = Tuple[int, int, int, int]


def _classify(
    np: Any,
    rel: ColumnarRelation,
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
) -> Tuple[Any, Any]:
    """Expand *rel* into per-tile replicas of partition *pid*, classified.

    Returns ``(orig, key)``: ``orig`` are indices into *rel* grouped by
    ``key = (ty * nx + tx) * 4 + class`` in ascending key order.  The
    stable grouping sort keeps the ``xl`` order of *rel* inside every
    group, so slices of the gathered columns are forward-scan ready.
    """
    txl, tyl = point_tiles(np, grid, rel.xl, rel.yl)
    txh, tyh = point_tiles(np, grid, rel.xh, rel.yh)
    widths = txh - txl + 1
    counts = widths * (tyh - tyl + 1)
    total = int(counts.sum())
    orig = np.repeat(np.arange(rel.n), counts)
    offsets = np.cumsum(counts) - counts
    flat = np.arange(total) - np.repeat(offsets, counts)
    w = widths[orig]
    tx = txl[orig] + flat % w
    ty = tyl[orig] + flat // w
    keep = tile_partitions(np, grid, tx, ty) == pid
    orig = orig[keep]
    tx = tx[keep]
    ty = ty[keep]
    cls = (txl[orig] < tx).astype(np.int64) + 2 * (tyl[orig] < ty)
    key = (ty * grid.nx + tx) * 4 + cls
    order = np.argsort(key, kind="stable")
    counters.batch_ops += (
        CLASSIFY_BATCH_OPS_PER_RECORD * rel.n
        + CLASSIFY_BATCH_OPS_PER_REPLICA * total
    )
    _charge_batch_sort(counters, total)
    return orig[order], key[order]


def _gather(rel: ColumnarRelation, orig: Any) -> ColumnarRelation:
    """The grouped replica columns (xl-sorted inside every group)."""
    return ColumnarRelation(
        rel.oid[orig],
        rel.xl[orig],
        rel.yl[orig],
        rel.xh[orig],
        rel.yh[orig],
        sorted_by_xl=True,
    )


def _mini_joins(
    np: Any, a_key: Any, b_key: Any
) -> Tuple[List[MiniJoin], List[int]]:
    """The task's mini-join sequence and per-mini-join work weights.

    Tiles run in ascending key (row-major) order, classes in schedule
    order — the canonical order every split part reproduces.  Only
    non-empty combinations on tiles present in both relations appear
    (the owner tile of any pair holds replicas of both sides).
    """
    tiles = np.intersect1d(a_key // 4, b_key // 4)
    minis: List[MiniJoin] = []
    weights: List[int] = []
    if tiles.size == 0:
        return minis, weights
    probes = tiles[:, None] * 4 + np.arange(5)
    a_bounds = np.searchsorted(a_key, probes)
    b_bounds = np.searchsorted(b_key, probes)
    for t in range(int(tiles.size)):
        for left_cls, right_cls in MINI_JOIN_SCHEDULE:
            a_lo = int(a_bounds[t, left_cls])
            a_hi = int(a_bounds[t, left_cls + 1])
            b_lo = int(b_bounds[t, right_cls])
            b_hi = int(b_bounds[t, right_cls + 1])
            if a_hi > a_lo and b_hi > b_lo:
                minis.append((a_lo, a_hi, b_lo, b_hi))
                weights.append((a_hi - a_lo) + (b_hi - b_lo))
    return minis, weights


def _split_plan(
    weights: Sequence[int], part: int, n_parts: int
) -> List[Tuple[int, Optional[Tuple[int, int]]]]:
    """Part *part*'s share of the mini-join sequence.

    The cumulative work axis ``[0, total)`` is cut into ``n_parts`` equal
    intervals; a part runs every mini-join whose work span intersects its
    interval.  A mini-join covered by a single part runs whole
    (``stripe_slice=None``); one straddling ``m`` parts is shared by
    giving covering part ``j`` the stripe sub-slice ``(j, m)`` of that
    one scan — the forward-scan kernel guarantees the sub-slices
    concatenated in order are bit-identical to the full scan, so the
    parts concatenated in part order reproduce the unsplit task exactly.

    Every part computes the identical plan from the identical inputs
    (pure integer/float arithmetic, no state), which is what makes the
    split deterministic across processes.
    """
    n = len(weights)
    if n == 0:
        return []
    cum: List[int] = []
    running = 0
    for w in weights:
        running += w
        cum.append(running)
    total = running
    ranges: List[Tuple[int, int]] = []
    for p in range(n_parts):
        s = total * p / n_parts
        e = float(total) if p + 1 == n_parts else total * (p + 1) / n_parts
        lo = bisect_right(cum, s)
        hi = min(bisect_left(cum, e), n - 1)
        ranges.append((lo, hi))
    first_cover = [0] * n
    n_cover = [0] * n
    for p, (lo, hi) in enumerate(ranges):
        for i in range(lo, hi + 1):
            if n_cover[i] == 0:
                first_cover[i] = p
            n_cover[i] += 1
    lo, hi = ranges[part]
    plan: List[Tuple[int, Optional[Tuple[int, int]]]] = []
    for i in range(lo, hi + 1):
        m = n_cover[i]
        sub = (part - first_cover[i], m) if m > 1 else None
        plan.append((i, sub))
    return plan


def _axis_candidates(
    np: Any, a_low: Any, a_high: Any, b_low: Any, b_high: Any
) -> int:
    """Candidate pairs a forward scan anchored on this axis would expand.

    ``a_low``/``b_low`` must be ascending.  The exact two-pass window
    sum, so the axis comparison in :func:`_best_axis` measures the real
    work, not an estimate.
    """
    lo = np.searchsorted(b_low, a_low, side="left")
    hi = np.searchsorted(b_low, a_high, side="right")
    total = int((hi - lo).sum())
    lo = np.searchsorted(a_low, b_low, side="right")
    hi = np.searchsorted(a_low, b_high, side="right")
    return total + int((hi - lo).sum())


def _best_axis(
    np: Any,
    a_grp: ColumnarRelation,
    b_grp: ColumnarRelation,
    counters: CpuCounters,
) -> Tuple[ColumnarRelation, ColumnarRelation]:
    """Pick the cheaper sweep axis for one sub-floor mini-join.

    Mini-joins below :data:`~repro.kernels.sweep.STRIPE_MIN_RECORDS` run
    unstriped, where the x-anchored scan expands every *x*-overlapping
    pair — at coarse grids (tiles much taller than rectangles) that is
    nearly the full cross product, the y-pruning RPM's single striped
    per-tile scan keeps.  Both axes' exact candidate volumes are probed
    with searchsorted window sums; when the y axis is cheaper the scan
    runs *transposed* (x and y columns swapped, rows re-sorted by ``yl``)
    — still unstriped, but candidate windows now prune on y and the mask
    tests x, the same closed-rectangle predicate, so the pair set is
    unchanged.  Pure arithmetic on the mini-join slices: every split
    part reaches the identical decision, keeping split-vs-unsplit runs
    byte-identical.
    """
    cand_x = _axis_candidates(np, a_grp.xl, a_grp.xh, b_grp.xl, b_grp.xh)
    order_a = np.argsort(a_grp.yl, kind="stable")
    order_b = np.argsort(b_grp.yl, kind="stable")
    a_yl = a_grp.yl[order_a]
    a_yh = a_grp.yh[order_a]
    b_yl = b_grp.yl[order_b]
    b_yh = b_grp.yh[order_b]
    cand_y = _axis_candidates(np, a_yl, a_yh, b_yl, b_yh)
    # The eight probe searchsorteds plus the two small y argsorts —
    # charged by the one part that executes this mini-join.
    counters.batch_ops += 4 * (a_grp.n + b_grp.n)
    _charge_batch_sort(counters, a_grp.n)
    _charge_batch_sort(counters, b_grp.n)
    if cand_y < cand_x:
        a_t = ColumnarRelation(
            a_grp.oid[order_a],
            a_yl,
            a_grp.xl[order_a],
            a_yh,
            a_grp.xh[order_a],
            sorted_by_xl=True,
        )
        b_t = ColumnarRelation(
            b_grp.oid[order_b],
            b_yl,
            b_grp.xl[order_b],
            b_yh,
            b_grp.xh[order_b],
            sorted_by_xl=True,
        )
        return a_t, b_t
    return a_grp, b_grp


def twolayer_join_ids(
    a_cols: ColumnarRelation,
    b_cols: ColumnarRelation,
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    stripe_slice: Optional[Tuple[int, int]] = None,
) -> Tuple:
    """Columnar two-layer join of one partition pair: id buffers, no tuples.

    Returns ``(rid, sid, suppressed)`` in the calling convention of
    :func:`repro.kernels.rpm.rpm_join_ids`; ``suppressed`` is always 0 —
    avoidance never detects a pair it has to throw away.  Unsorted inputs
    are sorted here with the same charge-once convention as the RPM
    kernel; ``stripe_slice=(part, n_parts)`` runs only that part of the
    mini-join plan (see :func:`_split_plan`).
    """
    np = require_numpy()
    if a_cols.n == 0 or b_cols.n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0
    # Split sibling parts redo the sort/classification only because
    # process isolation denies them part 0's arrays; charge once.
    charge = stripe_slice is None or stripe_slice[0] == 0
    if a_cols.sorted_by_xl:
        a = a_cols
    else:
        if charge:
            _charge_batch_sort(counters, a_cols.n)
        a = a_cols.sort_by_xl()
    if b_cols.sorted_by_xl:
        b = b_cols
    else:
        if charge:
            _charge_batch_sort(counters, b_cols.n)
        b = b_cols.sort_by_xl()
    layout_counters = counters if charge else CpuCounters()
    a_orig, a_key = _classify(np, a, grid, pid, layout_counters)
    b_orig, b_key = _classify(np, b, grid, pid, layout_counters)
    ga = _gather(a, a_orig)
    gb = _gather(b, b_orig)
    minis, weights = _mini_joins(np, a_key, b_key)
    if stripe_slice is None:
        todo: List[Tuple[int, Optional[Tuple[int, int]]]] = [
            (i, None) for i in range(len(minis))
        ]
    else:
        todo = _split_plan(weights, stripe_slice[0], stripe_slice[1])
    rids = []
    sids = []
    for i, sub in todo:
        a_lo, a_hi, b_lo, b_hi = minis[i]
        total = (a_hi - a_lo) + (b_hi - b_lo)
        if total < STRIPE_MIN_RECORDS and sub is not None and sub[0] != 0:
            # Below the striping floor the scan is unstriped and belongs
            # entirely to the first covering part; sibling parts would
            # yield nothing — skip before probing or slicing anything.
            continue
        a_grp = ColumnarRelation(
            ga.oid[a_lo:a_hi],
            ga.xl[a_lo:a_hi],
            ga.yl[a_lo:a_hi],
            ga.xh[a_lo:a_hi],
            ga.yh[a_lo:a_hi],
            sorted_by_xl=True,
        )
        b_grp = ColumnarRelation(
            gb.oid[b_lo:b_hi],
            gb.xl[b_lo:b_hi],
            gb.yl[b_lo:b_hi],
            gb.xh[b_lo:b_hi],
            gb.yh[b_lo:b_hi],
            sorted_by_xl=True,
        )
        if AXIS_PROBE_MIN_RECORDS <= total < STRIPE_MIN_RECORDS:
            a_grp, b_grp = _best_axis(np, a_grp, b_grp, counters)
        for a_idx, b_idx in forward_scan_batches(
            a_grp, b_grp, counters, batch_candidates, sub
        ):
            rids.append(a_grp.oid[a_idx])
            sids.append(b_grp.oid[b_idx])
    if rids:
        return np.concatenate(rids), np.concatenate(sids), 0
    empty = np.empty(0, dtype=np.int64)
    return empty, empty, 0


def twolayer_join_task(
    records_left: Sequence[Tuple],
    records_right: Sequence[Tuple],
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    stripe_slice: Optional[Tuple[int, int]] = None,
) -> Tuple[List[Tuple[int, int]], int]:
    """One partition-pair join with two-layer avoidance, tuples in and out.

    The ``(pairs, duplicates_suppressed)`` convention of
    :func:`repro.kernels.rpm.rpm_join_task`; the second element is always
    0.  Uses the columnar kernel when the numpy backend is on and the
    scalar engine of :mod:`repro.pbsm.twolayer` (list sweep internals)
    otherwise.  The scalar engine cannot slice a mini-join plan, so under
    a stripe split it assigns the whole join to part 0 and leaves the
    other parts empty — the merged result is identical either way.
    """
    np = get_numpy()
    if np is None:
        if stripe_slice is not None and stripe_slice[0] != 0:
            return [], 0
        return (
            twolayer_partition_join(
                records_left, records_right, grid, pid, sweep_list_join, counters
            ),
            0,
        )
    if not records_left or not records_right:
        return [], 0
    if stripe_slice is None or stripe_slice[0] == 0:
        a = sorted_columns(records_left, counters)
        b = sorted_columns(records_right, counters)
    else:
        scratch = CpuCounters()
        a = sorted_columns(records_left, scratch)
        b = sorted_columns(records_right, scratch)
    rid, sid, _ = twolayer_join_ids(
        a, b, grid, pid, counters, batch_candidates, stripe_slice
    )
    return list(zip(rid.tolist(), sid.tolist())), 0


__all__ = [
    "AXIS_PROBE_MIN_RECORDS",
    "CLASSIFY_BATCH_OPS_PER_RECORD",
    "CLASSIFY_BATCH_OPS_PER_REPLICA",
    "twolayer_join_ids",
    "twolayer_join_task",
]
