"""Columnar numpy kernels for the hot paths of the join drivers.

The tuple-at-a-time representation every driver streams through partition
files is kept as the system's interchange format; this package adds a
*columnar* execution backend beneath it:

* :mod:`repro.kernels.columnar` — a relation as five parallel numpy
  arrays (``oid`` int64, ``xl/yl/xh/yh`` float64) with loss-free
  converters from/to KPE tuples;
* :mod:`repro.kernels.sweep` — the vectorized forward-scan plane sweep
  (registered as internal algorithm ``"sweep_numpy"``) plus its
  pure-Python fallback with identical results;
* :mod:`repro.kernels.rpm` — batched Reference Point Method: refpoints
  and partition ownership of whole candidate batches in a handful of
  array operations;
* :mod:`repro.kernels.assign` — vectorized tile assignment for the PBSM
  partitioning phase;
* :mod:`repro.kernels.twolayer` — batched two-layer corner-class
  duplicate avoidance: class assignment as two comparisons per replica
  and class-partitioned slices feeding the forward-scan internals;
* :mod:`repro.kernels.mmapstore` — zero-copy memory-mapped columnar
  stores over ``.rcd`` dataset files (build once, join many): a
  relation opens in O(ms) as live read-only columns.

Everything degrades gracefully without numpy (or with
``REPRO_DISABLE_NUMPY=1``): same result sets, classic per-element
counters, Python speed.  :func:`numpy_enabled` / :func:`active_backend`
are the single switch the drivers consult.
"""

from repro.kernels.backend import (
    HAVE_NUMPY,
    active_backend,
    cpu_count,
    get_numpy,
    numpy_backend,
    numpy_enabled,
    python_backend,
    require_numpy,
    set_numpy_enabled,
)
from repro.kernels.columnar import ColumnarRelation, from_kpes
from repro.kernels.mmapstore import (
    MappedColumnarStore,
    MappedRelation,
    open_relation,
    write_rcd,
)
from repro.kernels.sweep import (
    DEFAULT_BATCH_CANDIDATES,
    forward_scan_batches,
    python_forward_scan,
    sorted_columns,
    sweep_numpy_join,
)
from repro.kernels.rpm import (
    point_partitions,
    point_tiles,
    rpm_join_ids,
    rpm_join_task,
    tile_partitions,
)
from repro.kernels.assign import partition_plan, tile_ranges
from repro.kernels.shm import SharedColumnarStore, columnar_arrays, shm_enabled
from repro.kernels.twolayer import twolayer_join_ids, twolayer_join_task

__all__ = [
    "ColumnarRelation",
    "DEFAULT_BATCH_CANDIDATES",
    "HAVE_NUMPY",
    "MappedColumnarStore",
    "MappedRelation",
    "SharedColumnarStore",
    "columnar_arrays",
    "shm_enabled",
    "active_backend",
    "cpu_count",
    "forward_scan_batches",
    "from_kpes",
    "get_numpy",
    "numpy_backend",
    "numpy_enabled",
    "open_relation",
    "partition_plan",
    "point_partitions",
    "point_tiles",
    "python_backend",
    "python_forward_scan",
    "require_numpy",
    "rpm_join_ids",
    "rpm_join_task",
    "set_numpy_enabled",
    "sorted_columns",
    "sweep_numpy_join",
    "tile_partitions",
    "tile_ranges",
    "twolayer_join_ids",
    "twolayer_join_task",
    "write_rcd",
]
