"""The numpy gate: one place that decides whether vectorized kernels run.

Everything under :mod:`repro.kernels` funnels its "is numpy usable?"
question through :func:`numpy_enabled` so the whole columnar backend can
be switched off in one move — either because numpy genuinely is not
installed (the ``[perf]`` extra was skipped) or because the environment
variable ``REPRO_DISABLE_NUMPY`` is set (how CI exercises the pure-Python
fallback without building a second interpreter image).

The contract every caller relies on: with the backend disabled, every
kernel entry point still works and produces the *identical result set*
through its pure-Python fallback — only the operation counters differ
(per-element counts instead of batch-level counts) and, of course, the
wall clock.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Module-level switch; start from the environment so a single env var
#: flips every kernel to the fallback path.
_disabled = bool(os.environ.get("REPRO_DISABLE_NUMPY"))

#: True when the interpreter has numpy at all (env var aside).
HAVE_NUMPY = _np is not None


def numpy_enabled() -> bool:
    """True when the vectorized kernel path should be used."""
    return _np is not None and not _disabled


def get_numpy() -> Optional[Any]:
    """The numpy module, or ``None`` when the backend is disabled."""
    return _np if numpy_enabled() else None


def require_numpy() -> Any:
    """The numpy module; raises when the backend is disabled."""
    np = get_numpy()
    if np is None:
        raise RuntimeError(
            "numpy backend is disabled (numpy missing or REPRO_DISABLE_NUMPY "
            "set); call repro.kernels.numpy_enabled() before using columnar "
            "kernels directly"
        )
    return np


def require_numpy_module() -> Any:
    """The numpy module itself, ignoring the ``REPRO_DISABLE_NUMPY`` gate.

    The gate switches off the *columnar kernels* (which have scalar
    fallbacks); the dataset generators and ``.npy`` file I/O have no
    fallback and may use numpy whenever it is importable.  This is the
    one sanctioned way for non-kernel modules to reach numpy — a
    function-local call keeps every module importable without numpy
    (enforced by repro-lint rule RPL001).
    """
    if _np is None:
        raise ModuleNotFoundError(
            "numpy is required for this operation (dataset generation or "
            ".npy I/O); install the [perf] extra: pip install 'repro[perf]'"
        )
    return _np


def active_backend() -> str:
    """The backend tag recorded in JoinStats: ``"numpy"`` or ``"python"``."""
    return "numpy" if numpy_enabled() else "python"


def set_numpy_enabled(enabled: bool) -> None:
    """Force the backend on or off (tests and benchmarks only).

    Enabling has no effect when numpy is genuinely not importable.
    """
    global _disabled
    _disabled = not enabled


@contextmanager
def python_backend() -> Iterator[None]:
    """Context manager forcing the pure-Python fallback (tests only)."""
    global _disabled
    previous = _disabled
    _disabled = True
    try:
        yield
    finally:
        _disabled = previous


@contextmanager
def numpy_backend() -> Iterator[None]:
    """Context manager forcing the numpy path (skips silently sans numpy)."""
    global _disabled
    previous = _disabled
    _disabled = False
    try:
        yield
    finally:
        _disabled = previous


def cpu_count(default: int = 1) -> Optional[int]:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or default
