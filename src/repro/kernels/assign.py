"""Vectorized tile assignment for the PBSM partitioner.

``partition_relation`` spends most of its CPU time computing, per record,
the tile range its rectangle overlaps and the owning partition of each
tile — four coordinate normalisations plus a set build per KPE.  This
module computes the tile ranges of a whole relation in six array
operations and resolves the (overwhelmingly common) single-tile records to
their partition id array-wise; only genuinely multi-tile records fall back
to the per-tile loop.

The plan preserves the partitioner's exact semantics: per-record write
order, per-partition record order, replica counts, and the structure-op
accounting all match the scalar path, so simulated costs are identical —
the win is wall clock only.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple, Union

from repro.kernels.backend import get_numpy
from repro.pbsm.grid import TileGrid

#: A record's destination: one partition id, or a tuple of several.
PartitionPlanEntry = Union[int, Tuple[int, ...]]


def tile_ranges(np: Any, grid: TileGrid, kpes: Sequence[Tuple]) -> Any:
    """Clipped tile-index ranges ``(txl, tyl, txh, tyh)`` of every record.

    Replays ``TileGrid.tile_of_point`` on the low and high corners in
    float64/int64 so the ranges are bit-identical to the scalar path.
    """
    table = np.asarray(kpes, dtype=np.float64)
    space = grid.space
    nx = grid.nx
    ny = grid.ny
    txl = ((table[:, 1] - space.xl) / space.width * nx).astype(np.int64)
    tyl = ((table[:, 2] - space.yl) / space.height * ny).astype(np.int64)
    txh = ((table[:, 3] - space.xl) / space.width * nx).astype(np.int64)
    tyh = ((table[:, 4] - space.yl) / space.height * ny).astype(np.int64)
    np.clip(txl, 0, nx - 1, out=txl)
    np.clip(txh, 0, nx - 1, out=txh)
    np.clip(tyl, 0, ny - 1, out=tyl)
    np.clip(tyh, 0, ny - 1, out=tyh)
    return txl, tyl, txh, tyh


def partition_plan(
    kpes: Sequence[Tuple], grid: TileGrid
) -> List[PartitionPlanEntry]:
    """Per-record destination partitions, computed array-wise.

    Returns a list aligned with *kpes*: an ``int`` partition id for
    single-tile records, a tuple of distinct ids for multi-tile records
    (same ids, same iteration order as ``TileGrid.partitions_for_rect``).
    Raises :class:`RuntimeError` if the numpy backend is disabled — the
    caller is expected to gate on ``numpy_enabled()``.
    """
    np = get_numpy()
    if np is None:
        raise RuntimeError("partition_plan requires the numpy backend")
    if not kpes:
        return []
    txl, tyl, txh, tyh = tile_ranges(np, grid, kpes)
    single = (txl == txh) & (tyl == tyh)
    from repro.kernels.rpm import tile_partitions

    plan: List[PartitionPlanEntry] = tile_partitions(np, grid, txl, tyl).tolist()
    multi = np.flatnonzero(~single)
    if multi.size:
        txl_l = txl.tolist()
        tyl_l = tyl.tolist()
        txh_l = txh.tolist()
        tyh_l = tyh.tolist()
        partition_of_tile = grid.partition_of_tile
        for i in multi.tolist():
            # Build the same set partitions_for_rect builds, so iteration
            # order (hence write order) matches the scalar path exactly.
            plan[i] = tuple(
                {
                    partition_of_tile(tx, ty)
                    for ty in range(tyl_l[i], tyh_l[i] + 1)
                    for tx in range(txl_l[i], txh_l[i] + 1)
                }
            )
    return plan


__all__ = ["PartitionPlanEntry", "partition_plan", "tile_ranges"]
