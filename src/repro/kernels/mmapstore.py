"""Zero-copy memory-mapped columnar stores over ``.rcd`` files.

:mod:`repro.io.rcd` defines the on-disk format and its pure-Python
codec; this module is the fast half: a vectorized builder
(:func:`write_rcd`, byte-identical output to the struct writer) and
:class:`MappedColumnarStore`, which opens a built file as *live columnar
arrays* via ``np.memmap`` — a header read plus one mapping, O(ms)
regardless of cardinality, no per-record Python work at all.

Two wrappers make the mapping invisible to the rest of the stack:

* :meth:`MappedColumnarStore.relation` is a
  :class:`~repro.kernels.columnar.ColumnarRelation` whose columns *are*
  the file pages — ``ColumnarRelation.from_kpes`` short-circuits on it,
  so every kernel, the parallel shm packer, and serve's dataset pinning
  consume the mapping with zero copies and zero tuple building;
* :class:`MappedRelation` is a lazy ``Sequence[KPE]`` facade over the
  store, so tuple-based code paths (scalar engines, profilers,
  validators) see an ordinary relation and only pay conversion for the
  records they actually touch.

The mapping is strictly read-only: the ``memmap`` is opened ``mode="r"``
and every column view inherits ``writeable=False``, so an accidental
in-place mutation of what looks like a scratch array raises
``ValueError`` instead of silently corrupting the dataset on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.rect import KPE
from repro.io.rcd import (
    RcdHeader,
    dataset_fingerprint,
    pack_header,
    parse_header,
    read_header,
)
from repro.kernels.backend import require_numpy
from repro.kernels.columnar import ColumnarRelation

PathLike = Union[str, Path]

#: Records materialised per chunk when iterating a mapped relation as
#: tuples (bounds transient list size; full-file ``list()`` still works).
_ITER_CHUNK = 65536


def write_rcd(
    kpes: Sequence[Tuple],
    path: PathLike,
    fingerprint: Optional[str] = None,
) -> RcdHeader:
    """Build *kpes* into an ``.rcd`` file with vectorized validation.

    Byte-identical output to :func:`repro.io.rcd.write_rcd_python` (the
    parity tests pin this): same header, same little-endian column
    payload, same detected ``sorted_by_xl`` flag.  Row order is
    preserved exactly, which is what keeps joins from the mapped store
    byte-identical to joins over the original sequence.
    """
    np = require_numpy()
    col = ColumnarRelation.from_kpes(kpes)
    n = col.n
    if n:
        finite = (
            np.isfinite(col.xl)
            & np.isfinite(col.yl)
            & np.isfinite(col.xh)
            & np.isfinite(col.yh)
        )
        ordered = (col.xl <= col.xh) & (col.yl <= col.yh)
        bad = ~(finite & ordered)
        if bool(bad.any()):
            index = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"invalid MBR at row {index} "
                f"(oid={int(col.oid[index])}) cannot be built"
            )
    if fingerprint is None:
        fingerprint = getattr(kpes, "fingerprint", None) or dataset_fingerprint(
            kpes
        )
    sorted_by_xl = bool(np.all(col.xl[:-1] <= col.xl[1:])) if n > 1 else True
    if n:
        extent = (
            float(col.xl.min()),
            float(col.yl.min()),
            float(col.xh.max()),
            float(col.yh.max()),
        )
    else:
        extent = (0.0, 0.0, 0.0, 0.0)
    header_blob = pack_header(n, extent, fingerprint, sorted_by_xl)
    with open(path, "wb") as handle:
        handle.write(header_blob)
        handle.write(col.oid.astype("<i8", copy=False).tobytes())
        for column in (col.xl, col.yl, col.xh, col.yh):
            handle.write(column.astype("<f8", copy=False).tobytes())
    return parse_header(header_blob, path)


class MappedColumnarStore:
    """An ``.rcd`` file opened as read-only columnar arrays.

    Open cost is a 4 KiB header read plus one ``np.memmap`` — the column
    data is paged in lazily by the OS as kernels touch it, and is shared
    between every process that maps the same file.
    """

    __slots__ = ("path", "header", "_buffer", "_columns")

    def __init__(
        self,
        path: Path,
        header: RcdHeader,
        buffer: Any,
        columns: Dict[str, Any],
    ) -> None:
        self.path = path
        self.header = header
        self._buffer: Optional[Any] = buffer
        self._columns: Dict[str, Any] = columns

    @classmethod
    def open(cls, path: PathLike) -> "MappedColumnarStore":
        """Map *path*, validating the header (raises ``RcdFormatError``)."""
        np = require_numpy()
        header = read_header(path)
        total = header.header_bytes + header.data_bytes
        if header.n:
            buffer = np.memmap(path, dtype=np.uint8, mode="r", shape=(total,))
        else:
            buffer = np.empty(0, dtype=np.uint8)
        columns: Dict[str, Any] = {}
        for name, dtype, offset, nbytes in header.columns:
            if header.n:
                columns[name] = buffer[offset : offset + nbytes].view(
                    np.dtype(dtype)
                )
            else:
                columns[name] = np.empty(0, dtype=np.dtype(dtype))
        return cls(Path(path), header, buffer, columns)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def relation(self) -> ColumnarRelation:
        """The mapped columns as a :class:`ColumnarRelation` (zero-copy).

        ``sorted_by_xl`` carries the flag detected at build time, so
        pre-sorted datasets additionally skip the kernels' x-sorts.
        The columns are read-only; kernels that need mutable rows copy
        (``sort_by_xl`` already does).
        """
        self._require_open()
        return ColumnarRelation(
            self._columns["oid"],
            self._columns["xl"],
            self._columns["yl"],
            self._columns["xh"],
            self._columns["yh"],
            sorted_by_xl=self.header.sorted_by_xl,
        )

    def column(self, name: str) -> Any:
        """One mapped column by name (read-only array)."""
        self._require_open()
        return self._columns[name]

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.header.n

    def __len__(self) -> int:
        return self.header.n

    @property
    def fingerprint(self) -> str:
        """The content fingerprint stored at build time (planner cache key)."""
        return self.header.fingerprint

    @property
    def extent(self) -> Tuple[float, float, float, float]:
        """The dataset MBR recorded in the header."""
        return self.header.extent

    @property
    def sorted_by_xl(self) -> bool:
        return self.header.sorted_by_xl

    @property
    def nbytes(self) -> int:
        """Total mapped bytes (header plus column payload)."""
        return self.header.header_bytes + self.header.data_bytes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this store's references to the mapping.

        The OS mapping itself is refcounted through the arrays: views
        handed out earlier (including live :class:`ColumnarRelation`
        columns) stay valid until their own references drop.  Using the
        *store* after ``close()`` raises.
        """
        self._buffer = None
        self._columns = {}

    @property
    def closed(self) -> bool:
        return self._buffer is None

    def _require_open(self) -> None:
        if self._buffer is None:
            raise ValueError(f"{self.path}: mapped store is closed")

    def __enter__(self) -> "MappedColumnarStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"MappedColumnarStore({str(self.path)!r}, n={self.n}, "
            f"fingerprint={self.fingerprint!r}, {state})"
        )


class MappedRelation:
    """A mapped store presented as a lazy ``Sequence[KPE]``.

    Drop-in wherever a relation sequence is accepted today: ``len()``,
    indexing (ints and slices, KPE tuples out), and iteration all work —
    but nothing is materialised up front.  Columnar consumers bypass the
    facade entirely via three attributes the rest of the stack already
    probes with ``getattr``:

    * ``columnar`` — ``ColumnarRelation.from_kpes`` returns it directly
      (zero-copy into every kernel and the shm packer);
    * ``fingerprint`` — ``relation_fingerprint`` returns it directly, so
      planner profile/plan caches hit without re-sampling;
    * ``sorted_by_xl`` — the sweep kernel skips its argsort when set.
    """

    __slots__ = ("store", "columnar")

    #: Marks this relation as file-backed (EXPLAIN prices ingest with it).
    mapped = True

    def __init__(self, store: MappedColumnarStore) -> None:
        self.store = store
        self.columnar = store.relation()

    @classmethod
    def open(cls, path: PathLike) -> "MappedRelation":
        return cls(MappedColumnarStore.open(path))

    @property
    def fingerprint(self) -> str:
        return self.store.fingerprint

    @property
    def sorted_by_xl(self) -> bool:
        return self.store.sorted_by_xl

    @property
    def path(self) -> Path:
        return self.store.path

    def __len__(self) -> int:
        return self.store.n

    def __getitem__(self, index: Union[int, slice]) -> Any:
        col = self.columnar
        if isinstance(index, slice):
            return [
                KPE(o, a, b, c, d)
                for o, a, b, c, d in zip(
                    col.oid[index].tolist(),
                    col.xl[index].tolist(),
                    col.yl[index].tolist(),
                    col.xh[index].tolist(),
                    col.yh[index].tolist(),
                )
            ]
        return KPE(
            int(col.oid[index]),
            float(col.xl[index]),
            float(col.yl[index]),
            float(col.xh[index]),
            float(col.yh[index]),
        )

    def __iter__(self) -> Iterator[KPE]:
        for start in range(0, len(self), _ITER_CHUNK):
            chunk: List[KPE] = self[start : start + _ITER_CHUNK]
            for kpe in chunk:
                yield kpe

    def to_kpes(self) -> List[KPE]:
        """The whole relation materialised as KPE tuples."""
        return self[:]

    def __repr__(self) -> str:
        return (
            f"MappedRelation({str(self.store.path)!r}, n={len(self)}, "
            f"sorted_by_xl={self.sorted_by_xl})"
        )


def open_relation(path: PathLike) -> MappedRelation:
    """Open an ``.rcd`` file as a join-ready :class:`MappedRelation`."""
    return MappedRelation.open(path)


__all__ = [
    "MappedColumnarStore",
    "MappedRelation",
    "open_relation",
    "write_rcd",
]
