"""Shared-memory columnar segments for zero-copy parallel execution.

The multiprocess PBSM executor used to pickle the full replicated record
lists into every join task and pickle Python pair lists back — IPC
serialization, not the join kernel, dominated multiprocess wall time.
This module is the transport that removes the copies: the parent packs
both inputs' :class:`~repro.kernels.columnar.ColumnarRelation` columns
(plus the CSR partition-index arrays) into **one**
:mod:`multiprocessing.shared_memory` segment, workers attach by name and
gather their partition slices directly out of the mapped pages, and only
a few integers per task ever cross the pipe.

Lifecycle (who unlinks)
-----------------------
The parent is the owner: it creates the segment, keeps it registered
with the ``resource_tracker`` (so a crashed parent still gets cleaned up
at interpreter shutdown), and calls ``close()`` + ``unlink()`` when the
fan-out completes — :class:`SharedColumnarStore` is a context manager
exactly for that. Workers attach read-only in spirit (they only gather)
and merely ``close()`` on exit — pool workers share the parent's
resource tracker, so attaching never double-books the segment and a
worker exit never tears it down. Worker-*created* result segments
invert the roles: the worker creates untracked and the parent attaches,
decodes and unlinks. The one crash window is a worker dying between creating
its result segment and the parent unlinking it — that segment leaks
until reboot, which ``docs/architecture.md`` documents as the price of
zero-copy results.

``shm_enabled()`` gates the whole path: the numpy backend must be on,
``REPRO_DISABLE_SHM`` must be unset, and the platform must actually
support POSIX shared memory (probed once). When the gate is closed the
executor falls back to the legacy pickle transport, bit-for-bit.
"""

from __future__ import annotations

import itertools
import os
import secrets
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.kernels.backend import numpy_enabled, require_numpy
from repro.kernels.columnar import ColumnarRelation

#: ``(segment_name, ((key, dtype_str, length, byte_offset), ...))`` — a
#: picklable description from which any process can attach the arrays.
Manifest = Tuple[str, Tuple[Tuple[str, str, int, int], ...]]

#: Every segment this module creates is named
#: ``repro_shm_<creator-pid>_<seq>_<token>`` so a sweep can (a) recognise
#: repro segments among foreign ones and (b) decide staleness by asking
#: whether the creator pid is still alive (see :func:`sweep_orphan_segments`).
SEGMENT_PREFIX = "repro_shm_"

_segment_seq = itertools.count()

#: Cached result of the one-time platform probe.
_platform_probe: Optional[bool] = None


def _new_segment_name() -> str:
    """A fresh segment name that encodes this process as the creator."""
    return (
        f"{SEGMENT_PREFIX}{os.getpid()}_{next(_segment_seq)}_"
        f"{secrets.token_hex(4)}"
    )


def _segment_creator_pid(name: str) -> Optional[int]:
    """The creator pid encoded in a repro segment name, or ``None``."""
    stem = name.lstrip("/")
    if not stem.startswith(SEGMENT_PREFIX):
        return None
    try:
        return int(stem[len(SEGMENT_PREFIX) :].split("_", 1)[0])
    except (ValueError, IndexError):
        return None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for *pid* (POSIX signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return True  # unknowable; err on the side of not sweeping
    return True


def _shared_memory_module() -> Any:
    from multiprocessing import shared_memory

    return shared_memory


def _platform_has_shm() -> bool:
    """Probe (once) whether POSIX shared memory actually works here."""
    global _platform_probe
    if _platform_probe is None:
        # ImportError: no _posixshmem extension on this platform;
        # OSError: /dev/shm missing, full, or permission-denied;
        # BufferError: close() refused while a view is still mapped.
        try:
            seg = _shared_memory_module().SharedMemory(create=True, size=8)
            try:
                _platform_probe = True
            finally:
                seg.close()
                seg.unlink()
        except (ImportError, OSError, BufferError):
            _platform_probe = False
    return _platform_probe


def shm_enabled() -> bool:
    """True when the zero-copy shared-memory executor may be used.

    Mirrors :func:`repro.kernels.backend.numpy_enabled`: one switch
    (``REPRO_DISABLE_SHM``) flips every caller to the pickle fallback,
    which is how CI proves the degraded path stays byte-identical.
    """
    if os.environ.get("REPRO_DISABLE_SHM"):
        return False
    return numpy_enabled() and _platform_has_shm()


def _untrack(segment: Any) -> None:
    """Remove *segment* from the resource tracker (worker-side creates).

    A worker-created result segment is cleaned up by the *parent* after
    decoding; without this, the tracker would double-book the name and
    warn about "leaked" shared memory if the parent unlinks first.

    ImportError/AttributeError cover interpreters without the tracker
    API; OSError covers a tracker process that already exited.  Anything
    else is a real lifecycle bug and must surface.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except (ImportError, AttributeError, OSError):
        pass


class SharedColumnarStore:
    """Named 1-D numpy arrays packed into one shared-memory segment.

    Create in the owner with :meth:`create`, ship :attr:`manifest` (a
    plain picklable tuple) to other processes, attach there with
    :meth:`attach`. The owner uses the instance as a context manager —
    ``__exit__`` closes *and unlinks*; attached (non-owner) instances
    only close.
    """

    __slots__ = ("_segment", "_arrays", "_manifest", "_owner")

    def __init__(
        self,
        segment: Any,
        arrays: Dict[str, Any],
        manifest: Manifest,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._arrays = arrays
        self._manifest = manifest
        self._owner = owner

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Dict[str, object], track: bool = True) -> "SharedColumnarStore":
        """Copy *arrays* (name -> 1-D ndarray) into a fresh segment.

        With ``track=False`` the segment is immediately unregistered from
        the resource tracker — the worker-side result transport, where
        the *parent* unlinks after decoding.
        """
        np = require_numpy()
        entries = []
        offset = 0
        packed = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            packed[key] = arr
            entries.append((key, arr.dtype.str, int(arr.shape[0]), offset))
            offset += int(arr.nbytes)
        segment = _shared_memory_module().SharedMemory(
            name=_new_segment_name(), create=True, size=max(offset, 1)
        )
        if not track:
            _untrack(segment)
        views = {}
        for key, dtype, n, off in entries:
            view = np.ndarray((n,), dtype=dtype, buffer=segment.buf, offset=off)
            view[:] = packed[key]
            views[key] = view
        manifest: Manifest = (segment.name, tuple(entries))
        return cls(segment, views, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: Manifest) -> "SharedColumnarStore":
        """Map an existing segment described by *manifest* (non-owner)."""
        np = require_numpy()
        name, entries = manifest
        # Attaching re-registers the name with the resource tracker
        # shared by the whole process tree (harmless set.add); whoever
        # ends up calling unlink() performs the single matching
        # unregister, so no extra untrack here.
        segment = _shared_memory_module().SharedMemory(name=name)
        views = {
            key: np.ndarray((n,), dtype=dtype, buffer=segment.buf, offset=off)
            for key, dtype, n, off in entries
        }
        return cls(segment, views, manifest, owner=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Manifest:
        return self._manifest

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Mapped segment size (what zero-copy avoids shipping)."""
        return int(self._segment.size)

    @property
    def owner(self) -> bool:
        return self._owner

    def __getitem__(self, key: str) -> Any:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def keys(self) -> Iterator[str]:
        return self._arrays.keys()

    def gather(self, prefix: str, ids: Any) -> ColumnarRelation:
        """Copy rows *ids* of the relation stored under *prefix* out.

        ``ids`` may be any integer index array; fancy indexing copies, so
        the returned :class:`ColumnarRelation` is private to the caller
        (kernels may sort it) while the mapped columns stay pristine.
        """
        return ColumnarRelation(
            self._arrays[f"{prefix}.oid"][ids],
            self._arrays[f"{prefix}.xl"][ids],
            self._arrays[f"{prefix}.yl"][ids],
            self._arrays[f"{prefix}.xh"][ids],
            self._arrays[f"{prefix}.yh"][ids],
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the mapped views and close this process's handle."""
        self._arrays = {}
        try:
            self._segment.close()
        except BufferError:  # a caller still holds a view; leave mapped
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedColumnarStore":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
        if self._owner:
            self.unlink()


class AliasedStore:
    """A read-only prefix-renaming view over a store.

    A dataset pinned by the serve registry stores its columns under the
    neutral prefix ``"D"`` (``D.oid``, ``D.xl``, ...), because at pin
    time nobody knows whether it will be the left or the right input of
    a query.  ``AliasedStore(store, {"L": "D"})`` makes that pinned
    segment answer to the join kernel's ``L.*`` keys without copying a
    byte.  Only aliased prefixes resolve — un-aliased keys report as
    missing, so a :class:`ChainedStore` keeps searching.
    """

    __slots__ = ("_store", "_aliases")

    def __init__(self, store: Any, aliases: Dict[str, str]) -> None:
        self._store = store
        self._aliases = dict(aliases)

    def _translate(self, key: str) -> Optional[str]:
        head, sep, tail = key.partition(".")
        if not sep:
            return None
        real = self._aliases.get(head)
        if real is None:
            return None
        return f"{real}.{tail}"

    def __getitem__(self, key: str) -> Any:
        translated = self._translate(key)
        if translated is None or translated not in self._store:
            raise KeyError(key)
        return self._store[translated]

    def __contains__(self, key: str) -> bool:
        translated = self._translate(key)
        return translated is not None and translated in self._store


class ChainedStore:
    """Several stores presented as one key space (first match wins).

    This is how a query over *pinned* datasets is assembled in a worker:
    ``[AliasedStore(left_pin, {"L": "D"}), AliasedStore(right_pin,
    {"R": "D"}), per_query_ids_store]`` — the big relation columns come
    from long-lived pinned segments, only the small CSR id arrays from
    the per-query segment.  Implements the same ``__getitem__`` /
    ``gather`` surface as :class:`SharedColumnarStore`, so the join
    kernels cannot tell the difference.
    """

    __slots__ = ("_stores",)

    def __init__(self, stores: Any) -> None:
        self._stores = list(stores)

    def __getitem__(self, key: str) -> Any:
        for store in self._stores:
            if key in store:
                return store[key]
        raise KeyError(key)

    def __contains__(self, key: str) -> bool:
        return any(key in store for store in self._stores)

    def gather(self, prefix: str, ids: Any) -> ColumnarRelation:
        """Copy rows *ids* of the relation stored under *prefix* out."""
        return ColumnarRelation(
            self[f"{prefix}.oid"][ids],
            self[f"{prefix}.xl"][ids],
            self[f"{prefix}.yl"][ids],
            self[f"{prefix}.xh"][ids],
            self[f"{prefix}.yh"][ids],
        )


def sweep_orphan_segments(include_live: bool = False) -> List[str]:
    """Unlink repro shared-memory segments whose creator is dead.

    A server killed with SIGKILL (or a worker dying mid-result) can
    leave named segments behind until reboot.  Every repro segment name
    embeds its creator's pid, so staleness is decidable: if that pid no
    longer exists, nobody will ever unlink the segment — reap it.  With
    ``include_live=True`` segments created by the *current* process are
    swept too (the shutdown path of a server unlinking its own pins).

    Returns the names actually unlinked.  Safe to call on platforms
    without shared memory (returns ``[]``).
    """
    shm_dir = "/dev/shm"  # POSIX shm backing store on Linux
    if not os.path.isdir(shm_dir):
        return []
    own_pid = os.getpid()
    swept: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return []
    for name in names:
        pid = _segment_creator_pid(name)
        if pid is None:
            continue  # not ours; never touch foreign segments
        if pid == own_pid:
            if not include_live:
                continue
        elif _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
            swept.append(name)
        except OSError:
            continue  # raced with another sweeper, or permissions
    return swept


def columnar_arrays(prefix: str, cols: ColumnarRelation) -> Dict[str, object]:
    """The five columns of *cols* keyed for a :class:`SharedColumnarStore`."""
    return {
        f"{prefix}.oid": cols.oid,
        f"{prefix}.xl": cols.xl,
        f"{prefix}.yl": cols.yl,
        f"{prefix}.xh": cols.xh,
        f"{prefix}.yh": cols.yh,
    }


__all__ = [
    "AliasedStore",
    "ChainedStore",
    "Manifest",
    "SEGMENT_PREFIX",
    "SharedColumnarStore",
    "columnar_arrays",
    "shm_enabled",
    "sweep_orphan_segments",
]
