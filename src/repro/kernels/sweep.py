"""Vectorized forward-scan plane sweep over columnar relations.

The kernel is the batched formulation of the forward-scan sweep that
*Parallel In-Memory Evaluation of Spatial Joins* (Tsitsigkos et al.)
identifies as the fastest in-memory algorithm: with both inputs sorted by
``xl``, every x-overlapping pair ``(r, s)`` is found exactly once by two
symmetric passes —

* pass 1 anchors on ``r`` and takes every ``s`` whose left edge starts
  inside ``[r.xl, r.xh]``;
* pass 2 anchors on ``s`` and takes every ``r`` whose left edge starts
  inside ``(s.xl, s.xh]`` (strict on the left so ties are not reported
  twice).

Each pass is fully array-shaped: one ``searchsorted`` pair delivers every
anchor's candidate window, a repeat/arange expansion materialises the
candidate index pairs, and one boolean mask applies the y-overlap test.
Candidate expansion is chunked (``batch_candidates``) so memory stays
bounded on dense inputs.

On large inputs the x-sorted scan alone generates every *x*-overlapping
pair as a candidate, which is quadratic in the active-set size.  The
kernel therefore stripes the y-axis first — the paper's own partitioning
idea applied inside a partition: records are replicated into every y
stripe they overlap, each stripe runs the (now much smaller) forward
scan, and a reference-point rule keeps a pair only in the first stripe
both rectangles overlap (``max`` of their bottom stripes), so results
stay exact and duplicate-free.  Striping changes the order in which
pairs are produced (stripe-major), never the set.

The pure-Python fallback (:func:`python_forward_scan`) runs the
unstriped two passes with two cursors over sorted lists, producing the
identical pair *set* — only the order and the counters differ: the
kernel charges batch-level ``batch_ops``, the fallback charges classic
per-element counts.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.io.extsort import BY_XL, ensure_sorted_by_xl
from repro.kernels.backend import get_numpy
from repro.kernels.columnar import ColumnarRelation

#: Maximum candidate pairs expanded per batch (bounds peak memory: five
#: int64/float64 scratch arrays of this length, ~160 MB at the default).
DEFAULT_BATCH_CANDIDATES = 1 << 22

#: Elementwise array operations charged per candidate pair (window
#: expansion, two y comparisons, mask combine).
BATCH_OPS_PER_CANDIDATE = 4

#: Below this many total records striping cannot pay for its layout work.
STRIPE_MIN_RECORDS = 4096

#: Target records per stripe and the stripe-count ceiling.
STRIPE_RECORDS = 512
STRIPE_MAX = 1024

#: Stripe count is capped at ``y_span / (REPLICATION_EDGES * mean_height)``
#: so the expected replication factor stays below 1 + 1/REPLICATION_EDGES.
REPLICATION_EDGES = 4.0


def _charge_batch_sort(counters: CpuCounters, n: int) -> None:
    """Charge one vectorized ``argsort`` as batch-level operations."""
    if n > 1:
        counters.batch_ops += n * max(1, math.ceil(math.log2(n)))


def sorted_columns(
    kpes: Sequence[Tuple], counters: CpuCounters
) -> ColumnarRelation:
    """Columnar copy of *kpes* sorted by ``xl``, with the sort charged.

    Inputs flagged as already sorted (:class:`repro.io.extsort.XlSorted`)
    skip both the argsort and its charge.
    """
    cols = ColumnarRelation.from_kpes(kpes)
    if getattr(kpes, "sorted_by_xl", False):
        cols.sorted_by_xl = True
        return cols
    _charge_batch_sort(counters, cols.n)
    return cols.sort_by_xl()


# ----------------------------------------------------------------------
# the kernel proper
# ----------------------------------------------------------------------
def _pass_batches(
    np: Any,
    anchor_yl: Any,
    anchor_yh: Any,
    probe_yl: Any,
    probe_yh: Any,
    lo: Any,
    hi: Any,
    counters: CpuCounters,
    batch_candidates: int,
    swap: bool,
    anchor_slo: Optional[Any] = None,
    probe_slo: Optional[Any] = None,
    stripe: int = -1,
) -> Iterator[Tuple]:
    """Yield ``(anchor_idx, probe_idx)`` pairs of one pass, in batches.

    ``lo``/``hi`` bound each anchor's candidate window in the probe
    columns; ``swap`` reports pairs as ``(probe, anchor)`` so pass 2 can
    keep the (left, right) orientation of the join.  When ``stripe`` is
    given, only pairs owned by that y stripe (the first stripe both
    rectangles overlap) survive the mask.
    """
    counts = hi - lo
    csum = np.cumsum(counts)
    total = int(csum[-1]) if counts.size else 0
    if total == 0:
        return
    n_anchors = counts.shape[0]
    arange = np.arange
    repeat = np.repeat
    per_candidate = BATCH_OPS_PER_CANDIDATE + (2 if stripe >= 0 else 0)
    start = 0
    base = 0
    while start < n_anchors:
        stop = int(np.searchsorted(csum, base + batch_candidates, side="right"))
        stop = min(max(stop, start + 1), n_anchors)
        lo_c = lo[start:stop]
        counts_c = counts[start:stop]
        chunk_total = int(csum[stop - 1]) - base
        base = int(csum[stop - 1])
        start_prev, start = start, stop
        if chunk_total == 0:
            continue
        offsets = np.cumsum(counts_c) - counts_c
        # Flat probe positions: one arange plus a single fused repeat.
        flat = arange(chunk_total) + repeat(lo_c - offsets, counts_c)
        # Anchor-side values expand with repeat (contiguous reads);
        # probe-side values gather through ``flat``.
        mask = (probe_yl[flat] <= repeat(anchor_yh[start_prev:stop], counts_c)) & (
            repeat(anchor_yl[start_prev:stop], counts_c) <= probe_yh[flat]
        )
        if stripe >= 0:
            mask &= (
                np.maximum(
                    repeat(anchor_slo[start_prev:stop], counts_c),
                    probe_slo[flat],
                )
                == stripe
            )
        counters.batch_ops += per_candidate * chunk_total
        anchor_hit = repeat(arange(start_prev, stop), counts_c)[mask]
        probe_hit = flat[mask]
        if anchor_hit.size:
            yield (probe_hit, anchor_hit) if swap else (anchor_hit, probe_hit)


def _stripe_slice_range(
    np: Any,
    a: ColumnarRelation,
    b: ColumnarRelation,
    ylo: float,
    inv_height: float,
    k: int,
    part: int,
    n_parts: int,
) -> range:
    """The stripe subrange one split part executes, balanced by work.

    Boundaries are drawn on the cumulative per-stripe replica counts, so
    each part receives roughly ``1/n_parts`` of the *records*, not of the
    stripe indices — under placement skew most stripes are nearly empty
    and index-based slicing would hand one part all the work.  Computed
    from the full inputs with the same arithmetic in every part, so the
    parts always partition ``range(k)`` exactly.
    """
    counts = np.zeros(k + 1, dtype=np.int64)
    for rel in (a, b):
        slo = ((rel.yl - ylo) * inv_height).astype(np.int64)
        np.clip(slo, 0, k - 1, out=slo)
        shi = ((rel.yh - ylo) * inv_height).astype(np.int64)
        np.clip(shi, 0, k - 1, out=shi)
        np.add.at(counts, slo, 1)
        np.add.at(counts, shi + 1, -1)
    cum = np.cumsum(np.cumsum(counts[:-1]))
    total = int(cum[-1])
    lo = int(np.searchsorted(cum, (total * part) / n_parts, side="left"))
    hi = (
        k
        if part + 1 == n_parts
        else int(
            np.searchsorted(cum, (total * (part + 1)) / n_parts, side="left")
        )
    )
    return range(lo, hi)


def _stripe_count(np: Any, a: ColumnarRelation, b: ColumnarRelation, span: float) -> int:
    """How many y stripes to use (1 = no striping).

    Bounded three ways: enough records per stripe to amortise the
    per-stripe setup, a hard ceiling, and a replication cap so records
    spanning many stripes do not blow up the working set.
    """
    n = a.n + b.n
    if n < STRIPE_MIN_RECORDS or span <= 0.0:
        return 1
    height_sum = float((a.yh - a.yl).sum() + (b.yh - b.yl).sum())
    mean_height = height_sum / n
    k = n // STRIPE_RECORDS
    if mean_height > 0.0:
        k = min(k, int(span / (REPLICATION_EDGES * mean_height)))
    return max(1, min(k, STRIPE_MAX))


def _stripe_layout(
    np: Any, rel: ColumnarRelation, ylo: float, inv_height: float, k: int,
    counters: CpuCounters,
    stripes: Optional[range] = None,
    charge: bool = True,
) -> Tuple:
    """Replicate *rel* into its overlapping y stripes.

    Returns ``(orig, bounds, slo)``: ``orig[bounds[s]:bounds[s+1]]`` are
    the indices (into *rel*, xl order preserved) of stripe ``s``'s
    records, and ``slo`` is each record's bottom stripe — the ownership
    key of the reference-point rule.

    With a ``stripes`` restriction only the replicas landing in that
    subrange are materialised and sorted — a stripe-split part never
    pays for sibling parts' replicas.  ``slo`` (the ownership key) is
    always computed over the full stripe set, so restricted and full
    layouts agree on every record they share.  ``charge=False``
    suppresses the plan's CPU charges: split parts recompute an
    *identical* plan only because process isolation denies them the
    part-0 arrays, so the algorithmic cost is charged once, to part 0.
    """
    slo = ((rel.yl - ylo) * inv_height).astype(np.int64)
    np.clip(slo, 0, k - 1, out=slo)
    shi = ((rel.yh - ylo) * inv_height).astype(np.int64)
    np.clip(shi, 0, k - 1, out=shi)
    if stripes is None:
        base = slo
        counts = shi - slo + 1
    else:
        base = np.maximum(slo, stripes.start)
        counts = np.maximum(np.minimum(shi, stripes.stop - 1) - base + 1, 0)
    total = int(counts.sum())
    orig = np.repeat(np.arange(rel.n), counts)
    offsets = np.cumsum(counts) - counts
    stripe = np.arange(total) - np.repeat(offsets - base, counts)
    # Stable sort groups replicas by stripe while preserving xl order
    # inside every stripe — each stripe is forward-scan ready as-is.
    order = np.argsort(stripe, kind="stable")
    bounds = np.searchsorted(stripe[order], np.arange(k + 1))
    if charge:
        full_total = int((shi - slo + 1).sum())
        counters.batch_ops += 6 * rel.n + 2 * full_total
        _charge_batch_sort(counters, full_total)
    return orig[order], bounds, slo


def _stripe_passes(
    np: Any,
    a: ColumnarRelation,
    b: ColumnarRelation,
    k: int,
    ylo: float,
    inv_height: float,
    counters: CpuCounters,
    batch_candidates: int,
    stripes: Optional[range] = None,
) -> Iterator[Tuple]:
    """The striped scan: per stripe, both passes plus the ownership rule.

    ``stripes`` restricts execution to a subrange of the ``k`` stripes
    (parallel stripe splitting); the ownership keys are always computed
    for the full stripe set so the ownership rule — and therefore the
    emitted pair set — is independent of how stripes are sliced across
    callers, while replica materialisation (and its CPU charge, levied
    on the part holding stripe 0) is restricted to the slice.
    """
    charge = stripes is None or stripes.start == 0
    a_orig, a_bounds, a_slo = _stripe_layout(
        np, a, ylo, inv_height, k, counters, stripes, charge
    )
    b_orig, b_bounds, b_slo = _stripe_layout(
        np, b, ylo, inv_height, k, counters, stripes, charge
    )
    searchsorted = np.searchsorted
    for s in stripes if stripes is not None else range(k):
        ai = a_orig[a_bounds[s] : a_bounds[s + 1]]
        bi = b_orig[b_bounds[s] : b_bounds[s + 1]]
        if ai.size == 0 or bi.size == 0:
            continue
        a_xl = a.xl[ai]
        b_xl = b.xl[bi]
        a_yl = a.yl[ai]
        a_yh = a.yh[ai]
        b_yl = b.yl[bi]
        b_yh = b.yh[bi]
        a_s = a_slo[ai]
        b_s = b_slo[bi]
        counters.batch_ops += 8 * (int(ai.size) + int(bi.size))
        lo = searchsorted(b_xl, a_xl, side="left")
        hi = searchsorted(b_xl, a.xh[ai], side="right")
        for a_hit, b_hit in _pass_batches(
            np, a_yl, a_yh, b_yl, b_yh, lo, hi, counters, batch_candidates,
            False, a_s, b_s, s,
        ):
            yield ai[a_hit], bi[b_hit]
        lo = searchsorted(a_xl, b_xl, side="right")
        hi = searchsorted(a_xl, b.xh[bi], side="right")
        for a_hit, b_hit in _pass_batches(
            np, b_yl, b_yh, a_yl, a_yh, lo, hi, counters, batch_candidates,
            True, b_s, a_s, s,
        ):
            yield ai[a_hit], bi[b_hit]


def forward_scan_batches(
    a: ColumnarRelation,
    b: ColumnarRelation,
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    stripe_slice: Optional[Tuple[int, int]] = None,
) -> Iterator[Tuple]:
    """All intersecting pairs of two xl-sorted columnar relations.

    Yields batches of ``(a_idx, b_idx)`` index arrays (positions in the
    *sorted* relations); every intersecting pair appears in exactly one
    batch, exactly once.  Batch order is deterministic but otherwise an
    implementation detail (the striped path emits stripe-major).
    Charges batch-level counters only.

    ``stripe_slice=(part, n_parts)`` runs only part ``part`` of the scan:
    the stripe plan is computed exactly as in the full scan, then only a
    contiguous, work-balanced subrange of the ``k`` stripes executes
    (:func:`_stripe_slice_range`).  The union over all parts,
    concatenated in part order, is bit-identical to the full scan — the
    ownership rule depends only on the (shared) stripe layout, never on
    the slicing.  When the input is too small to stripe (``k == 1``) the
    whole scan belongs to part 0 and every other part is empty.
    """
    np = get_numpy()
    if np is None:  # pragma: no cover - callers gate on numpy_enabled()
        raise RuntimeError("forward_scan_batches requires the numpy backend")
    if not (a.sorted_by_xl and b.sorted_by_xl):
        raise ValueError("forward_scan_batches needs xl-sorted inputs")
    if stripe_slice is not None:
        part, n_parts = stripe_slice
        if not 0 <= part < n_parts:
            raise ValueError(f"stripe_slice part {part} outside [0, {n_parts})")
    if a.n == 0 or b.n == 0:
        return
    ylo = min(float(a.yl.min()), float(b.yl.min()))
    yhi = max(float(a.yh.max()), float(b.yh.max()))
    span = yhi - ylo
    k = _stripe_count(np, a, b, span)
    if k > 1:
        stripes: Optional[range] = None
        if stripe_slice is not None:
            stripes = _stripe_slice_range(
                np, a, b, ylo, k / span, k, part, n_parts
            )
            if not stripes:
                return
        yield from _stripe_passes(
            np, a, b, k, ylo, k / span, counters, batch_candidates, stripes
        )
        return
    if stripe_slice is not None and part != 0:
        return  # unstriped scans belong entirely to part 0
    # Unstriped: pass 1 anchors in a; probes s with s.xl in [r.xl, r.xh].
    lo = np.searchsorted(b.xl, a.xl, side="left")
    hi = np.searchsorted(b.xl, a.xh, side="right")
    counters.batch_ops += 2 * a.n + 2 * b.n  # the four searchsorted sweeps
    yield from _pass_batches(
        np, a.yl, a.yh, b.yl, b.yh, lo, hi, counters, batch_candidates, False
    )
    # Pass 2: anchors in b; probes r with r.xl in (s.xl, s.xh].
    lo = np.searchsorted(a.xl, b.xl, side="right")
    hi = np.searchsorted(a.xl, b.xh, side="right")
    yield from _pass_batches(
        np, b.yl, b.yh, a.yl, a.yh, lo, hi, counters, batch_candidates, True
    )


# ----------------------------------------------------------------------
# registry adapter + pure-Python fallback
# ----------------------------------------------------------------------
def sweep_numpy_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
) -> None:
    """Internal-algorithm registry entry ``"sweep_numpy"``.

    Same calling convention as every other internal algorithm; detected
    pairs are computed in vectorized batches and only the *results* cross
    back into Python for ``emit``.  Falls back to the pure-Python forward
    scan (identical result set) when the numpy backend is off.
    """
    np = get_numpy()
    if np is None:
        python_forward_scan(left, right, emit, counters)
        return
    if not left or not right:
        return
    a = ColumnarRelation.from_kpes(left)
    b = ColumnarRelation.from_kpes(right)
    if getattr(left, "sorted_by_xl", False):
        a.sorted_by_xl = True
        left_sorted = list(left)
    else:
        _charge_batch_sort(counters, a.n)
        order = np.argsort(a.xl, kind="stable")
        a = ColumnarRelation(
            a.oid[order], a.xl[order], a.yl[order], a.xh[order], a.yh[order], True
        )
        left_sorted = [left[i] for i in order.tolist()]
    if getattr(right, "sorted_by_xl", False):
        b.sorted_by_xl = True
        right_sorted = list(right)
    else:
        _charge_batch_sort(counters, b.n)
        order = np.argsort(b.xl, kind="stable")
        b = ColumnarRelation(
            b.oid[order], b.xl[order], b.yl[order], b.xh[order], b.yh[order], True
        )
        right_sorted = [right[i] for i in order.tolist()]
    for a_idx, b_idx in forward_scan_batches(a, b, counters, batch_candidates):
        for i, j in zip(a_idx.tolist(), b_idx.tolist()):
            emit(left_sorted[i], right_sorted[j])


def python_forward_scan(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
) -> None:
    """Two-pass forward scan on plain lists — the no-numpy fallback.

    Emits the same pair *set* as the vectorized kernel (which stripes, so
    its order differs).  Charges classic per-element counters (it
    *executes* per element).
    """
    if not left or not right:
        return
    sorted_left = ensure_sorted_by_xl(left, counters)
    sorted_right = ensure_sorted_by_xl(right, counters)
    tests = 0
    structure_ops = 2 * (len(sorted_left) + len(sorted_right))
    n_right = len(sorted_right)
    n_left = len(sorted_left)

    # Pass 1: anchors r; probes s with s.xl in [r.xl, r.xh].
    cursor = 0
    for r in sorted_left:
        rxl = r[1]
        rxh = r[3]
        ryl = r[2]
        ryh = r[4]
        while cursor < n_right and sorted_right[cursor][1] < rxl:
            cursor += 1
        j = cursor
        while j < n_right:
            s = sorted_right[j]
            if s[1] > rxh:
                break
            tests += 1
            if s[2] <= ryh and ryl <= s[4]:
                emit(r, s)
            j += 1
    # Pass 2: anchors s; probes r with r.xl in (s.xl, s.xh].
    cursor = 0
    for s in sorted_right:
        sxl = s[1]
        sxh = s[3]
        syl = s[2]
        syh = s[4]
        while cursor < n_left and sorted_left[cursor][1] <= sxl:
            cursor += 1
        i = cursor
        while i < n_left:
            r = sorted_left[i]
            if r[1] > sxh:
                break
            tests += 1
            if r[2] <= syh and syl <= r[4]:
                emit(r, s)
            i += 1
    counters.intersection_tests += tests
    counters.structure_ops += structure_ops


__all__ = [
    "BATCH_OPS_PER_CANDIDATE",
    "BY_XL",
    "DEFAULT_BATCH_CANDIDATES",
    "forward_scan_batches",
    "python_forward_scan",
    "sorted_columns",
    "sweep_numpy_join",
]
