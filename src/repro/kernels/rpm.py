"""Vectorized Reference Point Method: refpoints and ownership in one shot.

The paper's RPM keeps a detected pair iff its reference point
``x = (max(r.xl, s.xl), min(r.yh, s.yh))`` falls into the region of the
partition being joined.  For the top-level PBSM grid that region test is
pure arithmetic (tile of the point, hash of the tile), so a whole batch of
detected pairs can be filtered with five array operations — this is what
makes the columnar kernel path fast end-to-end: candidate generation,
y-test *and* duplicate suppression all stay inside numpy.

The tile/hash arithmetic below replays :class:`repro.pbsm.grid.TileGrid`
operation-for-operation in float64/int64, so the vectorized owner of every
point is bit-identical to ``grid.partition_of_point`` — the property the
parity tests pin down on tile-boundary points.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.internal.sweep_list import sweep_list_join
from repro.kernels.backend import get_numpy, require_numpy
from repro.kernels.columnar import ColumnarRelation
from repro.kernels.sweep import (
    DEFAULT_BATCH_CANDIDATES,
    _charge_batch_sort,
    forward_scan_batches,
    sorted_columns,
)
from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y, TileGrid

#: Array operations charged per detected pair for the batched RPM test
#: (two refpoint selects, two tile computations, hash, compare).
BATCH_OPS_PER_RPM_TEST = 6


def point_tiles(np: Any, grid: TileGrid, x: Any, y: Any) -> Tuple[Any, Any]:
    """Vectorized ``TileGrid.tile_of_point`` over coordinate arrays."""
    space = grid.space
    tx = ((x - space.xl) / space.width * grid.nx).astype(np.int64)
    ty = ((y - space.yl) / space.height * grid.ny).astype(np.int64)
    np.clip(tx, 0, grid.nx - 1, out=tx)
    np.clip(ty, 0, grid.ny - 1, out=ty)
    return tx, ty


def tile_partitions(np: Any, grid: TileGrid, tx: Any, ty: Any) -> Any:
    """Vectorized ``TileGrid.partition_of_tile`` over tile-index arrays."""
    if grid.mapping == "hash":
        return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % grid.n_partitions
    return (ty * grid.nx + tx) % grid.n_partitions


def point_partitions(np: Any, grid: TileGrid, x: Any, y: Any) -> Any:
    """Vectorized ``TileGrid.partition_of_point`` (RPM's region lookup)."""
    tx, ty = point_tiles(np, grid, x, y)
    return tile_partitions(np, grid, tx, ty)


def rpm_join_ids(
    a_cols: ColumnarRelation,
    b_cols: ColumnarRelation,
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    stripe_slice: Optional[Tuple[int, int]] = None,
) -> Tuple:
    """Columnar core of :func:`rpm_join_task`: id buffers, no tuples.

    Runs the forward-scan kernel plus the batched RPM ownership test on
    two columnar relations and returns ``(rid, sid, suppressed)`` where
    ``rid``/``sid`` are int64 oid arrays — the ``i``-th owned pair is
    ``(rid[i], sid[i])``, in exactly the order :func:`rpm_join_task`
    emits its tuples.  Unsorted inputs are sorted here with the same
    stable argsort (and the same charged ``batch_ops``) as
    :func:`~repro.kernels.sweep.sorted_columns`, so a caller gathering
    rows straight out of a shared-memory segment charges identically to
    one reading pickled record lists.

    ``stripe_slice=(part, n_parts)`` restricts the scan to its stripe
    part (see :func:`~repro.kernels.sweep.forward_scan_batches`); the
    parts concatenated in order are bit-identical to the full call.
    """
    np = require_numpy()
    if a_cols.n == 0 or b_cols.n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, 0
    # Stripe-split sibling parts re-sort only because process isolation
    # denies them part 0's arrays; the algorithmic sort is charged once.
    charge_sort = stripe_slice is None or stripe_slice[0] == 0
    if a_cols.sorted_by_xl:
        a = a_cols
    else:
        if charge_sort:
            _charge_batch_sort(counters, a_cols.n)
        a = a_cols.sort_by_xl()
    if b_cols.sorted_by_xl:
        b = b_cols
    else:
        if charge_sort:
            _charge_batch_sort(counters, b_cols.n)
        b = b_cols.sort_by_xl()
    rids = []
    sids = []
    suppressed = 0
    detected = 0
    for a_idx, b_idx in forward_scan_batches(
        a, b, counters, batch_candidates, stripe_slice
    ):
        ref_x = np.maximum(a.xl[a_idx], b.xl[b_idx])
        ref_y = np.minimum(a.yh[a_idx], b.yh[b_idx])
        owner = point_partitions(np, grid, ref_x, ref_y)
        mask = owner == pid
        detected += int(ref_x.shape[0])
        rids.append(a.oid[a_idx][mask])
        sids.append(b.oid[b_idx][mask])
        suppressed += int(ref_x.shape[0]) - int(np.count_nonzero(mask))
    counters.batch_ops += BATCH_OPS_PER_RPM_TEST * detected
    if rids:
        return np.concatenate(rids), np.concatenate(sids), suppressed
    empty = np.empty(0, dtype=np.int64)
    return empty, empty, suppressed


def rpm_join_task(
    records_left: Sequence[Tuple],
    records_right: Sequence[Tuple],
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    stripe_slice: Optional[Tuple[int, int]] = None,
) -> Tuple[List[Tuple[int, int]], int]:
    """One partition-pair join with batched RPM ownership by *pid*.

    Returns ``(pairs, duplicates_suppressed)``; ``pairs`` holds
    ``(left_oid, right_oid)`` tuples owned by partition *pid*.  Uses the
    columnar kernel when the numpy backend is on, and an equivalent
    per-pair path (list sweep + scalar RPM) otherwise — identical result
    sets either way.  With ``stripe_slice=(part, n_parts)`` only that
    stripe part of the scan runs; the numpy-free fallback cannot slice,
    so it assigns the whole join to part 0 and leaves other parts empty.
    """
    np = get_numpy()
    if np is None:
        if stripe_slice is not None and stripe_slice[0] != 0:
            return [], 0
        return _python_rpm_join_task(records_left, records_right, grid, pid, counters)
    if not records_left or not records_right:
        return [], 0
    if stripe_slice is None or stripe_slice[0] == 0:
        a = sorted_columns(records_left, counters)
        b = sorted_columns(records_right, counters)
    else:
        # Sibling parts re-sort identical arrays only because process
        # isolation denies them part 0's copy; charge the sort once.
        scratch = CpuCounters()
        a = sorted_columns(records_left, scratch)
        b = sorted_columns(records_right, scratch)
    rid, sid, suppressed = rpm_join_ids(
        a, b, grid, pid, counters, batch_candidates, stripe_slice
    )
    return list(zip(rid.tolist(), sid.tolist())), suppressed


def _python_rpm_join_task(
    records_left: Sequence[Tuple],
    records_right: Sequence[Tuple],
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
) -> Tuple[List[Tuple[int, int]], int]:
    """Fallback: list sweep + scalar RPM (classic per-element counting)."""
    pairs: List[Tuple[int, int]] = []
    suppressed = 0
    refpoint_tests = 0
    partition_of_point = grid.partition_of_point

    def emit(r: Tuple, s: Tuple) -> None:
        nonlocal suppressed, refpoint_tests
        refpoint_tests += 1
        rx = r[1]
        sx = s[1]
        ry = r[4]
        sy = s[4]
        x = rx if rx >= sx else sx
        y = ry if ry <= sy else sy
        if partition_of_point(x, y) == pid:
            pairs.append((r[0], s[0]))
        else:
            suppressed += 1

    sweep_list_join(records_left, records_right, emit, counters)
    counters.refpoint_tests += refpoint_tests
    return pairs, suppressed


__all__ = [
    "BATCH_OPS_PER_RPM_TEST",
    "point_partitions",
    "point_tiles",
    "rpm_join_ids",
    "rpm_join_task",
    "tile_partitions",
]
