"""repro — a reproduction of Dittrich & Seeger, ICDE 2000.

*Data Redundancy and Duplicate Detection in Spatial Join Processing*:
improvements to the two leading no-index spatial join algorithms —
PBSM (Patel & DeWitt) and S3J (Koudas & Sevcik) — centred on an online
Reference Point Method for duplicate elimination and on the choice of
internal (in-memory) join algorithm.

Quick start::

    from repro import PBSM, S3J, mb
    from repro.datasets import uniform_rects

    R = uniform_rects(10_000, seed=1)
    S = uniform_rects(10_000, seed=2, start_oid=1_000_000)
    result = PBSM(memory_bytes=mb(2.5), internal="sweep_trie").run(R, S)
    print(len(result), result.stats.sim_seconds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from typing import Optional, Sequence, Tuple

from repro.core import (
    KPE,
    distance_join,
    CpuCounters,
    JoinResult,
    JoinStats,
    Space,
    intersects,
    make_kpe,
    reference_point,
)
from repro.estimate import GridHistogram
from repro.internal import INTERNAL_ALGORITHMS, internal_algorithm
from repro.io import CostModel, SimulatedDisk, mb
from repro.obs import KIND_SECTION, MetricsRegistry, NULL_TRACER, Tracer
from repro.pbsm import PBSM, ParallelPBSM, pbsm_join
from repro.planner import JoinPlan, PlannerCache, plan_join
from repro.rtree import IndexNestedLoopJoin, RTree, RTreeJoin, index_nested_loop_join, rtree_join
from repro.s3j import S3J, quadtree_join, s3j_join
from repro.shj import SpatialHashJoin, spatial_hash_join
from repro.sssj import SSSJ, sssj_join
from repro.verify import VerificationError, results_consistent, verify_driver, verify_result

__version__ = "1.0.0"

#: Fixed join method registry for :func:`spatial_join`.
JOIN_METHODS = ("pbsm", "s3j", "sssj", "shj", "rtree")

#: Everything :func:`spatial_join` accepts, including the planner.
SPATIAL_JOIN_METHODS = JOIN_METHODS + ("auto",)


def spatial_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    method: str = "pbsm",
    workers: Optional[int] = None,
    shared_memory: bool = False,
    tracer=None,
    **kwargs,
) -> JoinResult:
    """Run the filter step of a spatial intersection join.

    Parameters
    ----------
    left, right:
        Sequences of KPE tuples ``(oid, xl, yl, xh, yh)``.
    memory_bytes:
        Main-memory budget for the join (see :func:`repro.io.mb`).
    method:
        "pbsm" (default — the paper's overall winner), "s3j", "sssj",
        "shj" (spatial hash join), "rtree" (index on both relations), or
        "auto" — let the cost-based planner profile the inputs and pick
        algorithm, internal join and ``t``-factor itself.
    workers:
        When given (and > 1), execute the join-phase partition pairs on a
        real process pool via :class:`~repro.pbsm.ParallelPBSM` —
        supported for ``method="pbsm"`` and, as an enumeration hint, for
        ``method="auto"`` (the planner then costs parallel candidates on
        both transports against the sequential plans).  ``workers=1``
        runs the same task decomposition in-process.  Result pairs are
        identical to the sequential execution.
    shared_memory:
        With ``workers`` and ``method="pbsm"``: ship partition data to
        the pool through one zero-copy shared-memory segment instead of
        pickling record lists (see ``docs/kernels.md``).  Degrades to the
        pickle transport when numpy or platform shared memory is missing
        or ``REPRO_DISABLE_SHM`` is set; ``stats.shared_memory`` records
        what actually ran.
    tracer:
        A :class:`~repro.obs.Tracer` to record spans on: one
        ``spatial_join`` section wrapping the planner's ``plan`` span
        (method="auto") and the driver's ``run``/``phase``/``worker``/
        ``task`` spans.  Defaults to the no-op tracer, whose spans still
        time themselves, so the stats below are always populated.
    kwargs:
        Forwarded to the driver (e.g. ``internal="sweep_trie"``,
        ``dedup="rpm"``/``"twolayer"``/``"sort"``, ``replicate=True``,
        ``curve="peano"``).  With ``workers``, ``dedup`` must be an
        online scheme (``"rpm"`` or ``"twolayer"`` — corner-class
        duplicate avoidance, see ``docs/duplicates.md``);
        :class:`~repro.pbsm.ParallelPBSM` rejects ``dedup="sort"``.
        With ``method="auto"``: forwarded to
        :func:`repro.planner.plan_join` (e.g. ``cache=...``,
        ``t_grid=...``, ``methods=...``).

    Returns
    -------
    JoinResult
        All ``(left_oid, right_oid)`` pairs whose MBRs intersect, each
        exactly once, plus execution statistics —
        ``stats.total_wall_seconds`` covers this whole call (planning
        included; ``stats.planning_seconds`` isolates the planner's
        share).  For ``method="auto"`` the chosen
        :class:`~repro.planner.JoinPlan` is attached as ``result.plan``
        (``result.plan.explain()`` renders the EXPLAIN report with
        estimated-vs-actual counters and phase drift).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span(
        "spatial_join", kind=KIND_SECTION, method=method, workers=workers
    ) as sp:
        if workers is not None and method not in ("pbsm", "auto"):
            raise ValueError(
                f"workers= requires method='pbsm' or 'auto', got method={method!r}"
            )
        if shared_memory and workers is None:
            raise ValueError("shared_memory=True requires workers=")
        if workers is not None and method == "pbsm":
            kwargs.setdefault("internal", "sweep_numpy")
            kwargs.setdefault("executor", "process")
            result = ParallelPBSM(
                memory_bytes,
                workers,
                shared_memory=shared_memory,
                tracer=tracer,
                **kwargs,
            ).run(left, right)
        elif method == "auto":
            from repro.planner.cache import DEFAULT_CACHE

            kwargs.setdefault("cache", DEFAULT_CACHE)
            if workers is not None:
                kwargs["workers"] = workers
            plan = plan_join(left, right, memory_bytes, tracer=tracer, **kwargs)
            result = plan.execute(left, right, tracer=tracer)
            result.plan = plan
            result.stats.planning_seconds = plan.planning_seconds
        elif method == "pbsm":
            result = PBSM(memory_bytes, tracer=tracer, **kwargs).run(left, right)
        elif method == "s3j":
            result = S3J(memory_bytes, tracer=tracer, **kwargs).run(left, right)
        elif method == "sssj":
            result = SSSJ(memory_bytes, tracer=tracer, **kwargs).run(left, right)
        elif method == "shj":
            result = SpatialHashJoin(memory_bytes, tracer=tracer, **kwargs).run(
                left, right
            )
        elif method == "rtree":
            # The index join has no memory knob; its budget is the buffer.
            result = RTreeJoin(tracer=tracer, **kwargs).run(left, right)
        else:
            raise ValueError(
                f"unknown method {method!r}; choose from {SPATIAL_JOIN_METHODS}"
            )
    result.stats.total_wall_seconds = sp.wall_seconds
    return result


__all__ = [
    "CostModel",
    "GridHistogram",
    "IndexNestedLoopJoin",
    "CpuCounters",
    "INTERNAL_ALGORITHMS",
    "JOIN_METHODS",
    "JoinPlan",
    "JoinResult",
    "JoinStats",
    "KPE",
    "MetricsRegistry",
    "NULL_TRACER",
    "PBSM",
    "ParallelPBSM",
    "PlannerCache",
    "RTree",
    "RTreeJoin",
    "S3J",
    "SPATIAL_JOIN_METHODS",
    "SSSJ",
    "SpatialHashJoin",
    "SimulatedDisk",
    "Tracer",
    "VerificationError",
    "Space",
    "distance_join",
    "index_nested_loop_join",
    "internal_algorithm",
    "intersects",
    "make_kpe",
    "mb",
    "pbsm_join",
    "plan_join",
    "quadtree_join",
    "reference_point",
    "rtree_join",
    "s3j_join",
    "spatial_hash_join",
    "spatial_join",
    "results_consistent",
    "sssj_join",
    "verify_driver",
    "verify_result",
]
