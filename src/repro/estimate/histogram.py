"""Grid histograms and spatial-join selectivity estimation.

Section 3.2.3: "computing the number of partitions is generally difficult
when the input relations do not refer to base relations of the underlying
DBMS.  Then, the DBMS has to provide statistics about the intermediate
results of operators."  This module supplies those statistics: a compact
grid histogram per relation (record count and average edge lengths per
cell) and the standard estimators built on it —

* expected join result count (drives Table 2-style sanity checks and the
  multiway join-order heuristic),
* expected cardinality/size of a join's *output* viewed as a new spatial
  relation (what formula (1) needs for intermediate inputs).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.space import Space
from repro.pbsm.estimator import estimate_partitions


class GridHistogram:
    """Per-cell record counts and mean edge lengths over a fixed grid."""

    __slots__ = ("space", "resolution", "counts", "sum_w", "sum_h", "n")

    def __init__(self, space: Space, resolution: int = 32):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.space = space
        self.resolution = resolution
        cells = resolution * resolution
        self.counts = [0.0] * cells
        self.sum_w = [0.0] * cells
        self.sum_h = [0.0] * cells
        self.n = 0

    @classmethod
    def build(
        cls,
        kpes: Sequence[Tuple],
        space: Optional[Space] = None,
        resolution: int = 32,
    ) -> "GridHistogram":
        """Histogram a relation by rectangle centre points."""
        hist = cls(space if space is not None else Space.of(kpes), resolution)
        res = hist.resolution
        for k in kpes:
            cx = (k[1] + k[3]) / 2.0
            cy = (k[2] + k[4]) / 2.0
            ix = min(res - 1, max(0, int(hist.space.norm_x(cx) * res)))
            iy = min(res - 1, max(0, int(hist.space.norm_y(cy) * res)))
            cell = iy * res + ix
            hist.counts[cell] += 1
            hist.sum_w[cell] += k[3] - k[1]
            hist.sum_h[cell] += k[4] - k[2]
            hist.n += 1
        return hist

    # ------------------------------------------------------------------
    def cell_area(self) -> float:
        return (self.space.width / self.resolution) * (
            self.space.height / self.resolution
        )

    def mean_edges(self, cell: int) -> Tuple[float, float]:
        count = self.counts[cell]
        if count == 0:
            return 0.0, 0.0
        return self.sum_w[cell] / count, self.sum_h[cell] / count

    def total_mean_edges(self) -> Tuple[float, float]:
        if self.n == 0:
            return 0.0, 0.0
        return sum(self.sum_w) / self.n, sum(self.sum_h) / self.n

    # ------------------------------------------------------------------
    # estimators
    # ------------------------------------------------------------------
    def estimate_join_results(self, other: "GridHistogram") -> float:
        """Expected number of intersecting pairs against *other*.

        Assumes matching grids (same space, same resolution).  Within a
        cell of area A, two uniformly placed rectangles with mean edges
        (w1, h1) / (w2, h2) intersect with probability
        ``min(1, (w1 + w2) * (h1 + h2) / A)`` — the classic Minkowski-sum
        argument.  Cross-cell pairs are approximated by each rectangle's
        overhang being folded into its own cell, which keeps the estimator
        a sum over cells.
        """
        if (
            other.space != self.space
            or other.resolution != self.resolution
        ):
            raise ValueError("histograms must share space and resolution")
        area = self.cell_area()
        if area <= 0:
            return 0.0
        expected = 0.0
        for cell in range(self.resolution * self.resolution):
            n1 = self.counts[cell]
            n2 = other.counts[cell]
            if n1 == 0 or n2 == 0:
                continue
            w1, h1 = self.mean_edges(cell)
            w2, h2 = other.mean_edges(cell)
            probability = min(1.0, (w1 + w2) * (h1 + h2) / area)
            expected += n1 * n2 * probability
        return expected

    def estimate_detected_pairs(
        self, other: "GridHistogram", tiles: int
    ) -> float:
        """Expected pair *detections* on a ``tiles`` x ``tiles`` grid.

        A pair replicated onto a tile grid is detected once per tile
        holding copies of both rectangles — every tile the pair's
        overlap region touches.  Two intervals of lengths a and b that
        do intersect overlap by roughly their harmonic mean
        ``a*b/(a+b)``, so each cell's expected pairs are scaled by
        ``(1 + ov_w/tile_w)(1 + ov_h/tile_h)``.  On heavy-tailed extent
        distributions this grows far beyond the result count: the
        difference is the duplicate volume RPM (or sort dedup) must
        remove, which a planner has to price.
        """
        if (
            other.space != self.space
            or other.resolution != self.resolution
        ):
            raise ValueError("histograms must share space and resolution")
        area = self.cell_area()
        if area <= 0 or tiles < 1:
            return 0.0
        tile_w = self.space.width / tiles
        tile_h = self.space.height / tiles
        expected = 0.0
        for cell in range(self.resolution * self.resolution):
            n1 = self.counts[cell]
            n2 = other.counts[cell]
            if n1 == 0 or n2 == 0:
                continue
            w1, h1 = self.mean_edges(cell)
            w2, h2 = other.mean_edges(cell)
            probability = min(1.0, (w1 + w2) * (h1 + h2) / area)
            ov_w = w1 * w2 / (w1 + w2) if w1 + w2 > 0 else 0.0
            ov_h = h1 * h2 / (h1 + h2) if h1 + h2 > 0 else 0.0
            copies = (1.0 + ov_w / tile_w) * (1.0 + ov_h / tile_h)
            expected += n1 * n2 * probability * copies
        return expected

    def estimate_join_output(
        self, other: "GridHistogram"
    ) -> Tuple[float, float, float]:
        """(cardinality, mean width, mean height) of the join output.

        The output of a filter-step join, viewed as a spatial relation of
        intersection MBRs, has edges bounded by the smaller input edge —
        estimated as ``min`` of the per-relation means.  This is what a
        downstream operator (e.g. the next join of a multiway plan) needs
        to run formula (1).
        """
        cardinality = self.estimate_join_results(other)
        w1, h1 = self.total_mean_edges()
        w2, h2 = other.total_mean_edges()
        return cardinality, min(w1, w2), min(h1, h2)


def estimate_partitions_for_intermediate(
    hist_left: GridHistogram,
    hist_right: GridHistogram,
    next_input_cardinality: int,
    kpe_bytes: int,
    memory_bytes: int,
    t_factor: float = 1.2,
) -> int:
    """Formula (1) for a join whose *left* input is itself a join output.

    The DBMS-statistics scenario of Section 3.2.3: the left input's
    cardinality is not known but estimated from the histograms of the two
    relations that produce it.
    """
    estimated_left = int(math.ceil(hist_left.estimate_join_results(hist_right)))
    return estimate_partitions(
        estimated_left, next_input_cardinality, kpe_bytes, memory_bytes, t_factor
    )


def choose_join_order(
    histograms: List[GridHistogram],
) -> List[int]:
    """Greedy multiway join ordering by estimated pairwise output size.

    Starts with the pair of relations with the smallest estimated result,
    then repeatedly appends the relation with the smallest estimated
    result against the most recently joined relation.  A deliberately
    simple System-R-flavoured heuristic for the multiway example.
    """
    n = len(histograms)
    if n < 2:
        return list(range(n))
    best_pair = None
    best_value = math.inf
    for i in range(n):
        for j in range(i + 1, n):
            value = histograms[i].estimate_join_results(histograms[j])
            if value < best_value:
                best_value = value
                best_pair = (i, j)
    order = list(best_pair)
    remaining = [i for i in range(n) if i not in order]
    while remaining:
        last = order[-1]
        nxt = min(
            remaining,
            key=lambda i: histograms[last].estimate_join_results(histograms[i]),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order
