"""Statistics and estimation: grid histograms, join selectivity, formula
(1) for intermediate results (the Section 3.2.3 scenario)."""

from repro.estimate.histogram import (
    GridHistogram,
    choose_join_order,
    estimate_partitions_for_intermediate,
)

__all__ = [
    "GridHistogram",
    "choose_join_order",
    "estimate_partitions_for_intermediate",
]
