"""SARIF 2.1.0 output for repro-lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the artifact produced by
``python -m repro.lint --format sarif`` turns every finding into an
inline PR annotation.  Only the small stable core of the format is
emitted — one run, one driver, one result per finding with a physical
location — which is exactly the subset the ingestion pipelines consume.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "helpUri": "docs/static_analysis.md",
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> Dict[str, object]:
    """The findings as one SARIF 2.1.0 log (a JSON-ready dict)."""
    used = {f.rule for f in findings}
    descriptors: List[Dict[str, object]] = [
        _rule_descriptor(rule)
        for rule in rules
        if rule.rule_id  # skip anonymous test doubles
    ]
    known = {d["id"] for d in descriptors}
    for rule_id in sorted(used - known):
        # Findings from outside the rule set (e.g. RPL000 syntax errors).
        descriptors.append(
            {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": "repro-lint finding"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": descriptors,
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "to_sarif"]
