"""Intra-procedural control-flow graphs over ``ast``.

One :class:`CFGNode` per *statement* (plus a synthetic entry and exit),
edges for everything that moves control between statements:

* branches (``if``/``elif``/``else``, ``match``),
* loops (back-edges, ``else`` clauses, ``break``/``continue``),
* ``try``/``except``/``else``/``finally`` — every statement of a try
  body gets an exception edge to each handler (or straight to the
  ``finally`` block when there is no handler), and abrupt exits
  (``return``/``raise``/``break``/``continue``) are routed *through*
  every enclosing ``finally`` before reaching their real target,
* ``with`` blocks (linear; the context manager's ``__exit__`` is not a
  statement, so custody via ``with`` is handled syntactically by rules),
* early ``return``/``raise`` edges to the exit node.

Exception edges are *labelled* (:meth:`CFG.exc_successors`): the
dataflow solver propagates a statement's **in**-state along them,
because a statement that raises did not complete — ``seg =
SharedMemory(...)`` raising means no segment was ever acquired.  Each
statement gets exception edges only to the handlers/finally of its
*innermost* enclosing ``try`` (an exception inside a nested try reaches
the outer handler only through the inner construct's own routing), and
statements inside a ``finally`` block are assumed not to raise.

The graph is deliberately an approximation: exception edges are added
only from protected statements (not from arbitrary expressions that
might raise), because the rules built on top of it reason about
*explicit* control flow — leaks on an early return, merges on one arm
of a branch — not about asynchronous exceptions.  See
``docs/static_analysis.md`` for the full contract.

Nested function definitions are opaque single statements here: their
bodies get their own CFG when the rule walks into them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["CFG", "CFGNode", "build_cfg", "cfg_for_function"]


@dataclass(frozen=True)
class CFGNode:
    """One statement (or the synthetic ``entry``/``exit``) of a CFG."""

    nid: int
    #: "entry", "exit", or the lowercase ``ast`` class name ("if", "assign", ...)
    kind: str
    stmt: Optional[ast.stmt] = field(default=None, compare=False, repr=False)

    @property
    def synthetic(self) -> bool:
        return self.stmt is None

    @property
    def lineno(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def describe(self) -> str:
        """Stable human/test-facing label: ``kind@line`` (or bare kind)."""
        if self.stmt is None:
            return self.kind
        return f"{self.kind}@{self.stmt.lineno}"


class CFG:
    """A statement-level control-flow graph for one function body."""

    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self._succ: Dict[int, List[int]] = {}
        self._exc: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self.entry: int = self._add_node("entry", None)
        self.exit: int = self._add_node("exit", None)

    # -- construction ---------------------------------------------------
    def _add_node(self, kind: str, stmt: Optional[ast.stmt]) -> int:
        nid = len(self.nodes)
        self.nodes[nid] = CFGNode(nid=nid, kind=kind, stmt=stmt)
        self._succ[nid] = []
        self._exc[nid] = []
        self._pred[nid] = []
        return nid

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    def add_exc_edge(self, src: int, dst: int) -> None:
        """An edge taken only when *src* raises (carries src's in-state)."""
        if dst not in self._exc[src]:
            self._exc[src].append(dst)
            self._pred[dst].append(src)

    # -- queries --------------------------------------------------------
    def successors(self, nid: int) -> Tuple[int, ...]:
        """Normal + exceptional successors (the reachability view)."""
        return tuple(self._succ[nid]) + tuple(
            dst for dst in self._exc[nid] if dst not in self._succ[nid]
        )

    def normal_successors(self, nid: int) -> Tuple[int, ...]:
        return tuple(self._succ[nid])

    def exc_successors(self, nid: int) -> Tuple[int, ...]:
        return tuple(self._exc[nid])

    def predecessors(self, nid: int) -> Tuple[int, ...]:
        return tuple(self._pred[nid])

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes.values():
            if node.stmt is not None:
                yield node

    def node_for(self, stmt: ast.stmt) -> Optional[CFGNode]:
        for node in self.nodes.values():
            if node.stmt is stmt:
                return node
        return None

    def reachable(self) -> Set[int]:
        """Node ids reachable from the entry node."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.successors(nid))
        return seen

    def edge_labels(self, include_exc: bool = True) -> Set[Tuple[str, str]]:
        """Edges as ``(describe, describe)`` pairs — the golden-test view."""
        out: Set[Tuple[str, str]] = set()
        for src, dsts in self._succ.items():
            for dst in dsts:
                out.add((self.nodes[src].describe(), self.nodes[dst].describe()))
        if include_exc:
            for src, dsts in self._exc.items():
                for dst in dsts:
                    out.add(
                        (self.nodes[src].describe(), self.nodes[dst].describe())
                    )
        return out


class _Loop:
    """Per-loop routing state: where ``continue`` and ``break`` go."""

    def __init__(self, head: int) -> None:
        self.head = head
        #: node ids whose control falls to the statement *after* the loop
        self.break_frontier: List[int] = []


class _Finally:
    """One enclosing ``finally`` block while its ``try`` is being built."""

    def __init__(self, entry_id: int, end_frontier: List[int]) -> None:
        self.entry_id = entry_id
        self.end_frontier = end_frontier
        #: abrupt continuations that must leave through this finally:
        #: "exit", ("head", nid) for continue, ("loop", _Loop) for break,
        #: or ("fin", nid) for chaining into an outer finally.
        self.pending: List[object] = []


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_Loop] = []
        self.finallies: List[_Finally] = []
        #: how many loops were open when each finally was pushed — a
        #: break/continue only unwinds finallies opened *inside* its loop.
        self.finally_loop_depth: List[int] = []
        #: stack of active exception protectors while building: id(Try)
        #: during a try body, None (sentinel) during a finally block.
        self.protectors: List[Optional[int]] = []
        #: node id -> id(Try) of its innermost protecting try, if any.
        self.protected_by: Dict[int, Optional[int]] = {}

    # -- abrupt-exit routing --------------------------------------------
    def _route_abrupt(self, nid: int, kind: str) -> None:
        """Send control from an abrupt statement through enclosing finallies.

        ``kind`` is "exit" (return/raise), "break" or "continue".
        """
        if kind == "exit":
            chain = list(self.finallies)
        else:
            depth = len(self.loops)  # the loop being targeted is the innermost
            chain = [
                fin
                for fin, fdepth in zip(self.finallies, self.finally_loop_depth)
                if fdepth >= depth
            ]
        chain = list(reversed(chain))  # innermost first
        if kind == "exit":
            final: object = "exit"
        elif kind == "continue":
            final = ("head", self.loops[-1].head)
        else:
            final = ("loop", self.loops[-1])
        if not chain:
            self._resolve_target(final, [nid])
            return
        self.cfg.add_edge(nid, chain[0].entry_id)
        for i, fin in enumerate(chain):
            nxt: object
            if i + 1 < len(chain):
                nxt = ("fin", chain[i + 1].entry_id)
            else:
                nxt = final
            if nxt not in fin.pending:
                fin.pending.append(nxt)

    def _resolve_target(self, target: object, sources: Sequence[int]) -> None:
        if target == "exit":
            for src in sources:
                self.cfg.add_edge(src, self.cfg.exit)
        elif isinstance(target, tuple) and target[0] == "head":
            for src in sources:
                self.cfg.add_edge(src, target[1])
        elif isinstance(target, tuple) and target[0] == "fin":
            for src in sources:
                self.cfg.add_edge(src, target[1])
        elif isinstance(target, tuple) and target[0] == "loop":
            target[1].break_frontier.extend(sources)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown abrupt target {target!r}")

    # -- statement dispatch ---------------------------------------------
    def build_body(
        self, stmts: Sequence[ast.stmt], frontier: List[int]
    ) -> List[int]:
        """Wire *stmts* sequentially; return the fall-through frontier."""
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def _new_stmt_node(self, stmt: ast.stmt, frontier: Sequence[int]) -> int:
        nid = self.cfg._add_node(type(stmt).__name__.lower(), stmt)
        self.protected_by[nid] = self.protectors[-1] if self.protectors else None
        for src in frontier:
            self.cfg.add_edge(src, nid)
        return nid

    def build_stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        nid = self._new_stmt_node(stmt, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._route_abrupt(nid, "exit")
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self._route_abrupt(nid, "break")
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self._route_abrupt(nid, "continue")
            return []
        return [nid]

    # -- compound statements --------------------------------------------
    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        nid = self._new_stmt_node(stmt, frontier)
        out = self.build_body(stmt.body, [nid])
        if stmt.orelse:
            out = out + self.build_body(stmt.orelse, [nid])
        else:
            out = out + [nid]
        return out

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], frontier: List[int]
    ) -> List[int]:
        head = self._new_stmt_node(stmt, frontier)
        loop = _Loop(head)
        self.loops.append(loop)
        body_end = self.build_body(stmt.body, [head])
        self.loops.pop()
        for src in body_end:
            self.cfg.add_edge(src, head)  # back edge
        # Does the loop ever *exhaust* (test goes false / iterator ends)?
        exhausts = True
        if isinstance(stmt, ast.While):
            test = stmt.test
            if isinstance(test, ast.Constant) and bool(test.value):
                exhausts = False  # ``while True``: only break leaves
        after: List[int] = list(loop.break_frontier)
        if exhausts:
            if stmt.orelse:
                after = after + self.build_body(stmt.orelse, [head])
            else:
                after = after + [head]
        elif stmt.orelse:
            # ``while True: ... else:`` — the else arm is unreachable.
            self.build_body(stmt.orelse, [])
        return after

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: List[int]
    ) -> List[int]:
        nid = self._new_stmt_node(stmt, frontier)
        return self.build_body(stmt.body, [nid])

    def _match(self, stmt: ast.Match, frontier: List[int]) -> List[int]:
        nid = self._new_stmt_node(stmt, frontier)
        out: List[int] = [nid]  # no case may match
        for case in stmt.cases:
            out = out + self.build_body(case.body, [nid])
        return out

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        nid = self._new_stmt_node(stmt, frontier)
        fin: Optional[_Finally] = None
        fin_first: Optional[int] = None
        if stmt.finalbody:
            # Build the finally block detached; everything that leaves the
            # try construct — normally or abruptly — funnels through it.
            # The sentinel protector marks its statements as non-raising
            # (cleanup code failing is outside this model).
            before = len(self.cfg.nodes)
            self.protectors.append(None)
            fin_end = self.build_body(stmt.finalbody, [])
            self.protectors.pop()
            fin_first = before if len(self.cfg.nodes) > before else None
            if fin_first is None:  # pragma: no cover - empty finally is a syntax error
                fin_end = []
            fin = _Finally(fin_first if fin_first is not None else self.cfg.exit, fin_end)
            self.finallies.append(fin)
            self.finally_loop_depth.append(len(self.loops))

        body_start = len(self.cfg.nodes)
        self.protectors.append(id(stmt))
        body_end = self.build_body(stmt.body, [nid])
        self.protectors.pop()
        # Only statements whose *innermost* protector is this try raise
        # into these handlers; nested trys route their own exceptions.
        body_nodes = [
            i for i in range(body_start, len(self.cfg.nodes))
            if self.cfg.nodes[i].stmt is not None
            and self.protected_by.get(i) == id(stmt)
            and self.cfg.nodes[i].kind != "try"
        ]

        handler_ends: List[int] = []
        handler_starts: List[int] = []
        for handler in stmt.handlers:
            start = len(self.cfg.nodes)
            hend = self.build_body(handler.body, [])
            if len(self.cfg.nodes) > start:
                handler_starts.append(start)
            handler_ends.extend(hend)

        # Exception edges: a protected statement may raise into each
        # handler, and — when a finally exists — into the finally block
        # too (the unmatched-exception path, which re-raises after it).
        for body_nid in body_nodes:
            for hstart in handler_starts:
                self.cfg.add_exc_edge(body_nid, hstart)
            if fin is not None and fin_first is not None:
                self.cfg.add_exc_edge(body_nid, fin_first)
                if "exit" not in fin.pending:
                    fin.pending.append("exit")  # the exception re-raises after

        if stmt.orelse:
            body_end = self.build_body(stmt.orelse, body_end)

        normal_end = body_end + handler_ends
        if fin is None:
            return normal_end

        # Normal completion also runs the finally block.
        self.finallies.pop()
        self.finally_loop_depth.pop()
        if fin_first is not None:
            for src in normal_end:
                self.cfg.add_edge(src, fin_first)
        out = list(fin.end_frontier)
        for target in fin.pending:
            self._resolve_target(target, fin.end_frontier)
        return out


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of one function (or module) body."""
    builder = _Builder()
    end = builder.build_body(list(body), [builder.cfg.entry])
    for src in end:
        builder.cfg.add_edge(src, builder.cfg.exit)
    return builder.cfg


def cfg_for_function(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    cache: Optional[Dict[int, CFG]] = None,
) -> CFG:
    """CFG of *fn*'s body, memoized in *cache* (keyed by node identity).

    Several flow rules visit the same functions; the cache (typically
    ``ModuleInfo.cfg_cache``) makes each body's graph build once per run.
    """
    if cache is None:
        return build_cfg(fn.body)
    key = id(fn)
    cfg = cache.get(key)
    if cfg is None:
        cfg = build_cfg(fn.body)
        cache[key] = cfg
    return cfg
