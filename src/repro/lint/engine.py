"""The repro-lint rule engine: parse, dispatch rules, filter suppressions.

This is a *project-specific* static-analysis pass: every rule encodes a
cross-module invariant this repository has already been burned by (see
``docs/static_analysis.md``).  General style is ruff's job; repro-lint
checks the things a generic linter cannot know — that phase names come
from :mod:`repro.core.phases`, that tile-hash arithmetic is never
re-derived, that shared-memory segments are lifecycle-paired, that every
CPU counter is priced by the cost model.

Architecture
------------
* :class:`Rule` — one invariant.  A rule sees either one parsed module
  (:meth:`Rule.check_module`) or the whole analyzed file set at once
  (:meth:`Rule.check_project`, for cross-module currency checks).
* :class:`ModuleInfo` — a parsed file: AST plus the per-line suppression
  table built from ``# repro-lint: disable=RPLxxx`` comments.
* :func:`run_lint` — the entry point used by ``python -m repro.lint``
  and by ``tests/test_lint.py``.

Every rule ships its own good/bad fixture (:attr:`Rule.fixture_good` /
:attr:`Rule.fixture_bad`); :func:`self_test` asserts each rule fires on
its bad fixture and stays silent on the good one, which is how the test
suite keeps the rules honest.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

#: Pseudo rule id for files the engine cannot parse at all.
SYNTAX_RULE_ID = "RPL000"

#: The comment marker that suppresses findings on its line, e.g.
#: ``x = 1  # repro-lint: disable=RPL003`` or ``disable=RPL001,RPL006``.
DISABLE_MARKER = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source file handed to the rules."""

    #: Display path (what findings print).
    path: str
    #: Normalised posix-style path used for location-sensitive rules
    #: (e.g. "is this file under repro/kernels/?").
    relpath: str
    tree: ast.Module
    source: str
    #: line number -> rule ids suppressed on that line ("all" wildcard).
    disabled: Dict[int, Set[str]] = field(default_factory=dict)
    #: per-function CFG memo shared by the flow rules (see lint/cfg.py);
    #: keyed by ``id(function_node)``, alive exactly as long as ``tree``.
    cfg_cache: Dict[int, object] = field(default_factory=dict, repr=False)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.disabled.get(line)
        if not rules:
            return False
        return "all" in rules or rule_id in rules


class Rule:
    """Base class: one mechanically checkable invariant."""

    #: e.g. "RPL001"; every concrete rule overrides this.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Minimal snippet the rule must flag (self-test fodder).
    fixture_bad: str = ""
    #: Minimal snippet the rule must accept.
    fixture_good: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Findings for one module (most rules live here)."""
        return ()

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        """Findings needing the whole file set (cross-module currency)."""
        return ()

    # ------------------------------------------------------------------
    # helpers shared by the concrete rules
    # ------------------------------------------------------------------
    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
def _disabled_lines(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression sets from ``# repro-lint: disable=...`` comments."""
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(DISABLE_MARKER):
                continue
            directive = text[len(DISABLE_MARKER) :].strip()
            if not directive.startswith("disable="):
                continue
            names = directive[len("disable=") :]
            rules = {name.strip() for name in names.split(",") if name.strip()}
            if rules:
                disabled.setdefault(tok.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the parse error surfaces as an RPL000 finding instead
    return disabled


#: Statement types whose extent a disable-comment spreads over.  Only
#: *simple* statements: a disable on the closing paren of a three-line
#: call should cover the whole call, but a disable on an ``if`` header
#: must not silence the entire block beneath it.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Pass,
)


def _expand_disabled(
    disabled: Dict[int, Set[str]], tree: ast.Module
) -> Dict[int, Set[str]]:
    """Spread each disable-comment over its whole statement's extent.

    Tokenize reports a comment's *physical* line, but a finding on a
    multi-line statement is reported at the statement's first line —
    so ``# repro-lint: disable=RPL004`` on the continuation line of a
    three-line ``attach(...)`` call used to suppress nothing.  For each
    commented line, find the innermost simple statement whose
    ``lineno..end_lineno`` extent contains it and apply the disable set
    to every line of that extent.  Standalone comments (no containing
    simple statement) keep the per-line behavior.
    """
    if not disabled:
        return disabled
    statements = [
        node
        for node in ast.walk(tree)
        if isinstance(node, _SIMPLE_STMTS)
        and getattr(node, "end_lineno", None) is not None
    ]
    expanded: Dict[int, Set[str]] = {
        line: set(rules) for line, rules in disabled.items()
    }
    for line, rules in disabled.items():
        containing = [
            stmt
            for stmt in statements
            if stmt.lineno <= line <= (stmt.end_lineno or stmt.lineno)
        ]
        if not containing:
            continue
        innermost = min(
            containing,
            key=lambda s: ((s.end_lineno or s.lineno) - s.lineno, -s.lineno),
        )
        for covered in range(
            innermost.lineno, (innermost.end_lineno or innermost.lineno) + 1
        ):
            expanded.setdefault(covered, set()).update(rules)
    return expanded


# ----------------------------------------------------------------------
# parsing and file discovery
# ----------------------------------------------------------------------
def parse_source(
    source: str, path: str, relpath: str = ""
) -> Tuple[Union[ModuleInfo, None], Union[Finding, None]]:
    """Parse one source blob; returns ``(module, None)`` or ``(None, finding)``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule=SYNTAX_RULE_ID,
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
        )
    return (
        ModuleInfo(
            path=path,
            relpath=relpath or path.replace("\\", "/"),
            tree=tree,
            source=source,
            disabled=_expand_disabled(_disabled_lines(source), tree),
        ),
        None,
    )


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, skipping caches and hidden dirs."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def _load_modules(
    paths: Sequence[Union[str, Path]]
) -> Tuple[List[ModuleInfo], List[Finding]]:
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        module, error = parse_source(
            source, str(file_path), file_path.as_posix()
        )
        if error is not None:
            findings.append(error)
        elif module is not None:
            modules.append(module)
    return modules, findings


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def _module_findings(module: ModuleInfo, rules: Sequence[Rule]) -> List[Finding]:
    """Per-module rule findings, suppression-filtered (the cacheable unit)."""
    findings: List[Finding] = []
    for rule in rules:
        for f in rule.check_module(module):
            if not module.is_suppressed(f.rule, f.line):
                findings.append(f)
    return findings


def _project_findings(
    modules: Sequence[ModuleInfo], rules: Sequence[Rule]
) -> List[Finding]:
    """Cross-module rule findings; never cached (they see every file)."""
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for rule in rules:
        for f in rule.check_project(modules):
            module = by_path.get(f.path)
            if module is not None and module.is_suppressed(f.rule, f.line):
                continue
            findings.append(f)
    return findings


def _apply_rules(
    modules: Sequence[ModuleInfo], rules: Sequence[Rule]
) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        findings.extend(_module_findings(module, rules))
    findings.extend(_project_findings(modules, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Union[Sequence[Rule], None] = None,
    cache: "Union[object, None]" = None,
) -> List[Finding]:
    """Lint every Python file under *paths* with *rules* (default: all).

    With *cache* (a :class:`repro.lint.cache.LintCache`), unchanged
    files reuse their stored per-module findings; project-wide rules
    always re-run.  The caller persists the cache with ``cache.save()``.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    modules, findings = _load_modules(paths)
    if cache is None:
        findings.extend(_apply_rules(modules, rules))
    else:
        from repro.lint.cache import content_key

        for module in modules:
            key = content_key(module.relpath, module.source)
            cached = cache.lookup(key)  # type: ignore[attr-defined]
            if cached is None:
                cached = _module_findings(module, rules)
                cache.store(key, cached)  # type: ignore[attr-defined]
            findings.extend(cached)
        findings.extend(_project_findings(modules, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Union[Sequence[Rule], None] = None,
) -> List[Finding]:
    """Lint one in-memory source blob (the fixture/test entry point)."""
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    module, error = parse_source(source, path)
    if error is not None:
        return [error]
    assert module is not None
    return _apply_rules([module], rules)


def self_test(rules: Union[Sequence[Rule], None] = None) -> List[str]:
    """Check each rule against its own fixtures; returns failure messages.

    An empty return value means every rule fired on its bad fixture and
    stayed silent on its good one — run by ``--self-test`` and by
    ``tests/test_lint.py``.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    failures: List[str] = []
    for rule in rules:
        if not rule.fixture_bad or not rule.fixture_good:
            failures.append(f"{rule.rule_id}: missing fixture")
            continue
        bad = lint_source(rule.fixture_bad, path="fixture_bad.py", rules=[rule])
        if not any(f.rule == rule.rule_id for f in bad):
            failures.append(f"{rule.rule_id}: bad fixture produced no finding")
        good = lint_source(rule.fixture_good, path="fixture_good.py", rules=[rule])
        stray = [f for f in good if f.rule == rule.rule_id]
        if stray:
            failures.append(
                f"{rule.rule_id}: good fixture flagged: {stray[0].render()}"
            )
    return failures
