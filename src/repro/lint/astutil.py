"""Shared AST helpers for the repro-lint rules.

These used to live in :mod:`repro.lint.rules`; they moved here when the
flow-sensitive rules (:mod:`repro.lint.flowrules`) arrived, so both rule
modules can share one vocabulary for names, scopes and the shm-segment
acquisition shapes without a circular import.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple, Union

#: Function-like nodes that open a new scope of their own.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def tail_name(node: ast.AST) -> Optional[str]:
    """Last segment of a Name/Attribute chain (``a.b.c`` -> ``"c"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Full dotted form of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """First segment of a Name/Attribute/Subscript chain (``a.b[c].d`` -> ``"a"``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_scope(stmts: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope; its body is analyzed separately
        stack.extend(ast.iter_child_nodes(node))


def scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, Sequence[ast.stmt]]]:
    """The module body plus every function body, each as one scope."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def function_scopes(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function definition in the module (the flow-rule unit)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def in_path(relpath: str, *suffixes: str) -> bool:
    return any(relpath.endswith(suffix) for suffix in suffixes)


def is_shm_acquisition(node: ast.AST) -> bool:
    """Does *node* acquire a shared-memory segment?

    Either a direct ``SharedMemory(...)`` constructor call or a
    ``<...>Store.create(...)`` / ``<...>Store.attach(...)`` classmethod —
    the two ways this repository ever obtains a segment handle (see
    ``kernels/shm.py``).  Shared by RPL004 (syntactic custody) and
    RPL008 (path-sensitive custody).
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    tail = tail_name(func)
    if tail == "SharedMemory":
        return True
    if tail in ("create", "attach") and isinstance(func, ast.Attribute):
        receiver = tail_name(func.value)
        return receiver is not None and "Store" in receiver
    return False


__all__ = [
    "FunctionNode",
    "dotted_name",
    "function_scopes",
    "in_path",
    "is_shm_acquisition",
    "root_name",
    "scopes",
    "tail_name",
    "walk_scope",
]
