"""The lint baseline: grandfather existing findings, fail on new ones.

``lint-baseline.json`` (checked in at the repo root, currently *empty*)
records findings that predate a rule and are allowed to persist while
they burn down.  ``python -m repro.lint --baseline lint-baseline.json``
subtracts baselined findings from the run, so CI fails only on *new*
violations; ``--write-baseline`` regenerates the file after a reviewed
sweep.

Matching is by ``(rule, path, message)`` as a multiset — deliberately
**not** by line number, so unrelated edits above a grandfathered finding
do not resurrect it, while a second identical violation in the same
file still fails.  Shrinking the baseline is always safe; growing it is
a reviewed decision (the file is diffed like code).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Counter as CounterT, List, Sequence, Tuple, Union

from repro.lint.engine import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.rule, finding.path.replace("\\", "/"), finding.message)


def load_baseline(path: Union[str, Path]) -> "CounterT[_Key]":
    """The baseline file as a multiset of finding keys."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} repro-lint baseline"
        )
    keys: "CounterT[_Key]" = Counter()
    for entry in raw.get("findings", []):
        keys[(entry["rule"], entry["path"], entry["message"])] += 1
    return keys


def apply_baseline(
    findings: Sequence[Finding], baseline: "CounterT[_Key]"
) -> Tuple[List[Finding], int]:
    """Split *findings* into (new, grandfathered-count)."""
    budget = Counter(baseline)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key = _key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def write_baseline(
    findings: Sequence[Finding], path: Union[str, Path]
) -> None:
    """Serialise *findings* as the new baseline (sorted, line-free keys)."""
    entries = sorted(
        (
            {
                "rule": f.rule,
                "path": f.path.replace("\\", "/"),
                "message": f.message,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
