"""The syntactic repro-lint rules: invariants this repository was burned by.

Each rule is the mechanical form of a correctness fix a past PR made by
hand; ``docs/static_analysis.md`` tells the full story per rule.  Rules
carry their own minimal good/bad fixtures so the engine (and the test
suite) can prove each one fires exactly when it should.

RPL001–RPL007 live here and match per statement; the flow-sensitive
rules RPL008–RPL012 (CFG + dataflow) live in
:mod:`repro.lint.flowrules` and are merged into :data:`ALL_RULES` below.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.phases import ALL_PHASES
from repro.lint.astutil import (
    dotted_name as _dotted_name,
    in_path as _in_path,
    scopes as _scopes,
    tail_name as _tail_name,
    walk_scope as _walk_scope,
)
from repro.lint.engine import Finding, ModuleInfo, Rule
from repro.pbsm.grid import TILE_HASH_X, TILE_HASH_Y


# ----------------------------------------------------------------------
# RPL001 — the numpy gate
# ----------------------------------------------------------------------
class NumpyImportGate(Rule):
    """Top-level ``import numpy`` is only legal inside ``repro/kernels/``.

    Everything else must go through :mod:`repro.kernels.backend` (or a
    function-local import) so a numpy-free interpreter can import every
    module and the no-numpy CI job stays honest.
    """

    rule_id = "RPL001"
    title = "no top-level numpy import outside repro.kernels"

    fixture_bad = (
        "import numpy as np\n"
        "def centers(n):\n"
        "    return np.zeros(n)\n"
    )
    fixture_good = (
        "def centers(n):\n"
        "    from repro.kernels.backend import require_numpy\n"
        "    np = require_numpy()\n"
        "    return np.zeros(n)\n"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if "/kernels/" in "/" + module.relpath:
            return
        for node in _walk_scope(module.tree.body):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        yield self.finding(
                            module,
                            node,
                            "top-level numpy import outside repro.kernels; "
                            "go through repro.kernels.backend (or import "
                            "inside the function) so numpy-free interpreters "
                            "can import this module",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if node.level == 0 and (
                    mod == "numpy" or mod.startswith("numpy.")
                ):
                    yield self.finding(
                        module,
                        node,
                        "top-level numpy import outside repro.kernels; "
                        "go through repro.kernels.backend (or import inside "
                        "the function) so numpy-free interpreters can import "
                        "this module",
                    )


# ----------------------------------------------------------------------
# RPL002 — phase names come from repro.core.phases
# ----------------------------------------------------------------------
class PhaseLiteral(Rule):
    """Phase-name string literals in phase positions outside core/phases.py.

    A literal ``"join"`` used as a phase key can silently drift from the
    keys every driver writes; PR 3 hoisted the constants exactly so the
    names cannot fork again.  The rule only fires in *phase contexts*
    (``*_by_phase`` subscripts and ``.get()``s, ``phase=`` keywords,
    comparisons against ``phase``, arguments bound to a parameter named
    ``phase``) so unrelated strings like a ``--dedup`` CLI choice stay
    legal.
    """

    rule_id = "RPL002"
    title = "phase names must come from repro.core.phases"

    fixture_bad = (
        "def repartition_share(stats):\n"
        '    return stats.sim_seconds_by_phase.get("repartition", 0.0)\n'
    )
    fixture_good = (
        "from repro.core.phases import PHASE_REPARTITION\n"
        "def repartition_share(stats):\n"
        "    return stats.sim_seconds_by_phase.get(PHASE_REPARTITION, 0.0)\n"
    )

    _phases: Set[str] = set(ALL_PHASES)

    def _is_phase_literal(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self._phases
        )

    def _flag(self, module: ModuleInfo, node: ast.AST) -> Finding:
        value = node.value if isinstance(node, ast.Constant) else "?"
        return self.finding(
            module,
            node,
            f"phase name {value!r} written as a literal; import "
            f"PHASE_{str(value).upper()} from repro.core.phases",
        )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if _in_path(module.relpath, "core/phases.py"):
            return
        # Parameter lists of locally defined functions, so a call like
        # passes(res, "join") is matched against its own signature.
        local_params: Dict[str, List[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = [a.arg for a in node.args.posonlyargs + node.args.args]
                local_params[node.name] = names

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                tail = _tail_name(node.value)
                if tail and tail.endswith("_by_phase"):
                    if self._is_phase_literal(node.slice):
                        yield self._flag(module, node.slice)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, local_params)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    tail = _tail_name(target)
                    if tail and tail.endswith("_by_phase"):
                        if isinstance(node.value, ast.Dict):
                            for key in node.value.keys:
                                if key is not None and self._is_phase_literal(key):
                                    yield self._flag(module, key)

    def _check_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        local_params: Dict[str, List[str]],
    ) -> Iterator[Finding]:
        func = node.func
        # stats.io_units_by_phase.get("join", 0) and friends
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "setdefault", "pop")
            and node.args
        ):
            receiver = _tail_name(func.value)
            if receiver and receiver.endswith("_by_phase"):
                if self._is_phase_literal(node.args[0]):
                    yield self._flag(module, node.args[0])
        # tracer.phase("join"), timer.time("join") on a phase-ish method
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "phase"
            and node.args
            and self._is_phase_literal(node.args[0])
        ):
            yield self._flag(module, node.args[0])
        # phase="join" keywords anywhere
        for kw in node.keywords:
            if kw.arg == "phase" and self._is_phase_literal(kw.value):
                yield self._flag(module, kw.value)
        # calls to module-local functions with a parameter named "phase"
        if isinstance(func, ast.Name) and func.id in local_params:
            params = local_params[func.id]
            for index, arg in enumerate(node.args):
                if index < len(params) and params[index] == "phase":
                    if self._is_phase_literal(arg):
                        yield self._flag(module, arg)

    def _check_compare(
        self, module: ModuleInfo, node: ast.Compare
    ) -> Iterator[Finding]:
        sides = [node.left, *node.comparators]
        phase_like = any(
            (_tail_name(side) or "") == "phase"
            or (_tail_name(side) or "").endswith("_phase")
            for side in sides
        )
        if not phase_like:
            return
        for side in sides:
            if self._is_phase_literal(side):
                yield self._flag(module, side)


# ----------------------------------------------------------------------
# RPL003 — tile-hash arithmetic is defined exactly once
# ----------------------------------------------------------------------
class TileHashDrift(Rule):
    """No shadow copies or re-derivations of the tile-hash constants.

    RPM dedups correctly only if the scalar grid arithmetic
    (``pbsm/grid.py``) and its vectorized replay (``kernels/rpm.py``)
    hash bit-identically.  A re-typed multiplier, a local
    ``TILE_HASH_X = ...`` copy, or a third hand-rolled
    ``(tx*X) ^ (ty*Y)`` site can drift silently and turn duplicate
    suppression into result loss.
    """

    rule_id = "RPL003"
    title = "no re-derived tile-hash arithmetic or TILE_HASH_* shadow copies"

    #: Where the constants are defined and where the one sanctioned
    #: vectorized replay lives.
    _definition = ("pbsm/grid.py",)
    _replay_sites = ("pbsm/grid.py", "kernels/rpm.py")
    _names = ("TILE_HASH_X", "TILE_HASH_Y")
    _values = (TILE_HASH_X, TILE_HASH_Y)

    fixture_bad = (
        "TILE_HASH_X = 73856093  # shadow copy\n"
        "def partition_of(tx, ty, n):\n"
        "    return ((tx * TILE_HASH_X) ^ (ty * 19349663)) % n\n"
    )
    fixture_good = (
        "from repro.pbsm.grid import TileGrid\n"
        "def partition_of(grid, tx, ty):\n"
        "    return grid.partition_of_tile(tx, ty)\n"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if _in_path(module.relpath, *self._definition):
            return
        replay_ok = _in_path(module.relpath, *self._replay_sites)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and node.value in self._values
            ):
                yield self.finding(
                    module,
                    node,
                    f"tile-hash multiplier {node.value} re-typed as a "
                    "literal; import TILE_HASH_X/TILE_HASH_Y from "
                    "repro.pbsm.grid",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in self._names:
                        yield self.finding(
                            module,
                            node,
                            f"shadow copy of {target.id}; import it from "
                            "repro.pbsm.grid instead of re-declaring",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitXor):
                if not replay_ok and self._is_hash_expr(node):
                    yield self.finding(
                        module,
                        node,
                        "re-derived tile-hash arithmetic; call "
                        "TileGrid.partition_of_tile (scalar) or the "
                        "sanctioned replay in repro.kernels.rpm",
                    )

    def _is_hash_expr(self, node: ast.BinOp) -> bool:
        def mult_by_hash(side: ast.AST) -> bool:
            if not (isinstance(side, ast.BinOp) and isinstance(side.op, ast.Mult)):
                return False
            for operand in (side.left, side.right):
                tail = _tail_name(operand)
                if tail in self._names:
                    return True
                if (
                    isinstance(operand, ast.Constant)
                    and type(operand.value) is int
                    and operand.value in self._values
                ):
                    return True
            return False

        return mult_by_hash(node.left) and mult_by_hash(node.right)


# ----------------------------------------------------------------------
# RPL004 — shared-memory segments are lifecycle-paired
# ----------------------------------------------------------------------
class ShmLifecycle(Rule):
    """Every created/attached shared-memory segment must be provably
    released or have its ownership explicitly transferred.

    Acceptable custody, per function scope: a ``with`` statement, a
    ``try/finally`` whose finally calls ``.close()``/``.unlink()`` on the
    binding, assignment to a declared ``global`` (pool-worker state),
    assignment to an attribute, or the binding escaping through
    ``return``/``yield`` (the caller owns it).  A segment bound to a
    local and dropped on an exception path leaks until reboot — exactly
    the crash window ``docs/architecture.md`` documents.
    """

    rule_id = "RPL004"
    title = "shared_memory create/attach paired with close/unlink"

    fixture_bad = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe():\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    seg.buf[0] = 1\n"
        "    seg.close()\n"
    )
    fixture_good = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe():\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    try:\n"
        "        seg.buf[0] = 1\n"
        "    finally:\n"
        "        seg.close()\n"
        "        seg.unlink()\n"
    )

    def _is_acquisition(self, node: ast.AST) -> bool:
        from repro.lint.astutil import is_shm_acquisition

        return is_shm_acquisition(node)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for _, body in _scopes(module.tree):
            yield from self._check_scope(module, body)

    def _check_scope(
        self, module: ModuleInfo, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        nodes = list(_walk_scope(body))
        acquisitions = [n for n in nodes if self._is_acquisition(n)]
        if not acquisitions:
            return

        managed: Set[int] = set()
        bound: Dict[int, str] = {}
        globals_declared: Set[str] = set()
        finally_released: Set[str] = set()
        escaped: Set[str] = set()

        for node in nodes:
            if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if self._is_acquisition(sub):
                            managed.add(id(sub))
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    for sub in ast.walk(final_stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in ("close", "unlink")
                            and isinstance(sub.func.value, ast.Name)
                        ):
                            finally_released.add(sub.func.value.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
                        if self._is_acquisition(sub):
                            managed.add(id(sub))  # caller owns it
            elif isinstance(node, ast.Assign):
                contains = [
                    sub
                    for sub in ast.walk(node.value)
                    if self._is_acquisition(sub)
                ]
                if not contains:
                    continue
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    for sub in contains:
                        bound[id(sub)] = node.targets[0].id
                elif len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Attribute
                ):
                    # self.seg = ... — ownership moved to the instance
                    for sub in contains:
                        managed.add(id(sub))

        for node in acquisitions:
            if id(node) in managed:
                continue
            name = bound.get(id(node))
            if name is None:
                yield self.finding(
                    module,
                    node,
                    "shared-memory segment acquired without a binding; use "
                    "a context manager or bind it and release in finally",
                )
                continue
            if (
                name in globals_declared
                or name in finally_released
                or name in escaped
            ):
                continue
            yield self.finding(
                module,
                node,
                f"segment bound to {name!r} is not released on every path; "
                "use a context manager or close/unlink it in a finally "
                "block (or transfer ownership via return)",
            )


# ----------------------------------------------------------------------
# RPL005 — counter currency: counted => priced => surfaced
# ----------------------------------------------------------------------
class CounterCurrency(Rule):
    """Every ``CpuCounters`` operation counter must be priced by
    ``CostModel`` and surfaced by the stats report.

    PR 2 added ``batch_ops`` and had to wire it through
    ``CostModel.cpu_seconds``, ``cpu_seconds_from_counts`` *and* the
    report by hand; a counter missing any of the three silently
    under-prices a join in the simulator and in EXPLAIN.  The rule
    cross-references the names mechanically across modules.
    """

    rule_id = "RPL005"
    title = "CpuCounters fields priced in CostModel and surfaced in reports"

    #: Result tallies, not operation counts — never priced by design.
    _exempt = frozenset({"results_reported", "duplicates_suppressed"})

    fixture_bad = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class CpuCounters:\n"
        "    intersection_tests: int = 0\n"
        "    shiny_new_ops: int = 0\n"
        "@dataclass\n"
        "class CostModel:\n"
        "    test_op_seconds: float = 2.0e-6\n"
        "    def cpu_seconds(self, counters):\n"
        "        return counters.intersection_tests * self.test_op_seconds\n"
        "    def cpu_seconds_from_counts(self, *, intersection_tests=0.0):\n"
        "        return intersection_tests * self.test_op_seconds\n"
        "def format_stats(stats):\n"
        "    return str(stats.cpu_by_phase)\n"
    )
    fixture_good = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class CpuCounters:\n"
        "    intersection_tests: int = 0\n"
        "@dataclass\n"
        "class CostModel:\n"
        "    test_op_seconds: float = 2.0e-6\n"
        "    def cpu_seconds(self, counters):\n"
        "        return counters.intersection_tests * self.test_op_seconds\n"
        "    def cpu_seconds_from_counts(self, *, intersection_tests=0.0):\n"
        "        return intersection_tests * self.test_op_seconds\n"
        "def format_stats(stats):\n"
        "    return str(stats.cpu_by_phase)\n"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        counters: Optional[Tuple[ModuleInfo, ast.ClassDef]] = None
        cost_model: Optional[ast.ClassDef] = None
        reporter: Optional[ast.FunctionDef] = None
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    if node.name == "CpuCounters" and counters is None:
                        counters = (module, node)
                    elif node.name == "CostModel" and cost_model is None:
                        cost_model = node
                elif (
                    isinstance(node, ast.FunctionDef)
                    and node.name == "format_stats"
                    and reporter is None
                ):
                    reporter = node
        if counters is None or cost_model is None:
            return

        counters_module, counters_cls = counters
        fields: List[Tuple[str, ast.AnnAssign]] = []
        for stmt in counters_cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.target.id not in self._exempt:
                    fields.append((stmt.target.id, stmt))

        priced: Set[str] = set()
        estimate_params: Optional[Set[str]] = None
        for node in ast.walk(cost_model):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "counters"
            ):
                priced.add(node.attr)
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "cpu_seconds_from_counts"
            ):
                estimate_params = {
                    a.arg
                    for a in node.args.args
                    + node.args.posonlyargs
                    + node.args.kwonlyargs
                    if a.arg != "self"
                }

        surfaces: Optional[Set[str]] = None
        surfaces_generic = False
        if reporter is not None:
            surfaces = set()
            for node in ast.walk(reporter):
                if isinstance(node, ast.Attribute):
                    surfaces.add(node.attr)
                    if node.attr == "cpu_by_phase":
                        surfaces_generic = True
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    surfaces.add(node.value)

        for name, stmt in fields:
            if name not in priced:
                yield self.finding(
                    counters_module,
                    stmt,
                    f"counter field {name!r} is not priced in "
                    "CostModel.cpu_seconds; add a *_seconds constant and "
                    "charge it, or the simulator under-prices every join",
                )
            if estimate_params is not None and name not in estimate_params:
                yield self.finding(
                    counters_module,
                    stmt,
                    f"counter field {name!r} is not accepted by "
                    "CostModel.cpu_seconds_from_counts, so the planner "
                    "cannot estimate it",
                )
            if (
                surfaces is not None
                and not surfaces_generic
                and name not in surfaces
            ):
                yield self.finding(
                    counters_module,
                    stmt,
                    f"counter field {name!r} is never surfaced by "
                    "format_stats",
                )


# ----------------------------------------------------------------------
# RPL006 — no silent except Exception
# ----------------------------------------------------------------------
class SilentExcept(Rule):
    """``except Exception:`` (or bare ``except:``) must re-raise or log.

    A handler that catches everything and does neither eats real bugs:
    the shm lifecycle helpers once swallowed genuine attach/unlink
    failures this way.  Narrow the exception type, re-raise, or log.
    """

    rule_id = "RPL006"
    title = "no except Exception that swallows without re-raise or logging"

    _broad = ("Exception", "BaseException")
    _log_tails = frozenset(
        {
            "warn",
            "warning",
            "error",
            "exception",
            "critical",
            "debug",
            "info",
            "log",
            "print",
            "print_exc",
        }
    )

    fixture_bad = (
        "def attach(name):\n"
        "    try:\n"
        "        return open(name)\n"
        "    except Exception:\n"
        "        pass\n"
    )
    fixture_good = (
        "def attach(name):\n"
        "    try:\n"
        "        return open(name)\n"
        "    except (FileNotFoundError, PermissionError):\n"
        "        return None\n"
    )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        return _tail_name(type_node) in self._broad

    def _handles_it(self, handler: ast.ExceptHandler) -> bool:
        for node in _walk_scope(handler.body):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                tail = _tail_name(node.func)
                if tail in self._log_tails:
                    return True
        return False

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node.type) and not self._handles_it(node):
                label = (
                    "bare except"
                    if node.type is None
                    else f"except {_tail_name(node.type)}"
                )
                yield self.finding(
                    module,
                    node,
                    f"{label} swallows without re-raise or logging; narrow "
                    "the exception type, re-raise, or log what was caught",
                )


# ----------------------------------------------------------------------
# RPL007 — async handlers never block the event loop on the engine
# ----------------------------------------------------------------------
class AsyncBlockingCall(Rule):
    """Blocking engine entry points must not be called directly from
    ``async def`` bodies.

    A spatial join takes milliseconds to minutes; called inline from a
    coroutine it freezes the whole event loop — heartbeats, metrics
    scrapes, and every other client stall behind it.  The serve
    subsystem routes all engine work through
    :func:`repro.serve.executor.run_blocking` (a thread-pool seam), and
    this rule keeps that contract mechanical: the engine's synchronous
    entry points may appear in a coroutine only as *arguments* (e.g. to
    ``run_blocking``) or inside nested ``def``/``lambda`` scopes, never
    as direct calls.
    """

    rule_id = "RPL007"
    title = "no direct blocking engine calls inside async def"

    #: The engine's synchronous entry points: each one runs partitioning
    #: and probing (or file I/O) to completion before returning.
    _blocking = frozenset(
        {
            "spatial_join",
            "plan_join",
            "profile_join",
            "load_relation",
            "save_relation",
        }
    )

    fixture_bad = (
        "from repro import spatial_join\n"
        "async def handle(left, right):\n"
        "    return spatial_join(left, right, 1 << 20)\n"
    )
    fixture_good = (
        "from repro import spatial_join\n"
        "from repro.serve.executor import run_blocking\n"
        "async def handle(left, right):\n"
        "    return await run_blocking(spatial_join, left, right, 1 << 20)\n"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in _walk_scope(node.body):
                if not isinstance(sub, ast.Call):
                    continue
                tail = _tail_name(sub.func)
                if tail in self._blocking:
                    yield self.finding(
                        module,
                        sub,
                        f"blocking engine call {tail}() directly inside "
                        f"async def {node.name}; it stalls the event loop "
                        "for the whole join — await "
                        f"run_blocking({tail}, ...) instead",
                    )


from repro.lint.flowrules import FLOW_RULES  # noqa: E402  (after the classes)

#: Every shipped rule, in rule-id order.
ALL_RULES: Tuple[Rule, ...] = (
    NumpyImportGate(),
    PhaseLiteral(),
    TileHashDrift(),
    ShmLifecycle(),
    CounterCurrency(),
    SilentExcept(),
    AsyncBlockingCall(),
) + FLOW_RULES

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
