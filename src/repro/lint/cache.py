"""Incremental lint cache keyed by file content hash.

The repo lints itself in the test suite and in CI; with twelve rules —
five of them building CFGs and running fixpoints — a cold run over
``src benchmarks tests`` is no longer free.  The cache stores each
file's *post-suppression per-module findings* keyed by a hash of its
path and content, so an unchanged file costs one sha256 instead of
twelve rule passes.  Project-wide rules (``check_project``) always
re-run: their verdicts depend on every module at once.

The cache self-invalidates on any change to the analyzer itself: the
entry table is discarded when the *engine fingerprint* — a hash over
every ``repro/lint/*.py`` source plus the selected rule ids — differs
from the one the file was written with.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.lint.engine import Finding, Rule

CACHE_VERSION = 1


def engine_fingerprint(rules: Sequence[Rule]) -> str:
    """Hash of the analyzer's own sources and the selected rule ids."""
    digest = hashlib.sha256()
    lint_dir = Path(__file__).resolve().parent
    for source in sorted(lint_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    for rule in rules:
        digest.update(rule.rule_id.encode("utf-8"))
        digest.update(b",")
    return digest.hexdigest()


def content_key(relpath: str, source: str) -> str:
    digest = hashlib.sha256()
    digest.update(relpath.encode("utf-8"))
    digest.update(b"\0")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def _encode(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def _decode(entry: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(entry["rule"]),
        path=str(entry["path"]),
        line=int(entry["line"]),  # type: ignore[arg-type]
        col=int(entry["col"]),  # type: ignore[arg-type]
        message=str(entry["message"]),
    )


class LintCache:
    """One cache file; load on construction, persist with :meth:`save`."""

    def __init__(self, path: Union[str, Path], rules: Sequence[Rule]) -> None:
        self.path = Path(path)
        self.fingerprint = engine_fingerprint(rules)
        self.entries: Dict[str, List[Dict[str, object]]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                raw = None
            if (
                isinstance(raw, dict)
                and raw.get("version") == CACHE_VERSION
                and raw.get("engine") == self.fingerprint
                and isinstance(raw.get("entries"), dict)
            ):
                self.entries = raw["entries"]

    def lookup(self, key: str) -> Optional[List[Finding]]:
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return [_decode(e) for e in entry]

    def store(self, key: str, findings: Sequence[Finding]) -> None:
        self.entries[key] = [_encode(f) for f in findings]
        self._dirty = True

    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "engine": self.fingerprint,
            "entries": self.entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        self._dirty = False

    def stats(self) -> str:
        return f"cache: {self.hits} hit(s), {self.misses} miss(es)"


__all__ = ["CACHE_VERSION", "LintCache", "content_key", "engine_fingerprint"]
