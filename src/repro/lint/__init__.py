"""repro-lint: project-specific static analysis for cross-module invariants.

Run from the command line::

    python -m repro.lint src benchmarks tests
    python -m repro.lint --list-rules
    python -m repro.lint --self-test

or import the API (what ``tests/test_lint.py`` does)::

    from repro.lint import lint_source, run_lint, ALL_RULES

Each rule encodes an invariant a past PR fixed by hand; see
``docs/static_analysis.md`` for the rule catalogue and the inline
``# repro-lint: disable=RPLxxx`` suppression marker.
"""

from __future__ import annotations

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    iter_python_files,
    lint_source,
    run_lint,
    self_test,
)
from repro.lint.rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "RULES_BY_ID",
    "Rule",
    "iter_python_files",
    "lint_source",
    "run_lint",
    "self_test",
]
