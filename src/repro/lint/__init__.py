"""repro-lint: project-specific static analysis for cross-module invariants.

Run from the command line::

    python -m repro.lint src benchmarks tests
    python -m repro.lint src --format sarif --output lint.sarif
    python -m repro.lint src --baseline lint-baseline.json --cache .lint-cache.json
    python -m repro.lint --list-rules
    python -m repro.lint --self-test

or import the API (what ``tests/test_lint.py`` does)::

    from repro.lint import lint_source, run_lint, ALL_RULES

RPL001–RPL007 are per-statement pattern rules; RPL008–RPL012 are
flow-sensitive (CFG + forward dataflow, see :mod:`repro.lint.cfg` and
:mod:`repro.lint.dataflow`).  Each rule encodes an invariant a past PR
fixed by hand; see ``docs/static_analysis.md`` for the rule catalogue,
the baseline burn-down policy, and the inline
``# repro-lint: disable=RPLxxx`` suppression marker.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.cfg import CFG, CFGNode, build_cfg, cfg_for_function
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    iter_python_files,
    lint_source,
    run_lint,
    self_test,
)
from repro.lint.rules import ALL_RULES, RULES_BY_ID
from repro.lint.sarif import render_sarif, to_sarif

__all__ = [
    "ALL_RULES",
    "CFG",
    "CFGNode",
    "Finding",
    "ForwardAnalysis",
    "LintCache",
    "ModuleInfo",
    "RULES_BY_ID",
    "Rule",
    "apply_baseline",
    "build_cfg",
    "cfg_for_function",
    "iter_python_files",
    "lint_source",
    "load_baseline",
    "render_sarif",
    "run_forward",
    "run_lint",
    "self_test",
    "to_sarif",
    "write_baseline",
]
