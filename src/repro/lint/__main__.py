"""Command-line entry point: ``python -m repro.lint <paths>``.

Exit status: 0 when clean, 1 when any finding (or unparsable file) was
reported, 2 on usage errors.  This is what the CI ``lint`` job runs and
what the test suite's self-check asserts on.

Beyond plain text output, the CLI speaks the CI integration dialects:
``--format sarif`` (GitHub code-scanning annotations), ``--baseline`` /
``--write-baseline`` (grandfathered-finding burn-down), and ``--cache``
(content-hash incremental re-runs; prints ``cache: N hit(s), ...`` on
stderr so CI can assert the cache was exercised).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import Finding, run_lint, self_test
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific invariant lint (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src benchmarks tests)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check every rule against its own good/bad fixtures",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract grandfathered findings recorded in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="incremental cache file keyed by file content hash",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if args.self_test:
        failures = self_test()
        if failures:
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
        print(f"self-test ok: {len(ALL_RULES)} rules fired and stayed silent")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src)")

    rules = list(ALL_RULES)
    if args.select:
        wanted: List[str] = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULES_BY_ID]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULES_BY_ID[r] for r in wanted]

    cache = None
    if args.cache:
        from repro.lint.cache import LintCache

        cache = LintCache(args.cache, rules)

    try:
        findings = run_lint(args.paths, rules, cache=cache)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if cache is not None:
        cache.save()
        print(cache.stats(), file=sys.stderr)

    if args.write_baseline:
        from repro.lint.baseline import write_baseline

        write_baseline(findings, args.write_baseline)
        print(
            f"baseline: {len(findings)} finding(s) written to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    grandfathered = 0
    if args.baseline:
        from repro.lint.baseline import apply_baseline, load_baseline

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")
        findings, grandfathered = apply_baseline(findings, baseline)

    report = _render(findings, rules, args.output_format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as sink:
            sink.write(report)
    elif report:
        print(report, end="" if report.endswith("\n") else "\n")

    if grandfathered:
        print(
            f"{grandfathered} grandfathered finding(s) suppressed by baseline "
            f"{args.baseline}",
            file=sys.stderr,
        )
    if findings:
        print(
            f"{len(findings)} finding(s); suppress a line with "
            "'# repro-lint: disable=RPLxxx' only with a reviewed reason",
            file=sys.stderr,
        )
        return 1
    return 0


def _render(
    findings: Sequence[Finding],
    rules: Sequence[object],
    output_format: str,
) -> str:
    if output_format == "sarif":
        from repro.lint.sarif import render_sarif

        return render_sarif(findings, rules) + "\n"  # type: ignore[arg-type]
    return "".join(f.render() + "\n" for f in findings)


if __name__ == "__main__":
    sys.exit(main())
