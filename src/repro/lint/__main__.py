"""Command-line entry point: ``python -m repro.lint <paths>``.

Exit status: 0 when clean, 1 when any finding (or unparsable file) was
reported, 2 on usage errors.  This is what the CI ``lint`` job runs and
what the test suite's self-check asserts on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import run_lint, self_test
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific invariant lint (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src benchmarks tests)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check every rule against its own good/bad fixtures",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if args.self_test:
        failures = self_test()
        if failures:
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
        print(f"self-test ok: {len(ALL_RULES)} rules fired and stayed silent")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src)")

    rules = list(ALL_RULES)
    if args.select:
        wanted: List[str] = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in RULES_BY_ID]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        rules = [RULES_BY_ID[r] for r in wanted]

    try:
        findings = run_lint(args.paths, rules)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"{len(findings)} finding(s); suppress a line with "
            "'# repro-lint: disable=RPLxxx' only with a reviewed reason",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
