"""Generic forward abstract interpretation over :mod:`repro.lint.cfg` graphs.

A rule plugs three things into :func:`run_forward`:

* ``initial()`` — the abstract state at the function entry,
* ``transfer(node, state)`` — the effect of one statement,
* ``join(a, b)`` — the lattice join applied where paths merge.

The solver is a plain worklist fixpoint: states propagate along CFG
edges, joining at merge points, iterating loops until nothing changes.
States must be immutable values with structural equality (frozensets,
tuples of pairs, ...) — the solver decides convergence by ``==``.

All shipped rules use powerset lattices ("the set of facts that hold on
*some* path into this point"), so join is set union and a verdict like
"a path reaches the exit with the segment still held" is a membership
test on the exit node's in-state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, Tuple, TypeVar

from repro.lint.cfg import CFG, CFGNode

__all__ = ["ForwardAnalysis", "DataflowResult", "make_analysis", "run_forward"]

S = TypeVar("S")

#: Safety valve: no shipped lattice needs anywhere near this many visits
#: per node; a transfer function that fails to converge is a rule bug and
#: surfaces as this error rather than a hung lint run.
_MAX_VISITS_PER_NODE = 256


class ForwardAnalysis(Generic[S]):
    """Base class for forward dataflow problems (override all three)."""

    def initial(self) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        raise NotImplementedError


class DataflowResult(Generic[S]):
    """Fixpoint states: ``in_states[nid]`` / ``out_states[nid]``.

    Nodes unreachable from the entry have no entry in either map.
    """

    def __init__(self, in_states: Dict[int, S], out_states: Dict[int, S]) -> None:
        self.in_states = in_states
        self.out_states = out_states

    def at_exit(self, cfg: CFG) -> S:
        """The joined state flowing into the synthetic exit node."""
        return self.in_states[cfg.exit]


def run_forward(cfg: CFG, analysis: "ForwardAnalysis[S]") -> "DataflowResult[S]":
    """Solve *analysis* over *cfg* to a fixpoint.

    Normal edges carry a node's *out*-state; exception edges carry its
    *in*-state — a statement that raised did not complete, so its
    effects (an acquisition, a merge) must not flow into the handler.
    """
    in_states: Dict[int, S] = {cfg.entry: analysis.initial()}
    out_states: Dict[int, S] = {}
    processed: Dict[int, S] = {}
    visits: Dict[int, int] = {}
    work = deque([cfg.entry])

    def propagate(dst: int, state: S) -> None:
        if dst in in_states:
            merged = analysis.join(in_states[dst], state)
            if merged == in_states[dst]:
                return
            in_states[dst] = merged
        else:
            in_states[dst] = state
        work.append(dst)

    while work:
        nid = work.popleft()
        state = in_states[nid]
        if nid in processed and processed[nid] == state:
            continue
        visits[nid] = visits.get(nid, 0) + 1
        if visits[nid] > _MAX_VISITS_PER_NODE:
            raise RuntimeError(
                f"dataflow failed to converge at node {nid} "
                f"({cfg.nodes[nid].describe()}); non-monotone transfer?"
            )
        processed[nid] = state
        for succ in cfg.exc_successors(nid):
            propagate(succ, state)
        out = analysis.transfer(cfg.nodes[nid], state)
        out_states[nid] = out
        for succ in cfg.normal_successors(nid):
            propagate(succ, out)
    # The exit node must always carry a state, even in degenerate graphs
    # (e.g. ``while True`` bodies where no edge reaches the exit).
    if cfg.exit not in in_states:
        in_states[cfg.exit] = analysis.initial()
    return DataflowResult(in_states, out_states)


def make_analysis(
    initial: Callable[[], S],
    join: Callable[[S, S], S],
    transfer: Callable[[CFGNode, S], S],
) -> "ForwardAnalysis[S]":
    """Build an analysis from three closures (the common rule idiom)."""

    class _Closed(ForwardAnalysis[S]):
        def initial(self) -> S:
            return initial()

        def join(self, a: S, b: S) -> S:
            return join(a, b)

        def transfer(self, node: CFGNode, state: S) -> S:
            return transfer(node, state)

    return _Closed()
