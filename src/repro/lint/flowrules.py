"""The flow-sensitive repro-lint rules (RPL008–RPL012).

Where :mod:`repro.lint.rules` pattern-matches single statements, the
rules here reason about *paths*: they build a CFG per function
(:mod:`repro.lint.cfg`) and run forward dataflow over it
(:mod:`repro.lint.dataflow`).  Each encodes a cross-path invariant the
per-line engine provably cannot express — a segment leaked on one early
return, a counter merged on one arm of a branch, an attribute read
outside the lock that every other access holds.

As everywhere in repro-lint, every rule carries its own minimal good/bad
fixture and is kept honest by ``--self-test``.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.astutil import (
    FunctionNode,
    dotted_name,
    function_scopes,
    in_path,
    is_shm_acquisition,
    root_name,
    tail_name,
    walk_scope,
)
from repro.lint.cfg import CFG, CFGNode, build_cfg, cfg_for_function
from repro.lint.dataflow import ForwardAnalysis, run_forward
from repro.lint.engine import Finding, ModuleInfo, Rule


# ----------------------------------------------------------------------
# statement anatomy shared by the flow rules
# ----------------------------------------------------------------------
def _stmt_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expression trees *executed by this statement itself*.

    A CFG node for a compound statement stands only for its header (the
    ``if`` test, the ``for`` iterable, the ``with`` items); the body
    statements are separate nodes.  Simple statements are their whole
    subtree.  Nested function/class definitions are returned whole so a
    rule can detect closure capture, but their execution is deferred.
    """
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: List[ast.AST] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _name_in(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(tree)
    )


def _iter_calls(exprs: Sequence[ast.AST]) -> Iterator[ast.Call]:
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                yield sub


def _module_function_cfg(
    module: ModuleInfo, fn: FunctionNode
) -> CFG:
    cfg = cfg_for_function(fn, module.cfg_cache)  # type: ignore[arg-type]
    return cfg


def _is_release_call(call: ast.Call, methods: Tuple[str, ...]) -> Optional[str]:
    """Name whose ``.close()``-style method this call invokes, if any."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in methods
        and isinstance(func.value, ast.Name)
    ):
        return func.value.id
    return None


def _call_passes_name(call: ast.Call, name: str) -> bool:
    """Is the bare binding *name* handed to this call as an argument?"""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return True
        if (
            isinstance(arg, ast.Starred)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == name
        ):
            return True
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and kw.value.id == name:
            return True
    return False


# ----------------------------------------------------------------------
# the generic "handle must be closed on every path" analysis
# (shared by RPL008 segments and RPL011 spans)
# ----------------------------------------------------------------------
class _HeldAnalysis(ForwardAnalysis[FrozenSet[str]]):
    """Powerset lattice of bindings still *held* on some incoming path."""

    def __init__(
        self,
        acquires: Dict[int, str],
        release_methods: Tuple[str, ...],
    ) -> None:
        #: id(assign-stmt) -> variable it binds a fresh handle to
        self.acquires = acquires
        self.release_methods = release_methods

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, node: CFGNode, state: FrozenSet[str]) -> FrozenSet[str]:
        stmt = node.stmt
        if stmt is None:
            return state
        exprs = _stmt_exprs(stmt)
        out = set(state)
        for call in _iter_calls(exprs):
            released = _is_release_call(call, self.release_methods)
            if released is not None:
                out.discard(released)
        for var in list(out):
            if self._escapes(stmt, exprs, var):
                out.discard(var)
        acquired = self.acquires.get(id(stmt))
        if acquired is not None:
            out.add(acquired)
        return frozenset(out)

    # -- custody transfer ------------------------------------------------
    def _escapes(
        self, stmt: ast.stmt, exprs: Sequence[ast.AST], var: str
    ) -> bool:
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            return var in stmt.names
        if isinstance(stmt, ast.Delete):
            return any(_name_in(t, var) for t in stmt.targets)
        if isinstance(stmt, ast.Return):
            return stmt.value is not None and _name_in(stmt.value, var)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A nested scope closing over the binding takes custody.
            return any(_name_in(s, var) for s in stmt.body)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    # self.seg = wrap(seg) / registry[k] = seg: the
                    # container owns it now (writes *into* the handle,
                    # like seg.buf[0] = 1, keep the target side only).
                    if _name_in(stmt.value, var):
                        return True
                if isinstance(target, ast.Name) and self._aliases(
                    stmt.value, var
                ):
                    return True
                if isinstance(target, (ast.Tuple, ast.List)) and self._aliases(
                    stmt.value, var
                ):
                    return True
        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    value = sub.value
                    if value is not None and _name_in(value, var):
                        return True
                if isinstance(sub, ast.Call) and _call_passes_name(sub, var):
                    return True
                if isinstance(sub, ast.Lambda) and _name_in(sub.body, var):
                    return True
        return False

    @staticmethod
    def _aliases(value: ast.AST, var: str) -> bool:
        """Is the bare handle re-bound to another name (alias custody)?"""
        if isinstance(value, ast.Name) and value.id == var:
            return True
        if isinstance(value, (ast.Tuple, ast.List)):
            return any(
                isinstance(el, ast.Name) and el.id == var for el in value.elts
            )
        return False


# ----------------------------------------------------------------------
# RPL008 — segment custody on all paths
# ----------------------------------------------------------------------
class SegmentCustodyPaths(Rule):
    """A shm segment handle must reach release or an ownership escape on
    *every* CFG path — not merely somewhere in the function.

    RPL004 checks custody syntactically: a ``finally`` that closes the
    binding anywhere in the scope satisfies it, even when an early
    ``return`` two lines above the ``try`` skips that ``finally``
    entirely.  That exact shape leaked pinned segments until reboot in
    early drafts of the serve registry — the runtime answer is the
    ``sweep_orphan_segments`` reaper (``kernels/shm.py``); this rule is
    its static twin, catching the leak before it ships.

    Tracked: ``SharedMemory(...)`` / ``*Store.create/attach(...)`` bound
    to a local name.  Custody on a path ends when the handle is closed or
    unlinked, returned/yielded, stored into an attribute/subscript,
    passed to a call, captured by a nested scope, aliased, or declared
    global.  If the function exit is reachable with the handle still
    held, the acquisition is flagged.
    """

    rule_id = "RPL008"
    title = "shm segment released or ownership-escaped on every CFG path"

    fixture_bad = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe(flag):\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    if flag:\n"
        "        return None\n"
        "    try:\n"
        "        seg.buf[0] = 1\n"
        "    finally:\n"
        "        seg.close()\n"
        "        seg.unlink()\n"
    )
    fixture_good = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def probe(flag):\n"
        "    seg = SharedMemory(create=True, size=8)\n"
        "    try:\n"
        "        if flag:\n"
        "            return None\n"
        "        seg.buf[0] = 1\n"
        "    finally:\n"
        "        seg.close()\n"
        "        seg.unlink()\n"
    )

    _release_methods = ("close", "unlink")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for fn in function_scopes(module.tree):
            yield from self._check_function(module, fn)

    def _acquisition_assigns(
        self, fn: FunctionNode
    ) -> Tuple[Dict[int, str], Dict[str, ast.stmt]]:
        """Name-bound acquisitions: id(assign) -> var, var -> first assign."""
        managed: Set[int] = set()
        for node in walk_scope(fn.body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if is_shm_acquisition(sub):
                            managed.add(id(sub))
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    for sub in ast.walk(value):
                        if is_shm_acquisition(sub):
                            managed.add(id(sub))
        acquires: Dict[int, str] = {}
        first_site: Dict[str, ast.stmt] = {}
        declared_global: Set[str] = set()
        for node in walk_scope(fn.body):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared_global.update(node.names)
        for node in walk_scope(fn.body):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name
            ):
                continue
            calls = [
                sub for sub in ast.walk(node.value) if is_shm_acquisition(sub)
            ]
            if not calls or all(id(c) in managed for c in calls):
                continue
            var = node.targets[0].id
            if var in declared_global:
                continue  # worker-state pattern: the module owns it
            acquires[id(node)] = var
            first_site.setdefault(var, node)
        return acquires, first_site

    def _check_function(
        self, module: ModuleInfo, fn: FunctionNode
    ) -> Iterator[Finding]:
        acquires, first_site = self._acquisition_assigns(fn)
        if not acquires:
            return
        cfg = _module_function_cfg(module, fn)
        analysis = _HeldAnalysis(acquires, self._release_methods)
        result = run_forward(cfg, analysis)
        leaked = result.at_exit(cfg)
        for var in sorted(leaked):
            site = first_site.get(var)
            if site is None:
                continue
            yield self.finding(
                module,
                site,
                f"segment bound to {var!r} can leak: a path through "
                f"{fn.name}() reaches the exit without close()/unlink() or "
                "an ownership transfer — move the acquisition inside the "
                "try, use a context manager, or release before the early "
                "exit (runtime twin: sweep_orphan_segments)",
            )


# ----------------------------------------------------------------------
# RPL009 — lock discipline in serve/ and planner/cache.py
# ----------------------------------------------------------------------
class _MustHoldLocks(ForwardAnalysis[FrozenSet[str]]):
    """Locks *definitely* held via explicit acquire()/release() calls."""

    def __init__(self, lock_names: FrozenSet[str]) -> None:
        self.lock_names = lock_names

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a & b  # must-analysis: held on *all* incoming paths

    def transfer(self, node: CFGNode, state: FrozenSet[str]) -> FrozenSet[str]:
        stmt = node.stmt
        if stmt is None:
            return state
        out = set(state)
        for call in _iter_calls(_stmt_exprs(stmt)):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = dotted_name(func.value)
            if owner is None or owner not in self.lock_names:
                continue
            if func.attr == "acquire":
                out.add(owner)
            elif func.attr == "release":
                out.discard(owner)
        return frozenset(out)


class LockDiscipline(Rule):
    """Attributes that any method touches under ``self._lock`` must be
    touched under it *everywhere*, and two locks must nest in one order.

    The registry and planner cache are the only mutable state shared by
    every in-flight query of the always-on service; one unlocked read of
    ``self._datasets`` during a concurrent ``register`` is a
    time-of-check bug the load harness can only catch probabilistically.
    The rule infers the guarded set per class (an attribute is guarded
    if some access outside ``__init__`` holds a lock) and flags accesses
    that reach it with no lock held — using both ``with self._lock``
    regions and a must-hold dataflow over explicit
    ``acquire()``/``release()`` calls, so a conditional acquire on one
    branch does not count as protection.  Module-wide, nested
    acquisition order must be globally consistent (lock-order inversion
    is a deadlock, not a data race).

    Scoped to ``serve/`` and ``planner/cache.py`` inside the package —
    the engine's worker-pool internals (``pbsm/parallel.py``) have their
    own single-writer conventions that this rule's inference would
    misread.
    """

    rule_id = "RPL009"
    title = "guarded attributes locked on every access; one global lock order"

    fixture_bad = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = {}\n"
        "    def add(self, key, value):\n"
        "        with self._lock:\n"
        "            self._items[key] = value\n"
        "    def size(self):\n"
        "        return len(self._items)\n"
    )
    fixture_good = (
        "import threading\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = {}\n"
        "    def add(self, key, value):\n"
        "        with self._lock:\n"
        "            self._items[key] = value\n"
        "    def size(self):\n"
        "        with self._lock:\n"
        "            return len(self._items)\n"
    )

    def _in_scope(self, module: ModuleInfo) -> bool:
        rel = module.relpath
        if "repro/" in rel:
            return "serve/" in rel or rel.endswith("planner/cache.py")
        return True  # fixtures and scratch files

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not self._in_scope(module):
            return
        order_pairs: Dict[Tuple[str, str], ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, order_pairs)
        for (a, b), site in sorted(
            order_pairs.items(), key=lambda kv: kv[1].lineno
        ):
            if (b, a) in order_pairs and a < b:
                other = order_pairs[(b, a)]
                first, second = sorted(
                    (site, other), key=lambda n: (n.lineno, n.col_offset)
                )
                yield self.finding(
                    module,
                    second,
                    f"lock-order inversion: {a!r} and {b!r} are nested in "
                    f"both orders in this module (see line {first.lineno}); "
                    "pick one global order or this deadlocks under load",
                )

    # -- per-class analysis ----------------------------------------------
    def _check_class(
        self,
        module: ModuleInfo,
        cls: ast.ClassDef,
        order_pairs: Dict[Tuple[str, str], ast.AST],
    ) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attrs(methods)
        if not lock_attrs:
            return
        lock_names = frozenset(f"self.{attr}" for attr in lock_attrs)

        #: (attr, locked?, access-node, in-init?)
        accesses: List[Tuple[str, bool, ast.AST, bool]] = []
        for method in methods:
            in_init = method.name == "__init__"
            cfg = _module_function_cfg(module, method)
            flow = run_forward(cfg, _MustHoldLocks(lock_names))
            syntactic = self._with_lock_map(
                method.body, lock_names, order_pairs
            )
            for node in cfg.statement_nodes():
                stmt = node.stmt
                assert stmt is not None
                held = bool(syntactic.get(id(stmt))) or bool(
                    flow.in_states.get(node.nid)
                )
                for attr_node in self._self_attrs(stmt):
                    if attr_node.attr in lock_attrs:
                        continue
                    accesses.append((attr_node.attr, held, attr_node, in_init))

        guarded = {
            attr for attr, held, _, in_init in accesses if held and not in_init
        }
        for attr, held, node, in_init in accesses:
            if attr in guarded and not held and not in_init:
                yield self.finding(
                    module,
                    node,
                    f"self.{attr} is accessed under the lock elsewhere in "
                    f"{cls.name} but not here; wrap this access in the same "
                    "with-lock region (or it races with every locked writer)",
                )

    @staticmethod
    def _lock_attrs(
        methods: Sequence[FunctionNode],
    ) -> Set[str]:
        locks: Set[str] = set()
        for method in methods:
            for node in walk_scope(method.body):
                if not isinstance(node, ast.Assign):
                    continue
                if not (
                    isinstance(node.value, ast.Call)
                    and tail_name(node.value.func) in ("Lock", "RLock")
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
        return locks

    def _with_lock_map(
        self,
        body: Sequence[ast.stmt],
        lock_names: FrozenSet[str],
        order_pairs: Dict[Tuple[str, str], ast.AST],
    ) -> Dict[int, FrozenSet[str]]:
        """id(stmt) -> locks held via enclosing ``with`` statements."""
        held_map: Dict[int, FrozenSet[str]] = {}

        def visit(stmts: Sequence[ast.stmt], held: FrozenSet[str]) -> None:
            for stmt in stmts:
                held_map[id(stmt)] = held
                inner = held
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        name = dotted_name(item.context_expr)
                        if name is not None and name in lock_names:
                            for outer in inner:
                                if outer != name:
                                    order_pairs.setdefault(
                                        (outer, name), item.context_expr
                                    )
                            inner = inner | {name}
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue  # nested scope: not this method's region
                for field_name in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, field_name, None)
                    if child:
                        visit(child, inner)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, inner)
                for case in getattr(stmt, "cases", []) or []:
                    visit(case.body, inner)

        visit(list(body), frozenset())
        return held_map

    @staticmethod
    def _self_attrs(stmt: ast.stmt) -> Iterator[ast.Attribute]:
        for expr in _stmt_exprs(stmt):
            if isinstance(
                expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    yield sub


# ----------------------------------------------------------------------
# RPL010 — charge-once counter conservation
# ----------------------------------------------------------------------
class _MergeCountAnalysis(ForwardAnalysis[FrozenSet[Tuple[str, int]]]):
    """Possible merge counts per scratch counter: -1 unborn, 0, 1, 2(=more)."""

    def __init__(
        self,
        created: Dict[int, str],
        merges: Dict[int, List[str]],
        tracked: FrozenSet[str],
    ) -> None:
        self.created = created
        self.merges = merges
        self.tracked = tracked

    def initial(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset((var, -1) for var in self.tracked)

    def join(
        self, a: FrozenSet[Tuple[str, int]], b: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        return a | b

    def transfer(
        self, node: CFGNode, state: FrozenSet[Tuple[str, int]]
    ) -> FrozenSet[Tuple[str, int]]:
        stmt = node.stmt
        if stmt is None:
            return state
        out = state
        created = self.created.get(id(stmt))
        if created is not None:
            out = frozenset(
                pair for pair in out if pair[0] != created
            ) | {(created, 0)}
        for var in self.merges.get(id(stmt), ()):
            bumped = set()
            for name, count in out:
                if name != var:
                    bumped.add((name, count))
                elif count < 0:
                    # merging before creation is impossible at runtime
                    # (NameError); treat as one merge so correlated
                    # branches don't produce phantom verdicts.
                    bumped.add((name, 1))
                else:
                    bumped.add((name, min(count + 1, 2)))
            out = frozenset(bumped)
        return out


class ChargeOnce(Rule):
    """A scratch ``CpuCounters`` that participates in merging must merge
    exactly once on every path that created it.

    The stripe-split convention (PR 7/8): sibling parts of a split
    stripe sort *shared* inputs, so all but one charge their sort into a
    throwaway ``scratch = CpuCounters()`` that is deliberately dropped —
    and per-task counters are merged into the join total exactly once
    per task.  Merge a scratch twice (e.g. once per loop iteration with
    the counter hoisted out of the loop) and the simulator double-prices
    the sort; skip the merge on one branch and the work goes missing
    from EXPLAIN.  Both break the byte-identity of reported costs.

    Deliberately *never*-merged scratch counters (the discard pattern in
    ``kernels/rpm.py`` / ``kernels/twolayer.py``) are exempt: the rule
    only tracks counters the function merges somewhere.
    """

    rule_id = "RPL010"
    title = "scratch CpuCounters merged exactly once per creating path"

    fixture_bad = (
        "from repro.core.stats import CpuCounters\n"
        "def run(parts, total):\n"
        "    task_cpu = CpuCounters()\n"
        "    for part in parts:\n"
        "        part.sort()\n"
        "        total.add(task_cpu)\n"
    )
    fixture_good = (
        "from repro.core.stats import CpuCounters\n"
        "def run(parts, total):\n"
        "    for part in parts:\n"
        "        task_cpu = CpuCounters()\n"
        "        part.sort()\n"
        "        total.add(task_cpu)\n"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for fn in function_scopes(module.tree):
            yield from self._check_function(module, fn)

    def _check_function(
        self, module: ModuleInfo, fn: FunctionNode
    ) -> Iterator[Finding]:
        created: Dict[int, str] = {}
        first_site: Dict[str, ast.stmt] = {}
        for node in walk_scope(fn.body):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and tail_name(node.value.func) == "CpuCounters"
            ):
                var = node.targets[0].id
                created[id(node)] = var
                first_site.setdefault(var, node)
        if not created:
            return
        candidate_vars = frozenset(created.values())

        merges: Dict[int, List[str]] = {}
        merge_sites: Dict[int, ast.stmt] = {}
        merged_vars: Set[str] = set()
        cfg = _module_function_cfg(module, fn)
        for node in cfg.statement_nodes():
            stmt = node.stmt
            assert stmt is not None
            for call in _iter_calls(_stmt_exprs(stmt)):
                if not (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "add"
                    and len(call.args) == 1
                    and isinstance(call.args[0], ast.Name)
                ):
                    continue
                var = call.args[0].id
                if var in candidate_vars:
                    merges.setdefault(id(stmt), []).append(var)
                    merge_sites[id(stmt)] = stmt
                    merged_vars.add(var)
        if not merged_vars:
            return  # pure discard scratch counters: the sanctioned pattern

        tracked = frozenset(merged_vars)
        created = {
            key: var for key, var in created.items() if var in tracked
        }
        analysis = _MergeCountAnalysis(created, merges, tracked)
        result = run_forward(cfg, analysis)

        flagged_double: Set[str] = set()
        for node in cfg.statement_nodes():
            stmt = node.stmt
            assert stmt is not None
            state = result.in_states.get(node.nid)
            if state is None:
                continue
            for var in merges.get(id(stmt), ()):
                if var in flagged_double:
                    continue
                if any(
                    name == var and count >= 1 for name, count in state
                ):
                    flagged_double.add(var)
                    yield self.finding(
                        module,
                        stmt,
                        f"scratch counter {var!r} can merge more than once "
                        "on a path through this statement (double-charged "
                        "work); create it once per merge, e.g. inside the "
                        "loop body",
                    )
        exit_state = result.at_exit(cfg)
        for var in sorted(tracked):
            if var in flagged_double:
                continue
            if any(name == var and count == 0 for name, count in exit_state):
                site = first_site.get(var)
                if site is None:
                    continue
                yield self.finding(
                    module,
                    site,
                    f"scratch counter {var!r} is merged on some paths of "
                    f"{fn.name}() but a path exists that never merges it — "
                    "that path's work silently vanishes from the totals",
                )


# ----------------------------------------------------------------------
# RPL011 — span pairing
# ----------------------------------------------------------------------
class SpanPairing(Rule):
    """Every ``tracer.span(...)`` is a ``with`` statement, or its handle
    is explicitly exited on all paths.

    The trace↔stats reconciliation (``obs/compare.py``) treats the span
    tree as exhaustive: an entered-but-never-exited span leaves a
    dangling open interval whose children re-parent, and the phase
    shares stop adding up to the wall time.  A span object that is
    created and dropped records nothing at all — silently missing
    telemetry is worse than none, because the reconciliation then
    *passes* on a partial tree.
    """

    rule_id = "RPL011"
    title = "tracer.span() used as a with-statement or exited on all paths"

    fixture_bad = (
        "def probe(tracer, flag):\n"
        '    span = tracer.span("join")\n'
        "    span.__enter__()\n"
        "    if flag:\n"
        "        return 0\n"
        "    span.__exit__(None, None, None)\n"
        "    return 1\n"
    )
    fixture_good = (
        "def probe(tracer, flag):\n"
        '    with tracer.span("join"):\n'
        "        if flag:\n"
        "            return 0\n"
        "    return 1\n"
    )

    _exit_methods = ("__exit__", "finish", "close")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if in_path(module.relpath, "obs/trace.py"):
            return  # the definition site builds spans by hand
        for fn in function_scopes(module.tree):
            yield from self._check_scope(
                module, fn.body, _module_function_cfg(module, fn), fn.name
            )
        yield from self._check_scope(
            module, module.tree.body, None, "<module>"
        )

    @staticmethod
    def _is_span_call(node: ast.AST) -> bool:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return False
        if node.func.attr != "span":
            return False
        receiver = tail_name(node.func.value)
        return receiver is not None and "tracer" in receiver.lower()

    def _check_scope(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        cfg: Optional[CFG],
        scope_name: str,
    ) -> Iterator[Finding]:
        span_calls = [n for n in walk_scope(body) if self._is_span_call(n)]
        if not span_calls:
            return
        managed: Set[int] = set()
        bound: Dict[int, Tuple[str, ast.stmt]] = {}
        for node in walk_scope(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if self._is_span_call(sub):
                            managed.add(id(sub))
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_span_call(node.value)
            ):
                bound[id(node.value)] = (node.targets[0].id, node)

        acquires: Dict[int, str] = {}
        first_site: Dict[str, ast.stmt] = {}
        for call in span_calls:
            if id(call) in managed:
                continue
            binding = bound.get(id(call))
            if binding is None:
                yield self.finding(
                    module,
                    call,
                    f"tracer.span(...) in {scope_name} is neither a "
                    "with-statement nor bound for an explicit __exit__; "
                    "the span never records and the trace tree lies",
                )
                continue
            var, stmt = binding
            acquires[id(stmt)] = var
            first_site.setdefault(var, stmt)
        if not acquires:
            return
        if cfg is None:
            cfg = build_cfg(body)
        analysis = _HeldAnalysis(acquires, self._exit_methods)
        result = run_forward(cfg, analysis)
        for var in sorted(result.at_exit(cfg)):
            site = first_site.get(var)
            if site is None:
                continue
            yield self.finding(
                module,
                site,
                f"span bound to {var!r} is not exited on every path of "
                f"{scope_name}; use `with tracer.span(...)` or call "
                "__exit__ before each early return",
            )


# ----------------------------------------------------------------------
# RPL012 — thread-dispatched functions must not mutate shared state
# ----------------------------------------------------------------------
class ThreadExecutorShared(Rule):
    """Callables dispatched to a ``ThreadPoolExecutor`` must not write
    ``self``/closure attributes or rebind outer names without a lock.

    The thread executor exists because the numpy kernels release the
    GIL, which means worker callables *really do* run concurrently with
    each other and with the dispatching thread.  A worker that writes
    ``self.anything`` (or a captured object's attribute, or a
    ``nonlocal``/``global`` name) unlocked is a data race the tests only
    lose intermittently — the scheduler's own convention is that workers
    communicate exclusively through their return values (see
    ``pbsm/parallel.py``), and this rule makes that convention checkable.
    """

    rule_id = "RPL012"
    title = "thread-pool workers write shared state only under a lock"

    fixture_bad = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "class Engine:\n"
        "    def run(self, units):\n"
        "        def work(unit):\n"
        "            self.completed = unit\n"
        "            return unit\n"
        "        with ThreadPoolExecutor(max_workers=2) as pool:\n"
        "            return list(pool.map(work, units))\n"
    )
    fixture_good = (
        "import threading\n"
        "from concurrent.futures import ThreadPoolExecutor\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.completed = 0\n"
        "    def run(self, units):\n"
        "        def work(unit):\n"
        "            with self._lock:\n"
        "                self.completed += 1\n"
        "            return unit\n"
        "        with ThreadPoolExecutor(max_workers=2) as pool:\n"
        "            return list(pool.map(work, units))\n"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        for fn in function_scopes(module.tree):
            yield from self._check_function(module, fn)

    def _check_function(
        self, module: ModuleInfo, fn: FunctionNode
    ) -> Iterator[Finding]:
        pool_vars = self._pool_vars(fn)
        if not pool_vars:
            return
        local_defs: Dict[str, FunctionNode] = {}
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[node.name] = node
        workers = self._worker_defs(fn, pool_vars, local_defs)
        for worker in workers:
            yield from self._check_worker(module, worker)

    @staticmethod
    def _pool_vars(fn: FunctionNode) -> Set[str]:
        pools: Set[str] = set()
        for node in walk_scope(fn.body):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and tail_name(node.value.func) == "ThreadPoolExecutor"
            ):
                pools.add(node.targets[0].id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and tail_name(item.context_expr.func)
                        == "ThreadPoolExecutor"
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        pools.add(item.optional_vars.id)
        return pools

    @staticmethod
    def _worker_defs(
        fn: FunctionNode,
        pool_vars: Set[str],
        local_defs: Dict[str, FunctionNode],
    ) -> List[FunctionNode]:
        workers: List[FunctionNode] = []
        seen: Set[int] = set()
        for node in walk_scope(fn.body):
            if not isinstance(node, ast.Call):
                continue
            dispatches = False
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pool_vars
            ):
                dispatches = True  # pool.submit(f, ...) / pool.map(f, ...)
            elif any(
                isinstance(arg, ast.Name) and arg.id in pool_vars
                for arg in node.args
            ):
                dispatches = True  # self._drain(pool, f, ...) style
            if not dispatches:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in local_defs:
                    worker = local_defs[arg.id]
                    if id(worker) not in seen:
                        seen.add(id(worker))
                        workers.append(worker)
        return workers

    def _check_worker(
        self, module: ModuleInfo, worker: FunctionNode
    ) -> Iterator[Finding]:
        local_names = self._local_names(worker)
        shared_decls: Set[str] = set()
        for node in walk_scope(worker.body):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                shared_decls.update(node.names)

        def visit(
            stmts: Sequence[ast.stmt], locked: bool
        ) -> Iterator[Finding]:
            for stmt in stmts:
                inner = locked
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        name = dotted_name(item.context_expr) or ""
                        if "lock" in name.lower():
                            inner = True
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if not locked:
                    yield from self._stmt_violations(
                        module, worker, stmt, local_names, shared_decls
                    )
                for field_name in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, field_name, None)
                    if child:
                        yield from visit(child, inner)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from visit(handler.body, inner)
                for case in getattr(stmt, "cases", []) or []:
                    yield from visit(case.body, inner)

        yield from visit(worker.body, False)

    def _stmt_violations(
        self,
        module: ModuleInfo,
        worker: FunctionNode,
        stmt: ast.stmt,
        local_names: Set[str],
        shared_decls: Set[str],
    ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            flat: List[ast.expr] = (
                list(target.elts)
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for tgt in flat:
                if isinstance(tgt, ast.Attribute):
                    root = root_name(tgt)
                    if root is not None and (
                        root == "self" or root not in local_names
                    ):
                        yield self.finding(
                            module,
                            tgt,
                            f"thread-pool worker {worker.name}() writes "
                            f"shared attribute {root}.{tgt.attr} without a "
                            "lock; workers must communicate via return "
                            "values or take a lock (GIL-releasing kernels "
                            "really do run this concurrently)",
                        )
                elif isinstance(tgt, ast.Name) and tgt.id in shared_decls:
                    yield self.finding(
                        module,
                        tgt,
                        f"thread-pool worker {worker.name}() rebinds "
                        f"{tgt.id!r} declared global/nonlocal without a "
                        "lock; workers must communicate via return values",
                    )

    @staticmethod
    def _local_names(worker: FunctionNode) -> Set[str]:
        args = worker.args
        names: Set[str] = {
            a.arg
            for a in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }
        shared: Set[str] = set()
        for node in walk_scope(worker.body):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                shared.update(node.names)
        for node in walk_scope(worker.body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for sub in ast.walk(item.optional_vars):
                            if isinstance(sub, ast.Name):
                                names.add(sub.id)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names - shared


#: The flow-sensitive rules, in rule-id order (merged into ALL_RULES).
FLOW_RULES: Tuple[Rule, ...] = (
    SegmentCustodyPaths(),
    LockDiscipline(),
    ChargeOnce(),
    SpanPairing(),
    ThreadExecutorShared(),
)
