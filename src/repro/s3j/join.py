"""The Size Separation Spatial Join driver.

Implements both variants the paper compares:

* ``replicate=False`` — original S3J (Koudas & Sevcik): every rectangle in
  exactly one cell (its MX-CIF node), no duplicates, but small
  boundary-straddling rectangles sink into low level-files where they are
  tested against everything.
* ``replicate=True`` — the paper's improvement: size-separated levels with
  at most four copies per rectangle, duplicates suppressed online by the
  hierarchical Reference Point Method (the reference point must lie in the
  *deeper* of the two joined cells).

Phases (Figure 8): partitioning (level files), sorting (by locational
code), and the synchronized join scan.  The internal per-partition-pair
algorithm is pluggable; the paper's finding (Figure 12) is that nested
loops is the right choice for S3J's tiny partitions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION, PHASE_SORT
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.obs.trace import KIND_RUN, NULL_TRACER
from repro.s3j.levelfile import build_level_files, sort_level_files
from repro.s3j.levels import ASSIGNMENT_STRATEGIES
from repro.s3j.scan import ScanStats, scan_pairs
from repro.sfc.locational import (
    DEFAULT_MAX_LEVEL,
    curve_decoder,
    curve_encoder,
    point_cell,
)


class S3J:
    """Size Separation Spatial Join.

    Parameters
    ----------
    memory_bytes:
        Budget for the sorting phase and the scan's path partitions.
    replicate:
        True = the paper's size-separation replication (with online RPM);
        False = the original no-redundancy assignment.
    strategy:
        Overrides ``replicate`` with a named assignment strategy:
        "original" (no redundancy), "size" (full size separation, the
        paper's), or "hybrid" (replicate only boundary-straddling
        rectangles; Section 4.3 notes several such strategies were
        evaluated).
    internal:
        Internal join algorithm for partition pairs ("nested_loops" is the
        paper's recommendation for S3J).
    curve:
        Space-filling curve for the locational codes ("peano"/"hilbert").
        The choice affects only the code-computation CPU cost (4.4.2).
    max_level:
        Deepest grid level (the hierarchy has ``max_level + 1`` levels).
    io_buffer_pages:
        Pages per level-file output/scan buffer.  S3J has only
        ``max_level + 1`` files per relation, so multi-page buffers are
        affordable and keep its I/O nearly sequential (Section 5.1).
    """

    def __init__(
        self,
        memory_bytes: int,
        *,
        replicate: bool = True,
        internal: str = "nested_loops",
        curve: str = "peano",
        max_level: int = DEFAULT_MAX_LEVEL,
        cost_model: Optional[CostModel] = None,
        io_buffer_pages: int = 4,
        strategy: Optional[str] = None,
        tracer=None,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if max_level < 1:
            raise ValueError("max_level must be at least 1")
        self.memory_bytes = memory_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if strategy is None:
            strategy = "size" if replicate else "original"
        if strategy not in ASSIGNMENT_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from "
                f"{sorted(ASSIGNMENT_STRATEGIES)}"
            )
        self.strategy = strategy
        self.assign = ASSIGNMENT_STRATEGIES[strategy]
        self.replicate = strategy != "original"
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.curve = curve
        self.encoder = curve_encoder(curve)
        self.decoder = curve_decoder(curve)
        self.max_level = max_level
        self.cost_model = cost_model or CostModel()
        if io_buffer_pages < 1:
            raise ValueError("io_buffer_pages must be >= 1")
        self.io_buffer_pages = io_buffer_pages

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        """Execute the join and return all result pairs plus statistics."""
        stats = self._new_stats(left, right)
        pairs = list(self._generate(left, right, stats))
        stats.n_results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)

    def iter_pairs(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        stats: Optional[JoinStats] = None,
    ) -> Iterator[Tuple[int, int]]:
        """Yield result pairs as the scan produces them (pipelined)."""
        own_stats = stats if stats is not None else self._new_stats(left, right)
        yield from self._generate(left, right, own_stats)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _new_stats(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinStats:
        variant = {"size": "repl", "original": "orig", "hybrid": "hybrid"}[
            self.strategy
        ]
        return JoinStats(
            algorithm=f"S3J({self.internal_name},{variant})",
            n_left=len(left),
            n_right=len(right),
        )

    def _generate(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        stats: JoinStats,
    ) -> Iterator[Tuple[int, int]]:
        disk = SimulatedDisk(self.cost_model)
        cpu = {
            PHASE_PARTITION: CpuCounters(),
            PHASE_SORT: CpuCounters(),
            PHASE_JOIN: CpuCounters(),
        }
        if not left or not right:
            self._finalize_stats(stats, disk, cpu)
            return

        space = Space.of(left, right)
        assign = self.assign

        tracer = self.tracer
        with tracer.span(
            "s3j",
            kind=KIND_RUN,
            internal=self.internal_name,
            strategy=self.strategy,
            curve=self.curve,
        ):
            # --- phase 1: partitioning into level files --------------------
            with tracer.span(
                PHASE_PARTITION, cpu=cpu[PHASE_PARTITION], disk=disk
            ) as sp:
                with disk.phase(PHASE_PARTITION):
                    files_left, n_left_written = build_level_files(
                        assign(
                            left,
                            space,
                            self.max_level,
                            self.encoder,
                            cpu[PHASE_PARTITION],
                        ),
                        self.max_level,
                        disk,
                        "R",
                        self.io_buffer_pages,
                    )
                    files_right, n_right_written = build_level_files(
                        assign(
                            right,
                            space,
                            self.max_level,
                            self.encoder,
                            cpu[PHASE_PARTITION],
                        ),
                        self.max_level,
                        disk,
                        "S",
                        self.io_buffer_pages,
                    )
                stats.records_partitioned = n_left_written + n_right_written
                stats.replicas_created = (
                    stats.records_partitioned - len(left) - len(right)
                )
                stats.n_partitions = sum(
                    1 for f in files_left + files_right if f.n_records
                )
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            # --- phase 2: sort level files by locational code ---------------
            with tracer.span(PHASE_SORT, cpu=cpu[PHASE_SORT], disk=disk) as sp:
                with disk.phase(PHASE_SORT):
                    files_left = sort_level_files(
                        files_left, self.memory_bytes, cpu[PHASE_SORT]
                    )
                    files_right = sort_level_files(
                        files_right, self.memory_bytes, cpu[PHASE_SORT]
                    )
            stats.wall_seconds_by_phase[PHASE_SORT] = sp.wall_seconds

            # --- phase 3: synchronized scan --------------------------------
            scan_stats = ScanStats()
            join_cpu = cpu[PHASE_JOIN]
            with tracer.span(PHASE_JOIN, cpu=join_cpu, disk=disk) as sp:
                with disk.phase(PHASE_JOIN):
                    for part_left, part_right in scan_pairs(
                        files_left,
                        files_right,
                        self.max_level,
                        self.decoder,
                        join_cpu,
                        self.memory_bytes,
                        scan_stats,
                        self.io_buffer_pages,
                    ):
                        yield from self._join_partition_pair(
                            part_left, part_right, space, join_cpu, stats
                        )
                stats.memory_overruns = scan_stats.memory_overruns
                stats.peak_memory_bytes = scan_stats.peak_stack_bytes
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds
        self._finalize_stats(stats, disk, cpu)

    def _join_partition_pair(
        self,
        part_left,
        part_right,
        space: Space,
        cpu: CpuCounters,
        stats: JoinStats,
    ) -> Iterator[Tuple[int, int]]:
        """Join one (ancestor, descendant) cell pair of the two relations."""
        results: List[Tuple[int, int]] = []
        if not self.replicate:

            def emit(r: Tuple, s: Tuple) -> None:
                results.append((r[0], s[0]))

        else:
            # Hierarchical RPM: the reference point must lie in the deeper
            # of the two cells (Section 4.3, Figure 10).
            deeper = part_left if part_left.level >= part_right.level else part_right
            deep_level = deeper.level
            deep_ix = deeper.ix
            deep_iy = deeper.iy
            refpoint_tests = 0
            suppressed = 0

            def emit(r: Tuple, s: Tuple) -> None:
                nonlocal refpoint_tests, suppressed
                refpoint_tests += 1
                rx = r[1]
                sx = s[1]
                ry = r[4]
                sy = s[4]
                x = rx if rx >= sx else sx
                y = ry if ry <= sy else sy
                ix, iy = point_cell(space, x, y, deep_level)
                if ix == deep_ix and iy == deep_iy:
                    results.append((r[0], s[0]))
                else:
                    suppressed += 1

        self.internal(part_left.kpes, part_right.kpes, emit, cpu)
        if self.replicate:
            cpu.refpoint_tests += refpoint_tests
            stats.duplicates_suppressed += suppressed
        yield from results

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _finalize_stats(self, stats: JoinStats, disk: SimulatedDisk, cpu) -> None:
        cost = self.cost_model
        hilbert = self.curve == "hilbert"
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.cpu_by_phase = {
            phase: counters.as_dict() for phase, counters in cpu.items()
        }
        stats.sim_io_seconds = cost.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = sum(
            cost.cpu_seconds(counters, hilbert=hilbert) for counters in cpu.values()
        )
        by_phase = {}
        units = stats.io_units_by_phase
        for phase, counters in cpu.items():
            by_phase[phase] = cost.cpu_seconds(counters, hilbert=hilbert) + (
                cost.io_seconds(units.get(phase, 0.0))
            )
        stats.sim_seconds_by_phase = by_phase


def s3j_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    **kwargs,
) -> JoinResult:
    """Convenience one-call S3J join (see :class:`S3J` for options)."""
    return S3J(memory_bytes, **kwargs).run(left, right)
