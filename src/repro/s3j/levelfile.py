"""S3J level files: one paged file per quadtree level per relation.

A level-file record is ``(code, kpe)``.  Its on-disk size is level
dependent, as the paper points out: a locational code at level ``k`` needs
``2k`` bits on top of the 20-byte KPE (we round the code to whole bytes).
Level 0 stores no code at all.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.rect import SIZEOF_KPE
from repro.core.stats import CpuCounters
from repro.io.disk import SimulatedDisk
from repro.io.extsort import external_sort
from repro.io.pagefile import PageFile


def record_bytes_for_level(level: int) -> int:
    """Bytes per level-file record: the KPE plus a 2*level-bit code."""
    if level == 0:
        return SIZEOF_KPE
    return SIZEOF_KPE + max(1, -(-2 * level // 8))


def build_level_files(
    entries: Iterable[Tuple[int, int, Tuple]],
    max_level: int,
    disk: SimulatedDisk,
    name_prefix: str,
    buffer_pages: int = 4,
) -> Tuple[List[PageFile], int]:
    """Write assignment entries into per-level files (partitioning phase).

    Returns ``(files, records_written)``.  There are only ``max_level + 1``
    level files per relation (far fewer than PBSM's partitions), so each
    can afford a multi-page output buffer — this is how S3J "almost avoids"
    random I/O (Section 5.1).
    """
    files = [
        PageFile(disk, record_bytes_for_level(level), f"{name_prefix}.L{level}")
        for level in range(max_level + 1)
    ]
    writers = [f.writer(buffer_pages=buffer_pages) for f in files]
    written = 0
    for level, code, kpe in entries:
        writers[level].write((code, kpe))
        written += 1
    for writer in writers:
        writer.close()
    return files, written


def sort_level_files(
    files: List[PageFile],
    memory_bytes: int,
    counters: CpuCounters,
) -> List[PageFile]:
    """Sorting phase: order every level file by locational code.

    Level 0 holds a single cell, so it needs no sorting (and is not even
    read); deeper files are sorted in memory when they fit — one read and
    one write each, the paper's Table 3 bound — or externally otherwise.
    """
    sorted_files: List[PageFile] = [files[0]]
    for level_file in files[1:]:
        if level_file.n_records == 0:
            sorted_files.append(level_file)
            continue
        sorted_files.append(
            external_sort(
                level_file,
                key=_by_code,
                memory_bytes=memory_bytes,
                counters=counters,
            )
        )
    return sorted_files


def _by_code(record: Tuple) -> int:
    return record[0]
