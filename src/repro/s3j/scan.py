"""S3J's join phase: a synchronized, heap-driven scan of the level files.

The linear scan of the sorted level files simulates a synchronized
pre-order traversal of the two MX-CIF quadtrees (Section 4.2).  Following
Section 4.4.3, a heap ordered by (left-aligned) locational code holds the
front partition of every non-empty level file, so empty cells are skipped
entirely and the scan degenerates to a merge.

For each partition popped in pre-order, the partitions of the *other*
relation currently on the path stack are exactly its ancestor (or
same-cell) partitions — the pairs the MX-CIF join must process.  Two
intersecting rectangles always sit in cells related by containment, so
pairing along the path is complete; with replication the hierarchical
Reference Point Method filters the redundant detections.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, NamedTuple, Optional, Tuple

from repro.core.stats import CpuCounters
from repro.io.pagefile import PageFile
from repro.s3j.levelfile import record_bytes_for_level
from repro.sfc.locational import is_ancestor_code, preorder_key


class CellPartition(NamedTuple):
    """One non-empty quadtree cell of one relation: its KPEs plus identity."""

    level: int
    code: int
    ix: int
    iy: int
    kpes: tuple
    rel: int  # 0 = left, 1 = right

    @property
    def bytes(self) -> int:
        return len(self.kpes) * record_bytes_for_level(self.level)


def partition_stream(
    level_file: PageFile,
    level: int,
    rel: int,
    decoder: Callable[[int, int], Tuple[int, int]],
    buffer_pages: int = 4,
) -> Iterator[CellPartition]:
    """Group a sorted level file into per-cell partitions.

    Reading happens through a small multi-page buffer (each level file is
    scanned strictly sequentially), charged to whatever disk phase is
    current when the stream is consumed.
    """
    run_code: Optional[int] = None
    run: List = []
    for code, kpe in level_file.iter_records(buffer_pages=buffer_pages):
        if code != run_code and run:
            yield _make_partition(level, run_code, run, rel, decoder)
            run = []
        run_code = code
        run.append(kpe)
    if run:
        yield _make_partition(level, run_code, run, rel, decoder)


def _make_partition(
    level: int,
    code: int,
    kpes: List,
    rel: int,
    decoder: Callable[[int, int], Tuple[int, int]],
) -> CellPartition:
    if level == 0:
        ix = iy = 0
    else:
        ix, iy = decoder(code, level)
    return CellPartition(level, code, ix, iy, tuple(kpes), rel)


class ScanStats:
    """Mutable tallies the synchronized scan maintains."""

    __slots__ = ("peak_stack_bytes", "memory_overruns", "partition_pairs")

    def __init__(self) -> None:
        self.peak_stack_bytes = 0
        self.memory_overruns = 0
        self.partition_pairs = 0


def scan_pairs(
    files_left: List[PageFile],
    files_right: List[PageFile],
    max_level: int,
    decoder: Callable[[int, int], Tuple[int, int]],
    counters: CpuCounters,
    memory_bytes: int,
    scan_stats: ScanStats,
    buffer_pages: int = 4,
) -> Iterator[Tuple[CellPartition, CellPartition]]:
    """Yield every (left partition, right partition) pair to be joined.

    Pairs are emitted with the left relation's partition first regardless
    of which arrived later in the traversal.
    """
    streams: List[Iterator[CellPartition]] = []
    for rel, files in ((0, files_left), (1, files_right)):
        for level in range(max_level + 1):
            if files[level].n_records:
                streams.append(
                    partition_stream(
                        files[level], level, rel, decoder, buffer_pages
                    )
                )

    heap: List[Tuple[int, int, int, int, CellPartition]] = []
    heap_ops = 0
    for stream_idx, stream in enumerate(streams):
        first = next(stream, None)
        if first is not None:
            heapq.heappush(heap, _heap_item(first, max_level, stream_idx))
            heap_ops += 1

    stacks: Tuple[List[CellPartition], List[CellPartition]] = ([], [])
    stack_bytes = [0, 0]
    while heap:
        _, _, _, stream_idx, part = heapq.heappop(heap)
        heap_ops += 1
        nxt = next(streams[stream_idx], None)
        if nxt is not None:
            heapq.heappush(heap, _heap_item(nxt, max_level, stream_idx))
            heap_ops += 1

        # Unwind both stacks to the path of the new cell.
        for rel in (0, 1):
            stack = stacks[rel]
            while stack and not is_ancestor_code(
                stack[-1].code, stack[-1].level, part.code, part.level
            ):
                stack_bytes[rel] -= stack[-1].bytes
                stack.pop()

        # Join against every ancestor-or-equal partition of the other side.
        other = stacks[1 - part.rel]
        for ancestor in other:
            scan_stats.partition_pairs += 1
            if part.rel == 0:
                yield part, ancestor
            else:
                yield ancestor, part

        stacks[part.rel].append(part)
        stack_bytes[part.rel] += part.bytes
        total = stack_bytes[0] + stack_bytes[1]
        if total > scan_stats.peak_stack_bytes:
            scan_stats.peak_stack_bytes = total
        if total > memory_bytes:
            scan_stats.memory_overruns += 1
    counters.heap_ops += heap_ops


def _heap_item(
    part: CellPartition, max_level: int, stream_idx: int
) -> Tuple[int, int, int, int, CellPartition]:
    """Heap key: pre-order position, then level, then relation.

    The relation tie-break (left before right) makes same-cell pairing
    deterministic: the right relation's copy finds the left's already on
    the stack.
    """
    return (
        preorder_key(part.code, part.level, max_level),
        part.level,
        part.rel,
        stream_idx,
        part,
    )
