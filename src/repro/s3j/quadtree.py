"""In-memory MX-CIF quadtrees and their synchronized join (Section 4.1).

The paper introduces S3J as "an external version of a join algorithm that
is performed on MX-CIF quadtrees".  This module provides that internal
version: a pointer-based MX-CIF quadtree (rectangles stored at the deepest
node covering them, any number per node) plus the synchronized pre-order
co-traversal that joins two trees — each visited node pair joins a node's
rectangles against the rectangles stored on the path to the co-located
node of the other tree.

It is used by tests (as an independent implementation the external S3J
must agree with) and by the quadtree example.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.sfc.locational import DEFAULT_MAX_LEVEL, cell_of_rect, mxcif_level


class _QuadNode:
    """One quadtree cell: stored rectangles plus up to four children."""

    __slots__ = ("items", "children")

    def __init__(self) -> None:
        self.items: List[Tuple] = []
        self.children: Dict[int, "_QuadNode"] = {}


class MxCifQuadtree:
    """An MX-CIF quadtree over a fixed data space."""

    def __init__(self, space: Space, max_level: int = DEFAULT_MAX_LEVEL):
        self.space = space
        self.max_level = max_level
        self.root = _QuadNode()
        self.size = 0

    @classmethod
    def build(
        cls,
        kpes: Sequence[Tuple],
        space: Optional[Space] = None,
        max_level: int = DEFAULT_MAX_LEVEL,
    ) -> "MxCifQuadtree":
        tree = cls(space if space is not None else Space.of(kpes), max_level)
        for kpe in kpes:
            tree.insert(kpe)
        return tree

    def insert(self, kpe: Tuple) -> None:
        """Store *kpe* at the deepest node whose cell covers it."""
        level = mxcif_level(self.space, kpe, self.max_level)
        ix, iy = cell_of_rect(self.space, kpe, level)
        node = self.root
        for depth in range(level - 1, -1, -1):
            quadrant = (((iy >> depth) & 1) << 1) | ((ix >> depth) & 1)
            child = node.children.get(quadrant)
            if child is None:
                child = _QuadNode()
                node.children[quadrant] = child
            node = child
        node.items.append(kpe)
        self.size += 1

    def depth(self) -> int:
        """Deepest materialised level (diagnostics and tests)."""
        best = 0
        stack: List[Tuple[_QuadNode, int]] = [(self.root, 0)]
        while stack:
            node, level = stack.pop()
            if node.items and level > best:
                best = level
            for child in node.children.values():
                stack.append((child, level + 1))
        return best

    def iter_items(self) -> Iterator[Tuple]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield from node.items
            stack.extend(node.children.values())


def quadtree_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    counters: Optional[CpuCounters] = None,
    max_level: int = DEFAULT_MAX_LEVEL,
) -> List[Tuple[int, int]]:
    """Join two relations via in-memory MX-CIF quadtrees (Section 4.1).

    Builds one tree per input over their joint space, then co-traverses:
    at each cell, the left tree's resident rectangles are tested against
    the right tree's residents of the same cell and of every ancestor
    cell, and vice versa.  Produces no duplicates (no replication).
    """
    if counters is None:
        counters = CpuCounters()
    if not left or not right:
        return []
    space = Space.of(left, right)
    tree_left = MxCifQuadtree.build(left, space, max_level)
    tree_right = MxCifQuadtree.build(right, space, max_level)
    pairs: List[Tuple[int, int]] = []
    tests = 0

    def join_lists(items_left: List[Tuple], items_right: List[Tuple]) -> None:
        nonlocal tests
        for r in items_left:
            for s in items_right:
                tests += 1
                if (
                    r[1] <= s[3]
                    and s[1] <= r[3]
                    and r[2] <= s[4]
                    and s[2] <= r[4]
                ):
                    pairs.append((r[0], s[0]))

    # Path stacks of item lists from each tree (ancestors of current cell).
    path_left: List[List[Tuple]] = []
    path_right: List[List[Tuple]] = []

    def visit(node_left: Optional[_QuadNode], node_right: Optional[_QuadNode]) -> None:
        items_left = node_left.items if node_left is not None else []
        items_right = node_right.items if node_right is not None else []
        if items_left:
            # Left residents against right residents of this cell and of
            # every ancestor (the paper: N_R against the path to N_S,
            # including N_S).
            join_lists(items_left, items_right)
            for ancestor_items in path_right:
                join_lists(items_left, ancestor_items)
        if items_right:
            # Right residents against left *ancestors* only (excluding the
            # co-located node, which the previous block already paired).
            for ancestor_items in path_left:
                join_lists(ancestor_items, items_right)
        quadrants = set()
        if node_left is not None:
            quadrants.update(node_left.children)
        if node_right is not None:
            quadrants.update(node_right.children)
        if not quadrants:
            return
        path_left.append(items_left)
        path_right.append(items_right)
        for quadrant in sorted(quadrants):
            visit(
                node_left.children.get(quadrant) if node_left is not None else None,
                node_right.children.get(quadrant) if node_right is not None else None,
            )
        path_left.pop()
        path_right.pop()

    visit(tree_left.root, tree_right.root)
    counters.intersection_tests += tests
    return pairs
