"""Size Separation Spatial Join (S3J) and the paper's replication variant."""

from repro.s3j.join import S3J, s3j_join
from repro.s3j.levelfile import (
    build_level_files,
    record_bytes_for_level,
    sort_level_files,
)
from repro.s3j.levels import assign_original, assign_replicated, level_histogram
from repro.s3j.quadtree import MxCifQuadtree, quadtree_join
from repro.s3j.scan import CellPartition, ScanStats, partition_stream, scan_pairs

__all__ = [
    "CellPartition",
    "MxCifQuadtree",
    "S3J",
    "ScanStats",
    "assign_original",
    "assign_replicated",
    "build_level_files",
    "level_histogram",
    "partition_stream",
    "quadtree_join",
    "record_bytes_for_level",
    "s3j_join",
    "scan_pairs",
    "sort_level_files",
]
