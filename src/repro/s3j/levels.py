"""Level assignment for S3J: original MX-CIF vs. size separation.

The **original** assignment [KS 97] puts each rectangle into the single
deepest quadtree cell covering it.  Its weakness (Section 4.2, last
paragraph): a tiny rectangle straddling a high-level cell boundary lands in
a low level-file, where it is tested against all large rectangles of the
other relation although it can contribute almost no results.

The paper's **size-separation** assignment (Section 4.3) keys the level on
the rectangle's edge lengths alone —

    ``level(r) = max{k | xh-xl <= 2^-k  and  yh-yl <= 2^-k}``

— and *replicates* the rectangle into every cell of that level it overlaps,
which is at most four cells.  Duplicate results caused by the replicas are
suppressed online by the hierarchical Reference Point Method in the scan.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.sfc.locational import (
    cell_of_rect,
    cells_for_rect,
    mxcif_level,
    size_level,
)

#: An assignment entry: (level, code, kpe).
Entry = Tuple[int, int, Tuple]


def assign_original(
    kpes: Sequence[Tuple],
    space: Space,
    max_level: int,
    encoder: Callable[[int, int, int], int],
    counters: CpuCounters,
) -> Iterator[Entry]:
    """Yield one entry per KPE at its MX-CIF level (no redundancy)."""
    codes = 0
    for kpe in kpes:
        level = mxcif_level(space, kpe, max_level)
        if level == 0:
            # Level 0 has a single cell; the paper notes its locational
            # code never needs computing.
            yield (0, 0, kpe)
            continue
        ix, iy = cell_of_rect(space, kpe, level)
        codes += 1
        yield (level, encoder(ix, iy, level), kpe)
    counters.code_computations += codes


def assign_replicated(
    kpes: Sequence[Tuple],
    space: Space,
    max_level: int,
    encoder: Callable[[int, int, int], int],
    counters: CpuCounters,
) -> Iterator[Entry]:
    """Yield up to four entries per KPE at its size-separation level."""
    codes = 0
    for kpe in kpes:
        level = size_level(space, kpe, max_level)
        if level == 0:
            yield (0, 0, kpe)
            continue
        for ix, iy in cells_for_rect(space, kpe, level):
            codes += 1
            yield (level, encoder(ix, iy, level), kpe)
    counters.code_computations += codes


def assign_hybrid(
    kpes: Sequence[Tuple],
    space: Space,
    max_level: int,
    encoder: Callable[[int, int, int], int],
    counters: CpuCounters,
    gap: int = 2,
) -> Iterator[Entry]:
    """A replication strategy between the two extremes (Section 4.3 notes
    several were evaluated; this is the natural "replicate only when it
    pays" member of the family).

    A rectangle keeps its original MX-CIF placement unless that placement
    is more than *gap* levels shallower than its size level — i.e. unless
    boundary straddling (not size) is what pushed it down.  Only those
    boundary victims are replicated, so the overall replication rate is
    much lower than full size separation while the pathological level-0
    population is still removed.
    """
    codes = 0
    for kpe in kpes:
        natural = mxcif_level(space, kpe, max_level)
        by_size = size_level(space, kpe, max_level)
        if by_size - natural <= gap:
            if natural == 0:
                yield (0, 0, kpe)
                continue
            ix, iy = cell_of_rect(space, kpe, natural)
            codes += 1
            yield (natural, encoder(ix, iy, natural), kpe)
        else:
            for ix, iy in cells_for_rect(space, kpe, by_size):
                codes += 1
                yield (by_size, encoder(ix, iy, by_size), kpe)
    counters.code_computations += codes


#: Strategy registry for :class:`repro.s3j.join.S3J`.
ASSIGNMENT_STRATEGIES = {
    "original": assign_original,
    "size": assign_replicated,
    "hybrid": assign_hybrid,
}


def level_histogram(entries: Sequence[Entry], max_level: int) -> List[int]:
    """Entries per level — the distribution Section 4.2's critique is
    about (diagnostics, tests and the ablation bench use this)."""
    histogram = [0] * (max_level + 1)
    for level, _code, _kpe in entries:
        histogram[level] += 1
    return histogram
