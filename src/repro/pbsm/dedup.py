"""Original PBSM's duplicate removal: sort the candidate pairs.

Section 3.1 / Figure 1, phase 4: because KPEs are replicated across
partitions, the join phase can report the same result pair several times;
the original algorithm materialises all candidate pairs, sorts them
(externally if necessary) and drops adjacent duplicates.  The I/O of this
phase — writing the temporary pair file, sorting it, re-reading it — is the
overhead the Reference Point Method eliminates (Figure 3a's upper boxes).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.stats import CpuCounters
from repro.io.extsort import external_sort, sorted_dedup
from repro.io.pagefile import PageFile


def sort_based_dedup(
    candidate_file: PageFile,
    memory_bytes: int,
    counters: CpuCounters,
) -> Tuple[List[Tuple[int, int]], int]:
    """Sort a pair file and drop duplicates.

    Returns ``(unique_pairs, duplicates_removed)``.  All I/O is charged to
    whatever disk phase the caller has made current.
    """
    total = candidate_file.n_records
    if total == 0:
        return [], 0
    sorted_file = external_sort(
        candidate_file,
        key=_identity,
        memory_bytes=memory_bytes,
        counters=counters,
        output_name=f"{candidate_file.name}.sorted",
    )
    unique: List[Tuple[int, int]] = []
    n_unique = sorted_dedup(sorted_file, counters, sink=unique.append)
    return unique, total - n_unique


def _identity(record: Tuple) -> Tuple:
    return record
