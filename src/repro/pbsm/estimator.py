"""Partition-count estimation: the paper's formula (1) plus the safety
factor ``t``.

Original PBSM computes ``P = ceil((|R| + |S|) * sizeof(KPE) / M)``.
Section 3.2.3 observes that when the un-ceiled value is just below an
integer (e.g. 1.99), pairs of partitions are very unlikely to fit in
memory and repartitioning is triggered; multiplying by ``t > 1`` before
the ceiling avoids that cliff.
"""

from __future__ import annotations

import math


def estimate_partitions(
    n_left: int,
    n_right: int,
    kpe_bytes: int,
    memory_bytes: int,
    t_factor: float = 1.2,
) -> int:
    """Number of partitions per relation (formula (1), scaled by ``t``).

    ``t_factor=1.0`` reproduces the original formula exactly; the paper's
    improvement uses a value slightly above one.
    """
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    if t_factor <= 0:
        raise ValueError("t_factor must be positive")
    total_bytes = (n_left + n_right) * kpe_bytes
    raw = t_factor * total_bytes / memory_bytes
    return max(1, math.ceil(raw))
