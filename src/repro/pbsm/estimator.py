"""Partition-count estimation: the paper's formula (1) plus the safety
factor ``t``.

Original PBSM computes ``P = ceil((|R| + |S|) * sizeof(KPE) / M)``.
Section 3.2.3 observes that when the un-ceiled value is just below an
integer (e.g. 1.99), pairs of partitions are very unlikely to fit in
memory and repartitioning is triggered; multiplying by ``t > 1`` before
the ceiling avoids that cliff.
"""

from __future__ import annotations

import math
import warnings


def estimate_partitions(
    n_left: int,
    n_right: int,
    kpe_bytes: int,
    memory_bytes: int,
    t_factor: float = 1.2,
) -> int:
    """Number of partitions per relation (formula (1), scaled by ``t``).

    ``t_factor=1.0`` reproduces the original formula exactly; the paper's
    improvement uses a value slightly above one.

    The estimate is clamped to the total input cardinality: when the
    memory budget is smaller than ``t`` KPEs, formula (1) asks for more
    partitions than there are records, which only manufactures empty
    partition files (each still paying grid and I/O overhead).  A clamp
    to one-record partitions is the finest split that can ever help;
    memory pressure beyond that is repartitioning's problem.
    """
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    if t_factor <= 0:
        raise ValueError("t_factor must be positive")
    total_records = n_left + n_right
    total_bytes = total_records * kpe_bytes
    raw = t_factor * total_bytes / memory_bytes
    estimate = max(1, math.ceil(raw))
    cap = max(1, total_records)
    if estimate > cap:
        warnings.warn(
            f"partition estimate {estimate} exceeds the input cardinality "
            f"{total_records} (memory_bytes={memory_bytes} is below one KPE "
            f"per partition); clamping to {cap}",
            RuntimeWarning,
            stacklevel=2,
        )
        return cap
    return estimate
