"""The Partition Based Spatial-Merge Join driver.

Implements both variants the paper compares:

* ``dedup="sort"`` — original PBSM (Patel & DeWitt): the join phase
  materialises every candidate pair; a final phase sorts the pair file and
  removes duplicates.  No result can be emitted before the sort completes
  (the pipelining problem of Section 3.1).
* ``dedup="rpm"`` — the paper's improvement: each detected pair is kept iff
  its reference point lies in the region of the partition being processed
  (at most six extra comparisons), so results stream out of the join phase
  and no final phase exists.
* ``dedup="twolayer"`` — duplicate *avoidance* (Tsitsigkos et al.'s
  two-layer corner classes, :mod:`repro.pbsm.twolayer`): per tile, both
  inputs are classified by where their low corners fall and only the nine
  cross-class mini-joins run, so every result is produced exactly once by
  construction — zero reference-point tests, zero sorting, and results
  stream like RPM's.

The internal algorithm (list sweep, trie sweep, ...) is pluggable, which is
how Figures 4/5/12 are driven.  Execution is exposed as a generator
(:meth:`PBSM.iter_pairs`) so the operator layer can demonstrate the
pipelining difference; :meth:`PBSM.run` simply drains it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.phases import (
    PHASE_DEDUP,
    PHASE_JOIN,
    PHASE_PARTITION,
    PHASE_REPARTITION,
)
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.kernels.backend import active_backend, numpy_enabled
from repro.kernels.rpm import rpm_join_task
from repro.kernels.twolayer import twolayer_join_task
from repro.obs.trace import KIND_RUN, NULL_TRACER
from repro.pbsm.dedup import sort_based_dedup
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation
from repro.pbsm.repartition import (
    choose_split,
    compose_region_test,
    split_partition,
)
from repro.pbsm.twolayer import twolayer_partition_join

DEDUP_MODES = ("rpm", "twolayer", "sort", "none")


class PBSM:
    """Partition Based Spatial-Merge Join.

    Parameters
    ----------
    memory_bytes:
        The main-memory budget M of formula (1); partition pairs must fit
        into it.
    internal:
        Registry name of the in-memory join algorithm ("sweep_list",
        "sweep_trie", "nested_loops", "sweep_tree").
    dedup:
        "rpm" (online reference-point method), "twolayer" (corner-class
        duplicate avoidance — no per-pair work at all), "sort" (original
        final sorting phase), or "none" (emit duplicates — for analysis
        only).
    t_factor:
        Safety factor on formula (1) (Section 3.2.3); 1.0 = original.
    tiles_per_partition / tile_mapping:
        Grid shape: NT ~= P * tiles_per_partition tiles, assigned to
        partitions by "hash" (default, as suggested by Patel & DeWitt) or
        "round_robin".
    """

    def __init__(
        self,
        memory_bytes: int,
        *,
        internal: str = "sweep_list",
        dedup: str = "rpm",
        t_factor: float = 1.2,
        tiles_per_partition: int = 4,
        tile_mapping: str = "hash",
        cost_model: Optional[CostModel] = None,
        max_repartition_depth: int = 8,
        tracer: Optional[Any] = None,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if dedup not in DEDUP_MODES:
            raise ValueError(f"dedup must be one of {DEDUP_MODES}, got {dedup!r}")
        self.memory_bytes = memory_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.dedup = dedup
        self.t_factor = t_factor
        self.tiles_per_partition = tiles_per_partition
        self.tile_mapping = tile_mapping
        self.cost_model = cost_model or CostModel()
        self.max_repartition_depth = max_repartition_depth

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        """Execute the join and return all result pairs plus statistics."""
        stats = self._new_stats(left, right)
        pairs = list(self._generate(left, right, stats))
        self._finalize_stats(stats)
        stats.n_results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)

    def iter_pairs(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        stats: Optional[JoinStats] = None,
    ) -> Iterator[Tuple[int, int]]:
        """Yield result pairs as the join produces them.

        With ``dedup="rpm"`` pairs stream out during the join phase; with
        ``dedup="sort"`` nothing is yielded until the final sorting phase
        has completed — the behaviour the paper's pipelining argument is
        about.  ``stats`` (if given) is populated when the iterator is
        exhausted.
        """
        own_stats = stats if stats is not None else self._new_stats(left, right)
        yield from self._generate(left, right, own_stats)
        self._finalize_stats(own_stats)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _new_stats(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinStats:
        dedup_tag = {
            "rpm": "RPM",
            "twolayer": "2L",
            "sort": "PD",
            "none": "nodedup",
        }[self.dedup]
        backend = active_backend() if self.internal_name == "sweep_numpy" else ""
        return JoinStats(
            algorithm=f"PBSM({self.internal_name},{dedup_tag})",
            backend=backend,
            n_left=len(left),
            n_right=len(right),
        )

    def _generate(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        stats: JoinStats,
    ) -> Iterator[Tuple[int, int]]:
        disk = SimulatedDisk(self.cost_model)
        cpu = {
            PHASE_PARTITION: CpuCounters(),
            PHASE_REPARTITION: CpuCounters(),
            PHASE_JOIN: CpuCounters(),
            PHASE_DEDUP: CpuCounters(),
        }
        self._disk = disk
        self._cpu = cpu
        self._stats = stats
        if not left or not right:
            return

        kpe_bytes = self.cost_model.kpe_bytes
        space = Space.of(left, right)
        n_partitions = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        grid = TileGrid.for_partitions(
            space, n_partitions, self.tiles_per_partition, self.tile_mapping
        )
        stats.n_partitions = n_partitions

        tracer = self.tracer
        with tracer.span(
            "pbsm",
            kind=KIND_RUN,
            internal=self.internal_name,
            dedup=self.dedup,
            backend=stats.backend or None,
        ):
            # --- phase 1: partitioning -----------------------------------
            with tracer.span(
                PHASE_PARTITION, cpu=cpu[PHASE_PARTITION], disk=disk
            ) as sp:
                with disk.phase(PHASE_PARTITION):
                    left_files, n_left_written = partition_relation(
                        left, grid, disk, kpe_bytes, cpu[PHASE_PARTITION], "R"
                    )
                    right_files, n_right_written = partition_relation(
                        right, grid, disk, kpe_bytes, cpu[PHASE_PARTITION], "S"
                    )
                stats.records_partitioned = n_left_written + n_right_written
                stats.replicas_created = (
                    stats.records_partitioned - len(left) - len(right)
                )
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            # --- candidate sink -------------------------------------------
            candidate_file: Optional[PageFile] = None
            candidate_writer = None
            if self.dedup == "sort":
                candidate_file = PageFile(
                    disk, self.cost_model.result_bytes, "cands"
                )
                candidate_writer = candidate_file.writer(buffer_pages=1)

            # --- phases 2+3: (re)partition & join --------------------------
            with tracer.span(PHASE_JOIN, cpu=cpu[PHASE_JOIN], disk=disk) as sp:
                for pid in range(n_partitions):
                    region = _top_region_test(grid, pid)
                    yield from self._join_pair(
                        left_files[pid],
                        right_files[pid],
                        region,
                        space,
                        candidate_writer,
                        depth=0,
                    )
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

            # --- phase 4: sort-based duplicate removal ---------------------
            if self.dedup == "sort":
                with tracer.span(
                    PHASE_DEDUP, cpu=cpu[PHASE_DEDUP], disk=disk
                ) as sp:
                    with disk.phase(PHASE_DEDUP):
                        candidate_writer.close()
                        unique, removed = sort_based_dedup(
                            candidate_file, self.memory_bytes, cpu[PHASE_DEDUP]
                        )
                    stats.duplicates_sorted_out = removed
                stats.wall_seconds_by_phase[PHASE_DEDUP] = sp.wall_seconds
                yield from unique

    def _join_pair(
        self,
        file_left: PageFile,
        file_right: PageFile,
        region: Callable[[float, float], bool],
        space: Space,
        candidate_writer: Any,
        depth: int,
    ) -> Iterator[Tuple[int, int]]:
        """Join one pair of partitions, repartitioning if necessary."""
        stats = self._stats
        if file_left.n_records == 0 or file_right.n_records == 0:
            # An empty side produces nothing.  This must short-circuit
            # *before* the memory check: otherwise an over-budget partner
            # would be repartitioned once per empty sub-partition,
            # exploding the recursion on unsplittable (e.g. all-identical)
            # inputs.
            return
        pair_bytes = file_left.n_bytes + file_right.n_bytes
        fits = pair_bytes <= self.memory_bytes
        splittable = max(file_left.n_records, file_right.n_records) > 2
        if not fits and splittable and depth < self.max_repartition_depth:
            stats.repartition_events += 1
            yield from self._repartition(
                file_left, file_right, region, space, candidate_writer, depth
            )
            return
        if not fits:
            stats.memory_overruns += 1
        if pair_bytes > stats.peak_memory_bytes:
            stats.peak_memory_bytes = pair_bytes

        cpu = self._cpu[PHASE_JOIN]
        with self._disk.phase(PHASE_JOIN):
            records_left = file_left.read_all()
            records_right = file_right.read_all()

        grid = getattr(region, "grid", None)
        if self.dedup == "twolayer" and grid is not None:
            # Pure avoidance: classify both sides over the partition's
            # tiles and run the cross-class mini-joins.  Nothing is
            # detected and then discarded, so there is no suppression to
            # count and no per-pair test to charge.
            if self.internal_name == "sweep_numpy" and numpy_enabled():
                pairs, _ = twolayer_join_task(
                    records_left, records_right, grid, region.pid, cpu
                )
            else:
                pairs = twolayer_partition_join(
                    records_left,
                    records_right,
                    grid,
                    region.pid,
                    self.internal,
                    cpu,
                )
            yield from pairs
            return
        if (
            self.dedup == "rpm"
            and self.internal_name == "sweep_numpy"
            and grid is not None
            and numpy_enabled()
        ):
            # Fully columnar partition join: candidate generation, y-test
            # and RPM duplicate suppression all happen in batches.
            pairs, suppressed = rpm_join_task(
                records_left, records_right, grid, region.pid, cpu
            )
            stats.duplicates_suppressed += suppressed
            yield from pairs
            return

        results: List[Tuple[int, int]] = []
        if self.dedup == "rpm":
            refpoint_tests = 0
            suppressed = 0

            def emit(r: Tuple, s: Tuple) -> None:
                nonlocal refpoint_tests, suppressed
                refpoint_tests += 1
                rx = r[1]
                sx = s[1]
                ry = r[4]
                sy = s[4]
                x = rx if rx >= sx else sx
                y = ry if ry <= sy else sy
                if region(x, y):
                    results.append((r[0], s[0]))
                else:
                    suppressed += 1

        elif self.dedup == "twolayer":
            # Only reached under a repartitioned (composed) region, which
            # has no grid attribute, so per-tile avoidance cannot run.
            # The equivalent exactly-once rule — keep a pair iff the
            # intersection's *bottom-left* corner lies in this region —
            # applies instead, charged honestly as reference-point tests.
            # Top-level partitions (the no-repartition case the paper
            # benchmarks) never take this path.
            refpoint_tests = 0
            suppressed = 0

            def emit(r: Tuple, s: Tuple) -> None:
                nonlocal refpoint_tests, suppressed
                refpoint_tests += 1
                rx = r[1]
                sx = s[1]
                ry = r[2]
                sy = s[2]
                x = rx if rx >= sx else sx
                y = ry if ry >= sy else sy
                if region(x, y):
                    results.append((r[0], s[0]))
                else:
                    suppressed += 1

        elif self.dedup == "sort":

            def emit(r: Tuple, s: Tuple) -> None:
                candidate_writer.write((r[0], s[0]))

        else:  # "none": report everything, duplicates included

            def emit(r: Tuple, s: Tuple) -> None:
                results.append((r[0], s[0]))

        if self.dedup == "sort":
            # The candidate-pair writes emitted during the in-memory join
            # are part of the duplicate-removal overhead (Figure 3a).
            with self._disk.phase(PHASE_DEDUP):
                self.internal(records_left, records_right, emit, cpu)
        else:
            self.internal(records_left, records_right, emit, cpu)
        if self.dedup in ("rpm", "twolayer"):
            cpu.refpoint_tests += refpoint_tests
            stats.duplicates_suppressed += suppressed
        yield from results

    def _repartition(
        self,
        file_left: PageFile,
        file_right: PageFile,
        region: Callable[[float, float], bool],
        space: Space,
        candidate_writer: Any,
        depth: int,
    ) -> Iterator[Tuple[int, int]]:
        """Split the larger partition and recurse on each sub-pair."""
        left_is_larger = file_left.n_bytes >= file_right.n_bytes
        larger = file_left if left_is_larger else file_right
        smaller = file_right if left_is_larger else file_left
        k = choose_split(
            larger.n_bytes, smaller.n_bytes, self.memory_bytes, self.t_factor
        )
        cpu = self._cpu[PHASE_REPARTITION]
        with self._disk.phase(PHASE_REPARTITION):
            subfiles, subgrid = split_partition(
                larger,
                k,
                space,
                self._disk,
                cpu,
                self.tiles_per_partition,
                self.tile_mapping,
                name=f"{larger.name}.d{depth}",
            )
        if max(f.n_records for f in subfiles) >= larger.n_records:
            # No progress: every record overlaps (nearly) every tile, so a
            # sub-partition is as large as its parent — e.g. all-identical
            # rectangles.  Recursing would multiply work without shrinking
            # anything; join the original pair directly instead.
            yield from self._join_pair(
                file_left,
                file_right,
                region,
                space,
                candidate_writer,
                self.max_repartition_depth,
            )
            return
        for sub_pid, subfile in enumerate(subfiles):
            sub_region = compose_region_test(region, subgrid, sub_pid)
            if left_is_larger:
                yield from self._join_pair(
                    subfile, smaller, sub_region, space, candidate_writer, depth + 1
                )
            else:
                yield from self._join_pair(
                    smaller, subfile, sub_region, space, candidate_writer, depth + 1
                )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _finalize_stats(self, stats: JoinStats) -> None:
        disk = self._disk
        cpu = self._cpu
        cost = self.cost_model
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.cpu_by_phase = {
            phase: counters.as_dict() for phase, counters in cpu.items()
        }
        stats.sim_io_seconds = cost.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = sum(
            cost.cpu_seconds(counters) for counters in cpu.values()
        )
        by_phase = {}
        units = stats.io_units_by_phase
        for phase, counters in cpu.items():
            by_phase[phase] = cost.cpu_seconds(counters) + cost.io_seconds(
                units.get(phase, 0.0)
            )
        stats.sim_seconds_by_phase = by_phase


def _top_region_test(grid: TileGrid, pid: int) -> Callable[[float, float], bool]:
    """Region predicate of a top-level partition (the union of its tiles).

    The grid and partition id are attached as attributes: a top-level
    region is pure tile arithmetic, which is what lets the columnar RPM
    kernel test whole candidate batches at once.  Composed repartition
    regions carry no such attributes and always take the scalar path.
    """

    def owns(x: float, y: float) -> bool:
        return grid.partition_of_point(x, y) == pid

    owns.grid = grid
    owns.pid = pid
    return owns


def pbsm_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    **kwargs: Any,
) -> JoinResult:
    """Convenience one-call PBSM join (see :class:`PBSM` for options)."""
    return PBSM(memory_bytes, **kwargs).run(left, right)
