"""Task scheduling policies for parallel PBSM.

Two policies are modelled here:

* **Static LPT** (``lpt_schedule`` / ``lpt_assign``): tasks are packed
  onto workers up front, longest-processing-time first.  LPT is within
  4/3 of the optimal makespan *when the costs are known exactly* — on
  skewed inputs where estimates are wrong, a single mega-task strands
  every other worker.
* **Work stealing** (``steal_schedule``): tasks sit in one shared queue,
  sorted largest-estimate first, and each worker pulls the next task the
  moment it goes idle.  This is classic greedy list scheduling — the
  makespan can never exceed static LPT's on the same costs, and when the
  estimates are wrong it degrades gracefully instead of stranding
  workers.

Both are deterministic and run in the simulator's cost currency, so the
planner and the ``simulated`` executor can compare policies without
spawning a single process.  ``count_steals`` reconstructs, post hoc, how
many tasks a real pool executed on a different worker than static LPT
would have chosen — the observable signature of stealing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

SCHEDULERS: Tuple[str, ...] = ("static", "stealing")


def lpt_schedule(task_costs: Sequence[float], workers: int) -> Tuple[float, List[float]]:
    """Longest-processing-time-first scheduling.

    Returns ``(makespan, per-worker loads)``.  LPT is within 4/3 of the
    optimal makespan — plenty for a speedup model.
    """
    loads = [0.0] * workers
    for cost in sorted(task_costs, reverse=True):
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += cost
    return (max(loads) if loads else 0.0), loads


def lpt_assign(task_costs: Sequence[float], workers: int) -> List[int]:
    """The worker slot LPT gives each task, in input order.

    Ties in cost are broken by input index (stable), and ties in load by
    the lowest slot — the same deterministic choices ``lpt_schedule``
    makes, so ``lpt_schedule(costs, w)[1]`` equals the per-slot sums of
    this assignment.
    """
    order = sorted(range(len(task_costs)), key=lambda i: (-task_costs[i], i))
    loads = [0.0] * workers
    slots = [0] * len(task_costs)
    for i in order:
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += task_costs[i]
        slots[i] = idx
    return slots


def steal_schedule(
    actuals: Sequence[float],
    workers: int,
    estimates: Optional[Sequence[float]] = None,
) -> Tuple[float, List[float]]:
    """Event-driven greedy scheduling with a shared largest-first queue.

    Tasks are dispatched in descending *estimated* cost; each dispatch
    goes to the worker that frees up earliest and occupies it for the
    task's *actual* cost.  With ``estimates is None`` (or equal to
    ``actuals``) this reproduces ``lpt_schedule`` exactly; with
    mis-estimates it models what a real stealing pool does: the queue
    order is wrong but no worker ever idles while tasks remain.
    """
    if estimates is None:
        estimates = actuals
    if len(estimates) != len(actuals):
        raise ValueError("estimates and actuals must be the same length")
    order = sorted(range(len(actuals)), key=lambda i: (-estimates[i], i))
    loads = [0.0] * workers
    for i in order:
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += actuals[i]
    return (max(loads) if loads else 0.0), loads


def static_makespan(
    estimates: Sequence[float],
    actuals: Sequence[float],
    workers: int,
) -> float:
    """Makespan of static LPT packing on ``estimates``, paid in ``actuals``.

    This is the baseline a stealing scheduler is measured against: the
    assignment is frozen before execution, so estimate error lands
    entirely on the makespan.
    """
    if len(estimates) != len(actuals):
        raise ValueError("estimates and actuals must be the same length")
    slots = lpt_assign(estimates, workers)
    loads = [0.0] * workers
    for i, slot in enumerate(slots):
        loads[slot] += actuals[i]
    return max(loads) if loads else 0.0


def count_steals(
    unit_sizes: Sequence[float],
    executed_by: Sequence[str],
    workers: int,
) -> int:
    """How many units ran on a different worker than static LPT planned.

    ``executed_by`` carries one opaque worker label per unit (a pid or a
    thread name) in the same order as ``unit_sizes``.  Labels are bound
    to LPT slots greedily in first-appearance order — a label gets the
    slot LPT wanted for its first unit if that slot is still unclaimed,
    otherwise the lowest free slot — then every unit whose executing
    label is bound to a different slot than LPT assigned counts as
    stolen.
    """
    if len(unit_sizes) != len(executed_by):
        raise ValueError("unit_sizes and executed_by must be the same length")
    planned = lpt_assign(unit_sizes, workers)
    label_slot: Dict[str, int] = {}
    claimed: List[bool] = [False] * workers
    for i, label in enumerate(executed_by):
        if label in label_slot:
            continue
        want = planned[i]
        if not claimed[want]:
            label_slot[label] = want
            claimed[want] = True
            continue
        free = [s for s in range(workers) if not claimed[s]]
        slot = free[0] if free else want
        label_slot[label] = slot
        if free:
            claimed[slot] = True
    return sum(
        1 for i, label in enumerate(executed_by) if label_slot[label] != planned[i]
    )
