"""PBSM's partitioning phase: stream a relation into partition files.

Each partition gets a one-page output buffer (a real PBSM would hold P
page buffers in memory); a KPE is appended to every partition owning a tile
its rectangle overlaps.  Reading the input relation is free of charge (the
paper's model); the partition writes are charged per buffer flush.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.kernels.backend import numpy_enabled
from repro.pbsm.grid import TileGrid

#: Below this size the columnar tile-assignment's fixed overhead loses to
#: the scalar loop; the charged costs are identical either way.
_VECTOR_MIN_RECORDS = 64


def partition_relation(
    kpes: Sequence[Tuple],
    grid: TileGrid,
    disk: SimulatedDisk,
    record_bytes: int,
    counters: CpuCounters,
    name_prefix: str = "part",
    buffer_pages: int = 1,
) -> Tuple[List[PageFile], int]:
    """Distribute *kpes* over ``grid.n_partitions`` partition files.

    Returns ``(files, records_written)`` where ``records_written`` counts
    every inserted copy (so ``records_written - len(kpes)`` is the number
    of replicas, the redundancy PBSM trades for partition independence).
    """
    files = [
        PageFile(disk, record_bytes, f"{name_prefix}.{pid}")
        for pid in range(grid.n_partitions)
    ]
    writers = [f.writer(buffer_pages=buffer_pages) for f in files]
    written = 0
    structure_ops = 0
    if numpy_enabled() and len(kpes) >= _VECTOR_MIN_RECORDS:
        # Columnar fast path: destinations of the whole relation in a few
        # array operations.  Write order and charged structure ops are
        # identical to the scalar loop — wall clock is the only change.
        from repro.kernels.assign import partition_plan

        for kpe, dest in zip(kpes, partition_plan(kpes, grid)):
            if type(dest) is int:
                writers[dest].write(kpe)
                structure_ops += 2
                written += 1
            else:
                structure_ops += len(dest) + 1
                for pid in dest:
                    writers[pid].write(kpe)
                written += len(dest)
    else:
        partitions_for_rect = grid.partitions_for_rect
        for kpe in kpes:
            pids = partitions_for_rect(kpe)
            structure_ops += len(pids) + 1
            for pid in pids:
                writers[pid].write(kpe)
            written += len(pids)
    for writer in writers:
        writer.close()
    counters.structure_ops += structure_ops
    return files, written
