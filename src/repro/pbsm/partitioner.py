"""PBSM's partitioning phase: stream a relation into partition files.

Each partition gets a one-page output buffer (a real PBSM would hold P
page buffers in memory); a KPE is appended to every partition owning a tile
its rectangle overlaps.  Reading the input relation is free of charge (the
paper's model); the partition writes are charged per buffer flush.

``emit="ids"`` writes each record's *position* in the input sequence
instead of the record tuple itself — the shared-memory executor's
partitioning mode.  The files, the flush pattern, the charged structure
operations and the simulated record size are identical either way (the
cost model charges ``record_bytes`` per record regardless of what Python
object stands in for it), so the two modes are indistinguishable to the
simulated-cost accounting.  Reading id-emitting files back per partition
yields exactly the CSR form (offsets + record ids) the zero-copy workers
slice; :func:`partition_csr` performs that concatenation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.kernels.backend import numpy_enabled
from repro.pbsm.grid import TileGrid

#: Below this size the columnar tile-assignment's fixed overhead loses to
#: the scalar loop; the charged costs are identical either way.
_VECTOR_MIN_RECORDS = 64

#: What a partition file may hold: the record tuples themselves, or the
#: records' integer positions in the input sequence (CSR ids).
EMIT_MODES = ("records", "ids")


def partition_relation(
    kpes: Sequence[Tuple],
    grid: TileGrid,
    disk: SimulatedDisk,
    record_bytes: int,
    counters: CpuCounters,
    name_prefix: str = "part",
    buffer_pages: int = 1,
    emit: str = "records",
) -> Tuple[List[PageFile], int]:
    """Distribute *kpes* over ``grid.n_partitions`` partition files.

    Returns ``(files, records_written)`` where ``records_written`` counts
    every inserted copy (so ``records_written - len(kpes)`` is the number
    of replicas, the redundancy PBSM trades for partition independence).
    With ``emit="ids"`` each file holds input positions instead of record
    tuples — same write order, same charged costs.
    """
    if emit not in EMIT_MODES:
        raise ValueError(f"emit must be one of {EMIT_MODES}, got {emit!r}")
    as_ids = emit == "ids"
    files = [
        PageFile(disk, record_bytes, f"{name_prefix}.{pid}")
        for pid in range(grid.n_partitions)
    ]
    writers = [f.writer(buffer_pages=buffer_pages) for f in files]
    written = 0
    structure_ops = 0
    if numpy_enabled() and len(kpes) >= _VECTOR_MIN_RECORDS:
        # Columnar fast path: destinations of the whole relation in a few
        # array operations.  Write order and charged structure ops are
        # identical to the scalar loop — wall clock is the only change.
        from repro.kernels.assign import partition_plan

        for i, (kpe, dest) in enumerate(zip(kpes, partition_plan(kpes, grid))):
            item = i if as_ids else kpe
            if type(dest) is int:
                writers[dest].write(item)
                structure_ops += 2
                written += 1
            else:
                structure_ops += len(dest) + 1
                for pid in dest:
                    writers[pid].write(item)
                written += len(dest)
    else:
        partitions_for_rect = grid.partitions_for_rect
        for i, kpe in enumerate(kpes):
            item = i if as_ids else kpe
            pids = partitions_for_rect(kpe)
            structure_ops += len(pids) + 1
            for pid in pids:
                writers[pid].write(item)
            written += len(pids)
    for writer in writers:
        writer.close()
    counters.structure_ops += structure_ops
    return files, written


def partition_csr(files: Sequence[PageFile]) -> Tuple[List[int], List[int]]:
    """Concatenate id-emitting partition files into CSR index arrays.

    Returns ``(offsets, ids)``: partition ``pid``'s record ids are
    ``ids[offsets[pid]:offsets[pid + 1]]``, in file write order.  Reads
    are charged through each file's own disk, exactly like
    ``read_all()`` — callers that need per-partition I/O attribution
    (the parallel executor) read the files themselves instead.
    """
    offsets = [0]
    ids: List[int] = []
    for file in files:
        ids.extend(file.read_all())
        offsets.append(len(ids))
    return offsets, ids
