"""PBSM's repartitioning phase (Section 3.2.3).

The original paper left repartitioning untreated; Dittrich & Seeger's
strategy: when a pair of partitions does not fit in main memory,
re-partition the *larger* one with a finer grid and try each sub-partition
against the other side; recurse until every pair fits.  Because the other
side is joined against every sub-partition, replication across
sub-partitions introduces more duplicates — which the composed
Reference-Point region test (parent region AND sub-region) suppresses.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation

#: Upper bound on the fan-out of one repartitioning step.
MAX_SPLIT = 64


def choose_split(
    larger_bytes: int, smaller_bytes: int, memory_bytes: int, t_factor: float
) -> int:
    """How many sub-partitions to split the larger partition into.

    Aims for each (sub, other) pair to fit: the sub-partition may use the
    memory left over by the smaller side.  When the smaller side alone
    (nearly) exhausts memory, a modest split is used and recursion will
    split the other side next.
    """
    available = memory_bytes - smaller_bytes
    floor_avail = max(1, memory_bytes // 4)
    if available < floor_avail:
        available = floor_avail
    k = math.ceil(t_factor * larger_bytes / available)
    return max(2, min(MAX_SPLIT, k))


def split_partition(
    source: PageFile,
    k: int,
    space: Space,
    disk: SimulatedDisk,
    counters: CpuCounters,
    tiles_per_partition: int,
    mapping: str,
    name: str,
) -> Tuple[List[PageFile], TileGrid]:
    """Re-partition *source* into *k* sub-partitions with a finer grid.

    The source is read back with one contiguous request; the sub-partition
    writes go through one-page buffers like the initial partitioning.
    Returns the sub-partition files and the sub-grid (whose point map the
    composed RPM region test uses).
    """
    subgrid = TileGrid.for_partitions(space, k, tiles_per_partition, mapping)
    records = source.read_all()
    files, _ = partition_relation(
        records,
        subgrid,
        disk,
        source.record_bytes,
        counters,
        name_prefix=name,
    )
    # Note: the source file is deliberately NOT cleared.  A partition can be
    # the shared "smaller" side of several sub-pairs, and the recursion may
    # split it again for a later sub-pair; consuming it here would silently
    # drop those pairs.
    return files, subgrid


def compose_region_test(
    parent: Callable[[float, float], bool],
    subgrid: TileGrid,
    sub_pid: int,
) -> Callable[[float, float], bool]:
    """Region predicate for a sub-partition: inside parent AND sub-region."""

    def owns(x: float, y: float) -> bool:
        return parent(x, y) and subgrid.partition_of_point(x, y) == sub_pid

    return owns
