"""PBSM's equidistant tile grid and tile-to-partition mapping.

PBSM overlays the data space with ``NT >= P`` tiles and assigns each tile
to one of ``P`` partitions; a KPE is inserted into every partition owning a
tile its rectangle overlaps (hence the replication).  Assigning *multiple*
tiles to each partition — via a hash, as Patel & DeWitt suggest — spreads
skewed data nearly uniformly over the partitions.

The same grid arithmetic provides the Reference Point Method's region test:
``partition_of_point`` maps a point to the partition owning its (unique,
half-open) tile.
"""

from __future__ import annotations

import math
from typing import Iterator, Set, Tuple

from repro.core.space import Space

#: Supported tile-to-partition mappings.
TILE_MAPPINGS = ("hash", "round_robin")

#: Odd multipliers for the "hash" tile-to-partition mapping.  The scalar
#: arithmetic here and the vectorized replay in
#: :mod:`repro.kernels.rpm` must hash identically, so both import these.
TILE_HASH_X = 73856093
TILE_HASH_Y = 19349663


class TileGrid:
    """An ``nx x ny`` equidistant grid with a tile-to-partition mapping."""

    __slots__ = ("space", "nx", "ny", "n_partitions", "mapping")

    def __init__(
        self,
        space: Space,
        nx: int,
        ny: int,
        n_partitions: int,
        mapping: str = "hash",
    ) -> None:
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must have at least one tile, got {nx}x{ny}")
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        if nx * ny < n_partitions:
            raise ValueError(
                f"{nx * ny} tiles cannot cover {n_partitions} partitions (NT >= P)"
            )
        if mapping not in TILE_MAPPINGS:
            raise ValueError(
                f"unknown tile mapping {mapping!r}; choose from {TILE_MAPPINGS}"
            )
        self.space = space
        self.nx = nx
        self.ny = ny
        self.n_partitions = n_partitions
        self.mapping = mapping

    @classmethod
    def for_partitions(
        cls,
        space: Space,
        n_partitions: int,
        tiles_per_partition: int = 4,
        mapping: str = "hash",
    ) -> "TileGrid":
        """Build a near-square grid with ``NT ~= P * tiles_per_partition``."""
        nt = max(n_partitions, n_partitions * tiles_per_partition)
        side = max(1, math.ceil(math.sqrt(nt)))
        return cls(space, side, side, n_partitions, mapping)

    # ------------------------------------------------------------------
    # tile arithmetic
    # ------------------------------------------------------------------
    def tile_of_point(self, x: float, y: float) -> Tuple[int, int]:
        """The unique (half-open, border-clamped) tile owning a point."""
        tx = int(self.space.norm_x(x) * self.nx)
        ty = int(self.space.norm_y(y) * self.ny)
        if tx >= self.nx:
            tx = self.nx - 1
        elif tx < 0:
            tx = 0
        if ty >= self.ny:
            ty = self.ny - 1
        elif ty < 0:
            ty = 0
        return tx, ty

    def partition_of_tile(self, tx: int, ty: int) -> int:
        """The partition a tile is assigned to."""
        if self.mapping == "hash":
            # Two odd multipliers decorrelate rows and columns so clustered
            # tiles spread over all partitions (Patel & DeWitt's intent).
            return ((tx * TILE_HASH_X) ^ (ty * TILE_HASH_Y)) % self.n_partitions
        return (ty * self.nx + tx) % self.n_partitions

    def partition_of_point(self, x: float, y: float) -> int:
        """RPM's region test: the partition owning the point's tile."""
        tx, ty = self.tile_of_point(x, y)
        return self.partition_of_tile(tx, ty)

    def tiles_for_rect(self, kpe: Tuple) -> Iterator[Tuple[int, int]]:
        """All tiles a rectangle overlaps (consistent with the point map)."""
        txl, tyl = self.tile_of_point(kpe[1], kpe[2])
        txh, tyh = self.tile_of_point(kpe[3], kpe[4])
        for ty in range(tyl, tyh + 1):
            for tx in range(txl, txh + 1):
                yield tx, ty

    def partitions_for_rect(self, kpe: Tuple) -> Set[int]:
        """The distinct partitions a rectangle must be inserted into."""
        txl, tyl = self.tile_of_point(kpe[1], kpe[2])
        txh, tyh = self.tile_of_point(kpe[3], kpe[4])
        if txl == txh and tyl == tyh:
            return {self.partition_of_tile(txl, tyl)}
        partition_of_tile = self.partition_of_tile
        return {
            partition_of_tile(tx, ty)
            for ty in range(tyl, tyh + 1)
            for tx in range(txl, txh + 1)
        }

    def tile_count(self) -> int:
        return self.nx * self.ny
