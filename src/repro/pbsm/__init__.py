"""Partition Based Spatial-Merge Join (PBSM) and its paper improvements."""

from repro.pbsm.dedup import sort_based_dedup
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TILE_MAPPINGS, TileGrid
from repro.pbsm.join import DEDUP_MODES, PBSM, pbsm_join
from repro.pbsm.parallel import (
    EXECUTORS,
    PARALLEL_DEDUP_MODES,
    ParallelPBSM,
    reset_clamp_warnings,
)
from repro.pbsm.partitioner import partition_csr, partition_relation
from repro.pbsm.repartition import choose_split, compose_region_test, split_partition
from repro.pbsm.scheduler import (
    SCHEDULERS,
    count_steals,
    lpt_schedule,
    static_makespan,
    steal_schedule,
)
from repro.pbsm.twolayer import (
    CORNER_CLASSES,
    MINI_JOIN_SCHEDULE,
    bottom_left_refpoint,
    classify_tiles,
    corner_class,
    twolayer_partition_join,
)

__all__ = [
    "CORNER_CLASSES",
    "DEDUP_MODES",
    "EXECUTORS",
    "MINI_JOIN_SCHEDULE",
    "PARALLEL_DEDUP_MODES",
    "PBSM",
    "ParallelPBSM",
    "SCHEDULERS",
    "TILE_MAPPINGS",
    "TileGrid",
    "bottom_left_refpoint",
    "classify_tiles",
    "choose_split",
    "compose_region_test",
    "corner_class",
    "count_steals",
    "estimate_partitions",
    "lpt_schedule",
    "partition_csr",
    "partition_relation",
    "pbsm_join",
    "reset_clamp_warnings",
    "sort_based_dedup",
    "split_partition",
    "static_makespan",
    "steal_schedule",
    "twolayer_partition_join",
]
