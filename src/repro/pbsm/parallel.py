"""Parallel PBSM: simulated multi-worker model and real multiprocess fan-out.

The paper's related work points to parallel spatial join processing
[BKS 96, Pat 98]; PBSM parallelises naturally because partition pairs are
independent once partitioning has replicated the data.  This module offers
two executors over the same shared-nothing decomposition:

* ``executor="simulated"`` — the analytic model: the partitioning phase is
  a single sequential scan, after which the P partition-pair join tasks —
  each with its own measured I/O + CPU cost — are scheduled onto W
  workers with the LPT (longest processing time first) heuristic.  The
  simulated total runtime is ``partition_phase + makespan``, so the
  speedup curve flattens exactly where the paper's decomposition
  predicts: the sequential partitioning fraction and the largest single
  partition bound the achievable speedup (Amdahl).
* ``executor="process"`` — the same task decomposition, actually executed:
  the join tasks are grouped into LPT-balanced chunks and fanned out over
  a :class:`concurrent.futures.ProcessPoolExecutor`.  Every payload is
  picklable (plain tuples plus a grid spec); results are merged in
  partition order, so the output is byte-identical to the sequential
  execution.  With ``workers=1`` the fan-out degrades gracefully to an
  in-process loop (no pool is spawned).

Duplicate elimination is RPM, which is what makes the parallel version
correct without any cross-worker coordination: each result is owned by
exactly one partition, hence by exactly one worker.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.kernels.backend import active_backend
from repro.kernels.rpm import rpm_join_task
from repro.obs.trace import KIND_RUN, KIND_TASK, KIND_WORKER, NULL_TRACER
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation

EXECUTORS = ("simulated", "process")

#: Chunks submitted per worker in process mode; >1 smooths load imbalance
#: that the up-front LPT packing cannot foresee.
CHUNKS_PER_WORKER = 4

#: ``(pid, records_left, records_right)`` — one partition-pair join task.
JoinTask = Tuple[int, List[Tuple], List[Tuple]]

#: ``(pid, pairs, suppressed, counters_dict, wall_seconds)`` — one task's
#: outcome.  ``wall_seconds`` is measured inside the worker, so per-task
#: timing survives the process boundary instead of being dropped.
TaskOutcome = Tuple[int, List[Tuple[int, int]], int, Dict[str, int], float]

#: ``(worker_pid, chunk_wall_seconds, task_outcomes)`` — what one chunk of
#: tasks reports back from a pool worker.
ChunkOutcome = Tuple[int, float, List[TaskOutcome]]


def _grid_spec(grid: TileGrid) -> Tuple:
    """A picklable description from which a worker can rebuild the grid."""
    space = grid.space
    return (
        space.xl,
        space.yl,
        space.xh,
        space.yh,
        grid.nx,
        grid.ny,
        grid.n_partitions,
        grid.mapping,
    )


def _grid_from_spec(spec: Tuple) -> TileGrid:
    xl, yl, xh, yh, nx, ny, n_partitions, mapping = spec
    return TileGrid(Space(xl, yl, xh, yh), nx, ny, n_partitions, mapping)


def _run_join_task(internal_name: str, grid: TileGrid, task: JoinTask) -> TaskOutcome:
    """Execute one partition-pair join with RPM ownership by its pid."""
    pid, records_left, records_right = task
    started = time.perf_counter()
    counters = CpuCounters()
    if internal_name == "sweep_numpy":
        pairs, suppressed = rpm_join_task(
            records_left, records_right, grid, pid, counters
        )
        wall = time.perf_counter() - started
        return pid, pairs, suppressed, counters.as_dict(), wall

    pairs: List[Tuple[int, int]] = []
    suppressed = 0
    refpoint_tests = 0
    partition_of_point = grid.partition_of_point

    def emit(r: Tuple, s: Tuple) -> None:
        nonlocal suppressed, refpoint_tests
        refpoint_tests += 1
        rx = r[1]
        sx = s[1]
        ry = r[4]
        sy = s[4]
        x = rx if rx >= sx else sx
        y = ry if ry <= sy else sy
        if partition_of_point(x, y) == pid:
            pairs.append((r[0], s[0]))
        else:
            suppressed += 1

    internal_algorithm(internal_name)(records_left, records_right, emit, counters)
    counters.refpoint_tests += refpoint_tests
    wall = time.perf_counter() - started
    return pid, pairs, suppressed, counters.as_dict(), wall


def _run_chunk(payload: Tuple[str, Tuple, List[JoinTask]]) -> ChunkOutcome:
    """Worker entry point: run a chunk of join tasks, return their outcomes.

    Module-level (hence picklable) on purpose; receives only plain tuples
    so the payload crosses the process boundary without custom reducers.
    The worker measures its own chunk wall time (and each task measures
    its own), because the parent cannot observe time spent inside another
    process — it only sees the fan-out's makespan.
    """
    internal_name, grid_spec, tasks = payload
    grid = _grid_from_spec(grid_spec)
    started = time.perf_counter()
    outcomes = [_run_join_task(internal_name, grid, task) for task in tasks]
    return os.getpid(), time.perf_counter() - started, outcomes


def _chunk_tasks(
    tasks: List[JoinTask], n_chunks: int
) -> List[List[JoinTask]]:
    """Pack tasks into *n_chunks* LPT-balanced chunks (by joined size)."""
    sized = sorted(
        tasks, key=lambda t: (len(t[1]) + len(t[2]), t[0]), reverse=True
    )
    chunks: List[List[JoinTask]] = [[] for _ in range(n_chunks)]
    loads = [0] * n_chunks
    for task in sized:
        idx = min(range(n_chunks), key=loads.__getitem__)
        chunks[idx].append(task)
        loads[idx] += len(task[1]) + len(task[2])
    return [chunk for chunk in chunks if chunk]


class ParallelPBSM:
    """PBSM with the join phase spread over *workers* workers.

    ``executor="simulated"`` runs sequentially and *models* the parallel
    runtime; ``executor="process"`` actually fans the join tasks out over
    a process pool.  Both produce identical result pairs in identical
    order, and both report the same simulated costs — the process
    executor additionally delivers real wall-clock speedup on multicore
    hardware.
    """

    def __init__(
        self,
        memory_bytes: int,
        workers: int = 4,
        *,
        internal: str = "sweep_trie",
        executor: str = "simulated",
        t_factor: float = 1.2,
        tiles_per_partition: int = 4,
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.executor = executor
        self.t_factor = t_factor
        self.tiles_per_partition = tiles_per_partition
        self.cost_model = cost_model or CostModel()

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        stats = JoinStats(
            algorithm=f"ParallelPBSM({self.internal_name},W={self.workers})",
            backend=(
                active_backend() if self.internal_name == "sweep_numpy" else ""
            ),
            executor=self.executor,
            n_left=len(left),
            n_right=len(right),
        )
        pairs: List[Tuple[int, int]] = []
        if not left or not right:
            return JoinResult(pairs=pairs, stats=stats)
        cost = self.cost_model
        kpe_bytes = cost.kpe_bytes
        space = Space.of(left, right)
        n_partitions = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        # At least one task per worker, or parallelism is wasted.
        n_partitions = max(n_partitions, self.workers)
        grid = TileGrid.for_partitions(
            space, n_partitions, self.tiles_per_partition
        )
        stats.n_partitions = n_partitions

        tracer = self.tracer
        with tracer.span(
            "parallel_pbsm",
            kind=KIND_RUN,
            internal=self.internal_name,
            executor=self.executor,
            workers=self.workers,
            backend=stats.backend or None,
        ):
            # --- sequential partitioning phase -----------------------------
            disk = SimulatedDisk(cost)
            part_cpu = CpuCounters()
            with tracer.span(PHASE_PARTITION, cpu=part_cpu, disk=disk) as sp:
                with disk.phase(PHASE_PARTITION):
                    left_files, n_left_written = partition_relation(
                        left, grid, disk, kpe_bytes, part_cpu, "R"
                    )
                    right_files, n_right_written = partition_relation(
                        right, grid, disk, kpe_bytes, part_cpu, "S"
                    )
                stats.records_partitioned = n_left_written + n_right_written
                stats.replicas_created = (
                    stats.records_partitioned - len(left) - len(right)
                )
                partition_seconds = cost.io_seconds(
                    disk.total_units()
                ) + cost.cpu_seconds(part_cpu)
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            with tracer.span(PHASE_JOIN) as sp:
                # --- materialise the join tasks (reads are charged) --------
                tasks: List[JoinTask] = []
                task_io_units: Dict[int, float] = {}
                for pid in range(n_partitions):
                    file_left = left_files[pid]
                    file_right = right_files[pid]
                    if not file_left.n_records or not file_right.n_records:
                        continue
                    pair_bytes = file_left.n_bytes + file_right.n_bytes
                    if pair_bytes > self.memory_bytes:
                        stats.memory_overruns += 1
                    if pair_bytes > stats.peak_memory_bytes:
                        stats.peak_memory_bytes = pair_bytes
                    task_disk = SimulatedDisk(cost)
                    with task_disk.phase(PHASE_JOIN):
                        records_left = file_left.read_all()
                        records_right = file_right.read_all()
                    tasks.append((pid, records_left, records_right))
                    task_io_units[pid] = task_disk.total_units()

                # --- execute the tasks -------------------------------------
                outcomes = self._execute(tasks, grid, stats)

                # --- deterministic merge in partition order ----------------
                task_costs: List[float] = []
                join_cpu_total = CpuCounters()
                join_units_total = 0.0
                suppressed_total = 0
                for pid, task_pairs, suppressed, counter_dict, _wall in sorted(
                    outcomes
                ):
                    pairs.extend(task_pairs)
                    suppressed_total += suppressed
                    task_cpu = CpuCounters(**counter_dict)
                    units = task_io_units[pid]
                    task_costs.append(
                        cost.io_seconds(units) + cost.cpu_seconds(task_cpu)
                    )
                    join_cpu_total.add(task_cpu)
                    join_units_total += units
                stats.duplicates_suppressed = suppressed_total
                sp.add_counters(join_cpu_total.as_dict())
                sp.add_counters({"io_units": join_units_total})
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

            # --- LPT scheduling onto W workers --------------------------
            makespan, _loads = lpt_schedule(task_costs, self.workers)
            stats.n_results = len(pairs)
            stats.io_units_by_phase = {
                PHASE_PARTITION: disk.total_units(),
                PHASE_JOIN: join_units_total,
            }
            stats.cpu_by_phase = {
                PHASE_PARTITION: part_cpu.as_dict(),
                PHASE_JOIN: join_cpu_total.as_dict(),
            }
            # The *parallel* simulated runtime:
            stats.sim_io_seconds = cost.io_seconds(disk.total_units())
            stats.sim_cpu_seconds = makespan  # join tasks dominated by makespan
            stats.sim_seconds_by_phase = {
                PHASE_PARTITION: partition_seconds,
                PHASE_JOIN: makespan,
            }
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def _execute(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Run every join task under the configured executor.

        Besides the outcomes this fills in the parallel timing fields of
        *stats*: ``join_busy_seconds`` (sum of per-task wall seconds, as
        measured where the task ran) and ``join_makespan_seconds`` (the
        fan-out elapsed time observed here, in the parent).
        """
        if not tasks:
            return []
        if self.executor == "process" and self.workers > 1:
            outcomes = self._execute_process(tasks, grid, stats)
        else:
            # Simulated mode and the workers=1 degenerate case share the
            # in-process loop; no pool is spawned.
            tracer = self.tracer
            started = time.perf_counter()
            outcomes = []
            for task in tasks:
                outcome = _run_join_task(self.internal_name, grid, task)
                outcomes.append(outcome)
                if tracer.recording:
                    tracer.add_span(
                        "task",
                        outcome[4],
                        kind=KIND_TASK,
                        counters=outcome[3],
                        pid=outcome[0],
                    )
            stats.join_makespan_seconds = time.perf_counter() - started
        stats.join_busy_seconds = sum(outcome[4] for outcome in outcomes)
        return outcomes

    def _execute_process(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Fan the tasks out over a process pool, LPT-chunked.

        Workers report ``(pid, chunk_wall, task_outcomes)``; the parent
        turns each chunk into a ``worker`` span with its tasks as child
        ``task`` spans, and aggregates per-worker busy seconds — so the
        time spent inside the pool is attributed instead of dropped.
        """
        from concurrent.futures import ProcessPoolExecutor

        tracer = self.tracer
        n_chunks = min(len(tasks), self.workers * CHUNKS_PER_WORKER)
        chunks = _chunk_tasks(tasks, n_chunks)
        spec = _grid_spec(grid)
        payloads = [(self.internal_name, spec, chunk) for chunk in chunks]
        chunk_outcomes: List[ChunkOutcome] = []
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            for chunk_outcome in pool.map(_run_chunk, payloads):
                chunk_outcomes.append(chunk_outcome)
        stats.join_makespan_seconds = time.perf_counter() - started

        outcomes: List[TaskOutcome] = []
        busy_by_worker: Dict[str, float] = {}
        for chunk_idx, (worker_pid, chunk_wall, task_outcomes) in enumerate(
            chunk_outcomes
        ):
            label = f"pid-{worker_pid}"
            busy_by_worker[label] = busy_by_worker.get(label, 0.0) + chunk_wall
            if tracer.recording:
                worker_span = tracer.add_span(
                    "worker",
                    chunk_wall,
                    kind=KIND_WORKER,
                    worker=label,
                    chunk=chunk_idx,
                    tasks=len(task_outcomes),
                )
                for pid, _pairs, _suppressed, counter_dict, task_wall in (
                    task_outcomes
                ):
                    tracer.add_span(
                        "task",
                        task_wall,
                        kind=KIND_TASK,
                        parent_id=worker_span.span_id,
                        counters=counter_dict,
                        pid=pid,
                        worker=label,
                    )
            outcomes.extend(task_outcomes)
        stats.worker_busy_seconds = busy_by_worker
        return outcomes


def lpt_schedule(task_costs: Sequence[float], workers: int) -> Tuple[float, List[float]]:
    """Longest-processing-time-first scheduling.

    Returns ``(makespan, per-worker loads)``.  LPT is within 4/3 of the
    optimal makespan — plenty for a speedup model.
    """
    loads = [0.0] * workers
    for cost in sorted(task_costs, reverse=True):
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += cost
    return (max(loads) if loads else 0.0), loads
