"""Parallel PBSM: simulated multi-worker model and real multiprocess fan-out.

The paper's related work points to parallel spatial join processing
[BKS 96, Pat 98]; PBSM parallelises naturally because partition pairs are
independent once partitioning has replicated the data.  This module offers
two executors over the same shared-nothing decomposition:

* ``executor="simulated"`` — the analytic model: the partitioning phase is
  a single sequential scan, after which the P partition-pair join tasks —
  each with its own measured I/O + CPU cost — are scheduled onto W
  workers with the LPT (longest processing time first) heuristic.  The
  simulated total runtime is ``partition_phase + makespan``, so the
  speedup curve flattens exactly where the paper's decomposition
  predicts: the sequential partitioning fraction and the largest single
  partition bound the achievable speedup (Amdahl).
* ``executor="process"`` — the same task decomposition, actually executed:
  the join tasks are grouped into LPT-balanced chunks and fanned out over
  a :class:`concurrent.futures.ProcessPoolExecutor`.  Results are merged
  in partition order, so the output is byte-identical to the sequential
  execution.  With ``workers=1`` the fan-out degrades gracefully to an
  in-process loop (no pool is spawned).

The process executor ships its data one of two ways:

* the legacy **pickle transport**: each chunk payload carries the full
  (replicated) record lists of its tasks, and pair lists come back the
  same way.  The internal name and grid spec are installed once per
  worker by a pool initializer, not re-pickled per chunk.
* the **zero-copy shared-memory transport** (``shared_memory=True``):
  both inputs are loaded once into a columnar
  :class:`~repro.kernels.shm.SharedColumnarStore` segment together with
  CSR partition-index arrays, a join task shrinks to five integers
  ``(pid, l_lo, l_hi, r_lo, r_hi)``, workers attach by segment name in
  the pool initializer and gather their slices straight out of the
  mapped pages, and result ``(rid, sid)`` id buffers come back through a
  worker-created segment — only task tuples and manifests ever cross the
  pipe.  Requires the numpy backend; ``REPRO_DISABLE_SHM=1`` (or a
  platform without POSIX shared memory) falls back to the pickle
  transport with byte-identical output.

Duplicate elimination is RPM, which is what makes the parallel version
correct without any cross-worker coordination: each result is owned by
exactly one partition, hence by exactly one worker.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.kernels.backend import active_backend, cpu_count, require_numpy
from repro.kernels.rpm import rpm_join_ids, rpm_join_task
from repro.kernels.shm import (
    AliasedStore,
    ChainedStore,
    Manifest,
    SharedColumnarStore,
    columnar_arrays,
    shm_enabled,
)
from repro.obs.trace import KIND_RUN, KIND_TASK, KIND_WORKER, NULL_TRACER
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation

EXECUTORS = ("simulated", "process")

#: Chunks submitted per worker in process mode; >1 smooths load imbalance
#: that the up-front LPT packing cannot foresee.
CHUNKS_PER_WORKER = 4

#: Environment override raising the worker-count clamp beyond the usable
#: CPU count (tests and benches on small machines oversubscribe through
#: this on purpose).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: ``(pid, records_left, records_right)`` — one partition-pair join task.
JoinTask = Tuple[int, List[Tuple], List[Tuple]]

#: ``(pid, l_lo, l_hi, r_lo, r_hi)`` — the same task in shared-memory
#: form: two CSR slices into the segment's partition-index arrays.
ShmJoinTask = Tuple[int, int, int, int, int]

#: ``(pid, pairs, suppressed, counters_dict, wall_seconds)`` — one task's
#: outcome.  ``wall_seconds`` is measured inside the worker, so per-task
#: timing survives the process boundary instead of being dropped.
TaskOutcome = Tuple[int, List[Tuple[int, int]], int, Dict[str, int], float]

#: ``(worker_pid, chunk_wall_seconds, task_outcomes)`` — what one chunk of
#: tasks reports back from a pool worker.
ChunkOutcome = Tuple[int, float, List[TaskOutcome]]


def _grid_spec(grid: TileGrid) -> Tuple:
    """A picklable description from which a worker can rebuild the grid."""
    space = grid.space
    return (
        space.xl,
        space.yl,
        space.xh,
        space.yh,
        grid.nx,
        grid.ny,
        grid.n_partitions,
        grid.mapping,
    )


def _grid_from_spec(spec: Tuple) -> TileGrid:
    xl, yl, xh, yh, nx, ny, n_partitions, mapping = spec
    return TileGrid(Space(xl, yl, xh, yh), nx, ny, n_partitions, mapping)


def _worker_cap() -> int:
    """The largest worker count the process executor will actually spawn."""
    cap = cpu_count() or 1
    try:
        cap = max(cap, int(os.environ.get(MAX_WORKERS_ENV, "")))
    except (TypeError, ValueError):
        pass
    return cap


def _run_join_task(internal_name: str, grid: TileGrid, task: JoinTask) -> TaskOutcome:
    """Execute one partition-pair join with RPM ownership by its pid."""
    pid, records_left, records_right = task
    started = time.perf_counter()
    counters = CpuCounters()
    if internal_name == "sweep_numpy":
        pairs, suppressed = rpm_join_task(
            records_left, records_right, grid, pid, counters
        )
        wall = time.perf_counter() - started
        return pid, pairs, suppressed, counters.as_dict(), wall

    pairs: List[Tuple[int, int]] = []
    suppressed = 0
    refpoint_tests = 0
    partition_of_point = grid.partition_of_point

    def emit(r: Tuple, s: Tuple) -> None:
        nonlocal suppressed, refpoint_tests
        refpoint_tests += 1
        rx = r[1]
        sx = s[1]
        ry = r[4]
        sy = s[4]
        x = rx if rx >= sx else sx
        y = ry if ry <= sy else sy
        if partition_of_point(x, y) == pid:
            pairs.append((r[0], s[0]))
        else:
            suppressed += 1

    internal_algorithm(internal_name)(records_left, records_right, emit, counters)
    counters.refpoint_tests += refpoint_tests
    wall = time.perf_counter() - started
    return pid, pairs, suppressed, counters.as_dict(), wall


# ----------------------------------------------------------------------
# pool worker state (set once per worker by the initializer)
# ----------------------------------------------------------------------
_POOL_INTERNAL: Optional[str] = None
_POOL_GRID: Optional[TileGrid] = None
_POOL_STORE: Optional[SharedColumnarStore] = None


def _pool_init(
    internal_name: str, grid_spec: Tuple, manifest: Optional[Any] = None
) -> None:
    """Process-pool initializer: rebuild per-worker state exactly once.

    The internal-algorithm name and the grid used to be re-pickled into
    every chunk payload; both are installed here instead, once per
    worker.  With a shared-memory *manifest* the worker also attaches
    the input segment here, so chunk payloads shrink to bare task
    tuples.
    """
    global _POOL_INTERNAL, _POOL_GRID, _POOL_STORE
    _POOL_INTERNAL = internal_name
    _POOL_GRID = _grid_from_spec(grid_spec)
    _POOL_STORE = (
        SharedColumnarStore.attach(manifest) if manifest is not None else None
    )


def _run_chunk(payload: bytes) -> bytes:
    """Pickle-transport worker entry point: run one chunk of join tasks.

    The payload is the pickled task list and the return value is the
    pickled :data:`ChunkOutcome` — the parent pre-serialises and
    post-deserialises both, so ``len()`` of what crosses the pool is an
    exact measurement of the bytes this transport ships.  The worker
    measures its own chunk wall time (and each task measures its own),
    because the parent cannot observe time spent inside another process —
    it only sees the fan-out's makespan.
    """
    assert _POOL_INTERNAL is not None and _POOL_GRID is not None
    tasks: List[JoinTask] = pickle.loads(payload)
    return _chunk_blob(_POOL_INTERNAL, _POOL_GRID, tasks)


def _chunk_blob(internal_name: str, grid: TileGrid, tasks: List[JoinTask]) -> bytes:
    """Run one pickle-transport chunk and serialise its :data:`ChunkOutcome`."""
    started = time.perf_counter()
    outcomes = [_run_join_task(internal_name, grid, task) for task in tasks]
    wall = time.perf_counter() - started
    return pickle.dumps(
        (os.getpid(), wall, outcomes), pickle.HIGHEST_PROTOCOL
    )


def _run_shm_chunk(payload: bytes) -> bytes:
    """Shared-memory worker entry point: tasks are CSR slices, not records.

    Gathers each task's partition rows straight out of the attached
    segment, runs the columnar RPM kernel (or the scalar internal on a
    KPE round trip — same values either way), stores every task's
    ``(rid, sid)`` id buffers in a fresh worker-created segment, and
    ships back only the per-task metadata plus that segment's manifest.
    The parent attaches, decodes in partition order and unlinks.
    """
    assert _POOL_INTERNAL is not None and _POOL_GRID is not None
    tasks: List[ShmJoinTask] = pickle.loads(payload)
    return _shm_chunk_blob(_POOL_INTERNAL, _POOL_GRID, _POOL_STORE, tasks)


def _shm_chunk_blob(
    internal_name: str, grid: TileGrid, store: Any, tasks: List[ShmJoinTask]
) -> bytes:
    """Run one shared-memory chunk against *store* and serialise the blob."""
    np = require_numpy()
    started = time.perf_counter()
    metas = []
    out_arrays: Dict[str, object] = {}
    for pid, l_lo, l_hi, r_lo, r_hi in tasks:
        task_started = time.perf_counter()
        counters = CpuCounters()
        a = store.gather("L", store["L.ids"][l_lo:l_hi])
        b = store.gather("R", store["R.ids"][r_lo:r_hi])
        if internal_name == "sweep_numpy":
            rid, sid, suppressed = rpm_join_ids(a, b, grid, pid, counters)
            counter_dict = counters.as_dict()
        else:
            _, pairs, suppressed, counter_dict, _ = _run_join_task(
                internal_name, grid, (pid, a.to_kpes(), b.to_kpes())
            )
            rid = np.fromiter(
                (p[0] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            sid = np.fromiter(
                (p[1] for p in pairs), dtype=np.int64, count=len(pairs)
            )
        out_arrays[f"{pid}.rid"] = rid
        out_arrays[f"{pid}.sid"] = sid
        metas.append(
            (pid, suppressed, counter_dict, time.perf_counter() - task_started)
        )
    wall = time.perf_counter() - started
    # Untracked on purpose: the parent unlinks after decoding (a worker
    # crashing between here and there leaks the segment — see docs).  If
    # the reply cannot even be serialised, unlink now: the parent will
    # never see the manifest, so nobody else can clean the segment up.
    results = SharedColumnarStore.create(out_arrays, track=False)
    try:
        blob = pickle.dumps(
            (os.getpid(), wall, metas, results.manifest),
            pickle.HIGHEST_PROTOCOL,
        )
    except BaseException:
        results.unlink()
        raise
    finally:
        results.close()
    return blob


# ----------------------------------------------------------------------
# dynamic-config execution (externally-owned persistent pools)
# ----------------------------------------------------------------------
#: ``(manifest, ((alias, real_prefix), ...), cache)`` — one store a
#: dynamic chunk attaches.  ``cache=True`` marks a long-lived (pinned)
#: segment the worker may keep attached across queries; ``cache=False``
#: marks a per-query segment closed again when the chunk ends.
StoreRef = Tuple[Manifest, Tuple[Tuple[str, str], ...], bool]

#: ``(internal_name, grid_spec, store_refs | None)`` — the per-query
#: configuration a dynamic chunk carries instead of relying on a pool
#: initializer.  ``store_refs=None`` selects the pickle transport.
PoolConfig = Tuple[str, Tuple, Optional[Tuple[StoreRef, ...]]]

#: Long-lived attachments by segment name (pinned dataset segments);
#: lives in the worker process for the lifetime of the persistent pool.
_DYN_ATTACHED: Dict[str, SharedColumnarStore] = {}


def _dyn_store(
    refs: Tuple[StoreRef, ...]
) -> Tuple[Any, List[SharedColumnarStore]]:
    """Assemble the chunk's store view from *refs*.

    Returns ``(store, ephemeral)`` where *ephemeral* are the attachments
    the caller must close when the chunk is done (per-query segments);
    cached attachments stay mapped for the next query over the same
    pinned dataset — that is the amortisation a persistent pool buys.
    """
    views: List[Any] = []
    ephemeral: List[SharedColumnarStore] = []
    for manifest, aliases, cache in refs:
        name = manifest[0]
        if cache:
            attached = _DYN_ATTACHED.get(name)
            if attached is None:
                # Custody moves into the module-level cache: the segment
                # stays mapped for the pool's lifetime by design.
                attached = SharedColumnarStore.attach(manifest)  # repro-lint: disable=RPL004
                _DYN_ATTACHED[name] = attached
        else:
            # Custody moves into the returned `ephemeral` list; the
            # chunk runner closes every entry in its finally block.
            attached = SharedColumnarStore.attach(manifest)  # repro-lint: disable=RPL004
            ephemeral.append(attached)
        views.append(
            AliasedStore(attached, dict(aliases)) if aliases else attached
        )
    if len(views) == 1:
        return views[0], ephemeral
    return ChainedStore(views), ephemeral


def _run_dyn_chunk(payload: bytes) -> bytes:
    """Worker entry point for pools without a per-query initializer.

    A persistent pool (``repro serve``) outlives any single query, so
    per-query state cannot be installed by a pool initializer — it rides
    along with every chunk instead: the payload is the pickled
    ``(config, tasks)`` pair.  Grid rebuild is cheap; segment
    attachments are cached by name (pinned datasets) or scoped to the
    chunk (per-query id arrays), so repeated queries over registered
    datasets touch the big columns without ever re-mapping them.
    """
    config, tasks = pickle.loads(payload)
    internal_name, grid_spec, refs = config
    grid = _grid_from_spec(grid_spec)
    if refs is None:
        return _chunk_blob(internal_name, grid, tasks)
    store, ephemeral = _dyn_store(refs)
    try:
        return _shm_chunk_blob(internal_name, grid, store, tasks)
    finally:
        for attached in ephemeral:
            attached.close()


def _task_size(task: Tuple) -> int:
    """Joined record count of a task, in either task representation."""
    if isinstance(task[1], int):
        return (task[2] - task[1]) + (task[4] - task[3])
    return len(task[1]) + len(task[2])


def _chunk_tasks(tasks: List, n_chunks: int) -> List[List]:
    """Pack tasks into *n_chunks* LPT-balanced chunks (by joined size)."""
    sized = sorted(tasks, key=lambda t: (_task_size(t), t[0]), reverse=True)
    chunks: List[List] = [[] for _ in range(n_chunks)]
    loads = [0] * n_chunks
    for task in sized:
        idx = min(range(n_chunks), key=loads.__getitem__)
        chunks[idx].append(task)
        loads[idx] += _task_size(task)
    return [chunk for chunk in chunks if chunk]


class ParallelPBSM:
    """PBSM with the join phase spread over *workers* workers.

    ``executor="simulated"`` runs sequentially and *models* the parallel
    runtime; ``executor="process"`` actually fans the join tasks out over
    a process pool.  Both produce identical result pairs in identical
    order, and both report the same simulated costs — the process
    executor additionally delivers real wall-clock speedup on multicore
    hardware.  ``shared_memory=True`` switches the process executor to
    the zero-copy transport (see the module docstring); out-of-range
    worker counts are clamped with a :class:`RuntimeWarning` instead of
    raising or silently oversubscribing the machine.
    """

    def __init__(
        self,
        memory_bytes: int,
        workers: int = 4,
        *,
        internal: str = "sweep_trie",
        executor: str = "simulated",
        shared_memory: bool = False,
        t_factor: float = 1.2,
        tiles_per_partition: int = 4,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Any] = None,
        pool: Optional[Any] = None,
        pinned: Optional[Tuple[Manifest, Manifest]] = None,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if workers < 1:
            warnings.warn(
                f"workers={workers} is below 1; clamped to 1",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        if executor == "process":
            cap = _worker_cap()
            if workers > cap:
                warnings.warn(
                    f"workers={workers} exceeds the usable CPU count ({cap}); "
                    f"clamped to {cap} (set {MAX_WORKERS_ENV} to allow "
                    "oversubscription)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                workers = cap
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.executor = executor
        self.shared_memory = shared_memory
        self.t_factor = t_factor
        self.tiles_per_partition = tiles_per_partition
        self.cost_model = cost_model or CostModel()
        #: An externally-owned (persistent) process pool.  When set, the
        #: fan-out submits dynamic-config chunks to it instead of
        #: spawning a pool per run — the ``repro serve`` path, where the
        #: pool outlives every query.  The caller owns its lifecycle.
        self.pool = pool
        #: Manifests of pinned left/right dataset segments (columns under
        #: the neutral ``D.*`` prefix).  With the shared-memory transport
        #: and an external pool, the per-query segment then carries only
        #: the CSR id arrays — the relation columns are never re-shipped.
        self.pinned = pinned

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        # The zero-copy transport needs a real pool (workers > 1), the
        # columnar backend, and working platform shared memory; anything
        # else silently degrades to the pickle/in-process paths, which
        # produce byte-identical output.
        use_shm = (
            self.shared_memory
            and self.executor == "process"
            and self.workers > 1
            and shm_enabled()
        )
        stats = JoinStats(
            algorithm=f"ParallelPBSM({self.internal_name},W={self.workers})",
            backend=(
                active_backend() if self.internal_name == "sweep_numpy" else ""
            ),
            executor=self.executor,
            shared_memory=use_shm,
            n_left=len(left),
            n_right=len(right),
        )
        pairs: List[Tuple[int, int]] = []
        if not left or not right:
            return JoinResult(pairs=pairs, stats=stats)
        cost = self.cost_model
        kpe_bytes = cost.kpe_bytes
        space = Space.of(left, right)
        n_partitions = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        # At least one task per worker, or parallelism is wasted.
        n_partitions = max(n_partitions, self.workers)
        grid = TileGrid.for_partitions(
            space, n_partitions, self.tiles_per_partition
        )
        stats.n_partitions = n_partitions

        tracer = self.tracer
        with tracer.span(
            "parallel_pbsm",
            kind=KIND_RUN,
            internal=self.internal_name,
            executor=self.executor,
            workers=self.workers,
            shared_memory=use_shm,
            backend=stats.backend or None,
        ):
            # --- sequential partitioning phase -----------------------------
            emit = "ids" if use_shm else "records"
            disk = SimulatedDisk(cost)
            part_cpu = CpuCounters()
            with tracer.span(PHASE_PARTITION, cpu=part_cpu, disk=disk) as sp:
                with disk.phase(PHASE_PARTITION):
                    left_files, n_left_written = partition_relation(
                        left, grid, disk, kpe_bytes, part_cpu, "R", emit=emit
                    )
                    right_files, n_right_written = partition_relation(
                        right, grid, disk, kpe_bytes, part_cpu, "S", emit=emit
                    )
                stats.records_partitioned = n_left_written + n_right_written
                stats.replicas_created = (
                    stats.records_partitioned - len(left) - len(right)
                )
                partition_seconds = cost.io_seconds(
                    disk.total_units()
                ) + cost.cpu_seconds(part_cpu)
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            with tracer.span(PHASE_JOIN) as sp:
                # --- materialise the join tasks (reads are charged) --------
                # Record tasks carry the records themselves; shm tasks
                # carry CSR slices into the concatenated id arrays.  The
                # files hold the same counts either way, so the charged
                # reads are identical.
                tasks: List = []
                ids_left: List[int] = []
                ids_right: List[int] = []
                task_io_units: Dict[int, float] = {}
                for pid in range(n_partitions):
                    file_left = left_files[pid]
                    file_right = right_files[pid]
                    if not file_left.n_records or not file_right.n_records:
                        continue
                    pair_bytes = file_left.n_bytes + file_right.n_bytes
                    if pair_bytes > self.memory_bytes:
                        stats.memory_overruns += 1
                    if pair_bytes > stats.peak_memory_bytes:
                        stats.peak_memory_bytes = pair_bytes
                    task_disk = SimulatedDisk(cost)
                    # Rebind so the join-phase reads are charged to this
                    # task (they used to land on the partition disk's
                    # default phase, zeroing every task's I/O share).
                    file_left.disk = task_disk
                    file_right.disk = task_disk
                    with task_disk.phase(PHASE_JOIN):
                        records_left = file_left.read_all()
                        records_right = file_right.read_all()
                    if use_shm:
                        l_lo = len(ids_left)
                        ids_left.extend(records_left)
                        r_lo = len(ids_right)
                        ids_right.extend(records_right)
                        tasks.append(
                            (pid, l_lo, len(ids_left), r_lo, len(ids_right))
                        )
                    else:
                        tasks.append((pid, records_left, records_right))
                    task_io_units[pid] = task_disk.total_units()

                # --- execute the tasks -------------------------------------
                if use_shm:
                    outcomes = self._execute_shm(
                        tasks, grid, stats, left, right, ids_left, ids_right
                    )
                else:
                    outcomes = self._execute(tasks, grid, stats)

                # --- deterministic merge in partition order ----------------
                task_costs: List[float] = []
                join_cpu_total = CpuCounters()
                join_units_total = 0.0
                suppressed_total = 0
                for pid, task_pairs, suppressed, counter_dict, _wall in sorted(
                    outcomes
                ):
                    pairs.extend(task_pairs)
                    suppressed_total += suppressed
                    task_cpu = CpuCounters(**counter_dict)
                    units = task_io_units[pid]
                    task_costs.append(
                        cost.io_seconds(units) + cost.cpu_seconds(task_cpu)
                    )
                    join_cpu_total.add(task_cpu)
                    join_units_total += units
                stats.duplicates_suppressed = suppressed_total
                sp.add_counters(join_cpu_total.as_dict())
                sp.add_counters({"io_units": join_units_total})
                if stats.ipc_bytes_shipped or stats.ipc_seconds:
                    sp.add_counters(
                        {
                            "bytes_shipped": stats.ipc_bytes_shipped,
                            "ipc_seconds": stats.ipc_seconds,
                        }
                    )
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

            # --- LPT scheduling onto W workers --------------------------
            makespan, _loads = lpt_schedule(task_costs, self.workers)
            stats.n_results = len(pairs)
            stats.io_units_by_phase = {
                PHASE_PARTITION: disk.total_units(),
                PHASE_JOIN: join_units_total,
            }
            stats.cpu_by_phase = {
                PHASE_PARTITION: part_cpu.as_dict(),
                PHASE_JOIN: join_cpu_total.as_dict(),
            }
            # The *parallel* simulated runtime:
            stats.sim_io_seconds = cost.io_seconds(disk.total_units())
            stats.sim_cpu_seconds = makespan  # join tasks dominated by makespan
            stats.sim_seconds_by_phase = {
                PHASE_PARTITION: partition_seconds,
                PHASE_JOIN: makespan,
            }
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def _execute(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Run every join task under the configured executor.

        Besides the outcomes this fills in the parallel timing fields of
        *stats*: ``join_busy_seconds`` (sum of per-task wall seconds, as
        measured where the task ran) and ``join_makespan_seconds`` (the
        fan-out elapsed time observed here, in the parent).
        """
        if not tasks:
            return []
        if self.executor == "process" and self.workers > 1:
            outcomes = self._execute_process(tasks, grid, stats)
        else:
            # Simulated mode and the workers=1 degenerate case share the
            # in-process loop; no pool is spawned.
            tracer = self.tracer
            started = time.perf_counter()
            outcomes = []
            for task in tasks:
                outcome = _run_join_task(self.internal_name, grid, task)
                outcomes.append(outcome)
                if tracer.recording:
                    tracer.add_span(
                        "task",
                        outcome[4],
                        kind=KIND_TASK,
                        counters=outcome[3],
                        pid=outcome[0],
                    )
            stats.join_makespan_seconds = time.perf_counter() - started
        stats.join_busy_seconds = sum(outcome[4] for outcome in outcomes)
        return outcomes

    def _emit_pool_spans(
        self,
        stats: JoinStats,
        chunk_reports: List[Tuple[int, float, List[TaskOutcome], int]],
    ) -> None:
        """Worker/task spans and per-worker busy totals for one fan-out.

        ``chunk_reports`` rows are ``(worker_pid, chunk_wall,
        task_outcomes, chunk_bytes)``; ``chunk_bytes`` (payload out plus
        result blob in) lands on the worker span as a ``bytes_shipped``
        counter, so traces attribute the IPC volume next to the time.
        """
        tracer = self.tracer
        busy_by_worker: Dict[str, float] = {}
        for chunk_idx, (worker_pid, chunk_wall, task_outcomes, chunk_bytes) in (
            enumerate(chunk_reports)
        ):
            label = f"pid-{worker_pid}"
            busy_by_worker[label] = busy_by_worker.get(label, 0.0) + chunk_wall
            if tracer.recording:
                worker_span = tracer.add_span(
                    "worker",
                    chunk_wall,
                    kind=KIND_WORKER,
                    worker=label,
                    chunk=chunk_idx,
                    tasks=len(task_outcomes),
                    counters={"bytes_shipped": chunk_bytes},
                )
                for pid, _pairs, _suppressed, counter_dict, task_wall in (
                    task_outcomes
                ):
                    tracer.add_span(
                        "task",
                        task_wall,
                        kind=KIND_TASK,
                        parent_id=worker_span.span_id,
                        counters=counter_dict,
                        pid=pid,
                        worker=label,
                    )
        stats.worker_busy_seconds = busy_by_worker

    def _execute_process(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Fan the tasks out over a process pool via the pickle transport.

        The parent pre-pickles every chunk payload and unpickles every
        result blob itself, so ``stats.ipc_bytes_shipped`` counts the
        exact bytes crossing the pool (re-pickling a ``bytes`` payload is
        a memcpy) and ``stats.ipc_seconds`` is the measured
        serialisation time the transport costs on top of the join work.
        """
        from concurrent.futures import ProcessPoolExecutor

        n_chunks = min(len(tasks), self.workers * CHUNKS_PER_WORKER)
        chunks = _chunk_tasks(tasks, n_chunks)
        encode_started = time.perf_counter()
        if self.pool is not None:
            config: PoolConfig = (self.internal_name, _grid_spec(grid), None)
            payloads = [
                pickle.dumps((config, chunk), pickle.HIGHEST_PROTOCOL)
                for chunk in chunks
            ]
        else:
            payloads = [
                pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL) for chunk in chunks
            ]
        ipc_seconds = time.perf_counter() - encode_started
        bytes_shipped = sum(len(p) for p in payloads)

        blobs: List[bytes] = []
        started = time.perf_counter()
        if self.pool is not None:
            # Persistent pool: no spawn, no initializer — the config
            # rides inside each chunk payload instead.
            for blob in self.pool.map(_run_dyn_chunk, payloads):
                blobs.append(blob)
        else:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=(self.internal_name, _grid_spec(grid)),
            ) as pool:
                for blob in pool.map(_run_chunk, payloads):
                    blobs.append(blob)
        stats.join_makespan_seconds = time.perf_counter() - started

        decode_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        chunk_reports = []
        for payload, blob in zip(payloads, blobs):
            worker_pid, chunk_wall, task_outcomes = pickle.loads(blob)
            bytes_shipped += len(blob)
            outcomes.extend(task_outcomes)
            chunk_reports.append(
                (worker_pid, chunk_wall, task_outcomes, len(payload) + len(blob))
            )
        ipc_seconds += time.perf_counter() - decode_started
        stats.ipc_bytes_shipped = bytes_shipped
        stats.ipc_seconds = ipc_seconds
        self._emit_pool_spans(stats, chunk_reports)
        return outcomes

    def _execute_shm(
        self,
        tasks: List[ShmJoinTask],
        grid: TileGrid,
        stats: JoinStats,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        ids_left: List[int],
        ids_right: List[int],
    ) -> List[TaskOutcome]:
        """Fan the tasks out via the zero-copy shared-memory transport.

        Loads both inputs once into a columnar segment (plus the CSR id
        arrays the partitioner emitted), ships five-integer tasks, and
        decodes worker-returned ``(rid, sid)`` id buffers in partition
        order — so the merged output is byte-identical to the pickle
        transport and to sequential execution.  Segment build, payload
        encode and result decode all count into ``stats.ipc_seconds``;
        only the pipe traffic counts into ``stats.ipc_bytes_shipped``.
        """
        from concurrent.futures import ProcessPoolExecutor

        if not tasks:
            return []
        np = require_numpy()
        stats.join_busy_seconds = 0.0

        encode_started = time.perf_counter()
        from repro.kernels.columnar import ColumnarRelation

        pinned_refs: List[StoreRef] = []
        arrays: Dict[str, object] = {}
        if self.pool is not None and self.pinned is not None:
            # The relation columns already live in pinned registry
            # segments; the per-query segment carries only the CSR id
            # arrays, so a query's segment-build cost is O(partitioned
            # ids), not O(data).
            l_manifest, r_manifest = self.pinned
            pinned_refs = [
                (l_manifest, (("L", "D"),), True),
                (r_manifest, (("R", "D"),), True),
            ]
        else:
            arrays = columnar_arrays("L", ColumnarRelation.from_kpes(left))
            arrays.update(
                columnar_arrays("R", ColumnarRelation.from_kpes(right))
            )
        arrays["L.ids"] = np.asarray(ids_left, dtype=np.int64)
        arrays["R.ids"] = np.asarray(ids_right, dtype=np.int64)
        n_chunks = min(len(tasks), self.workers * CHUNKS_PER_WORKER)
        chunks = _chunk_tasks(tasks, n_chunks)

        blobs: List[bytes] = []
        with SharedColumnarStore.create(arrays) as store:
            if self.pool is not None:
                config: PoolConfig = (
                    self.internal_name,
                    _grid_spec(grid),
                    tuple(pinned_refs) + ((store.manifest, (), False),),
                )
                payloads = [
                    pickle.dumps((config, chunk), pickle.HIGHEST_PROTOCOL)
                    for chunk in chunks
                ]
            else:
                payloads = [
                    pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL)
                    for chunk in chunks
                ]
            bytes_shipped = sum(len(p) for p in payloads)
            ipc_seconds = time.perf_counter() - encode_started
            started = time.perf_counter()
            if self.pool is not None:
                for blob in self.pool.map(_run_dyn_chunk, payloads):
                    blobs.append(blob)
            else:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_init,
                    initargs=(
                        self.internal_name,
                        _grid_spec(grid),
                        store.manifest,
                    ),
                ) as pool:
                    for blob in pool.map(_run_shm_chunk, payloads):
                        blobs.append(blob)
            stats.join_makespan_seconds = time.perf_counter() - started

            decode_started = time.perf_counter()
            outcomes: List[TaskOutcome] = []
            chunk_reports = []
            for payload, blob in zip(payloads, blobs):
                worker_pid, chunk_wall, metas, manifest = pickle.loads(blob)
                bytes_shipped += len(blob)
                results = SharedColumnarStore.attach(manifest)
                try:
                    task_outcomes: List[TaskOutcome] = []
                    for pid, suppressed, counter_dict, task_wall in metas:
                        task_pairs = list(
                            zip(
                                results[f"{pid}.rid"].tolist(),
                                results[f"{pid}.sid"].tolist(),
                            )
                        )
                        task_outcomes.append(
                            (pid, task_pairs, suppressed, counter_dict, task_wall)
                        )
                finally:
                    results.close()
                    results.unlink()
                outcomes.extend(task_outcomes)
                chunk_reports.append(
                    (
                        worker_pid,
                        chunk_wall,
                        task_outcomes,
                        len(payload) + len(blob),
                    )
                )
            ipc_seconds += time.perf_counter() - decode_started
        stats.ipc_bytes_shipped = bytes_shipped
        stats.ipc_seconds = ipc_seconds
        stats.join_busy_seconds = sum(outcome[4] for outcome in outcomes)
        self._emit_pool_spans(stats, chunk_reports)
        return outcomes


def lpt_schedule(task_costs: Sequence[float], workers: int) -> Tuple[float, List[float]]:
    """Longest-processing-time-first scheduling.

    Returns ``(makespan, per-worker loads)``.  LPT is within 4/3 of the
    optimal makespan — plenty for a speedup model.
    """
    loads = [0.0] * workers
    for cost in sorted(task_costs, reverse=True):
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += cost
    return (max(loads) if loads else 0.0), loads
