"""Parallel PBSM: a simulated multi-worker execution model.

The paper's related work points to parallel spatial join processing
[BKS 96, Pat 98]; PBSM parallelises naturally because partition pairs are
independent once partitioning has replicated the data.  This module
models a shared-nothing execution: the partitioning phase is a single
scan (sequential), after which the P partition-pair join tasks — each
with its own measured I/O + CPU cost — are scheduled onto W workers with
the LPT (longest processing time first) heuristic.  The simulated total
runtime is

    ``partition_phase + makespan(worker schedules)``

so the speedup curve flattens exactly where the paper's decomposition
predicts: the sequential partitioning fraction and the largest single
partition bound the achievable speedup (Amdahl).

Duplicate elimination is RPM, which is what makes the parallel version
correct without any cross-worker coordination: each result is owned by
exactly one partition, hence by exactly one worker.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation


class ParallelPBSM:
    """PBSM with the join phase spread over *workers* simulated workers."""

    def __init__(
        self,
        memory_bytes: int,
        workers: int = 4,
        *,
        internal: str = "sweep_trie",
        t_factor: float = 1.2,
        tiles_per_partition: int = 4,
        cost_model: Optional[CostModel] = None,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.t_factor = t_factor
        self.tiles_per_partition = tiles_per_partition
        self.cost_model = cost_model or CostModel()

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        stats = JoinStats(
            algorithm=f"ParallelPBSM({self.internal_name},W={self.workers})",
            n_left=len(left),
            n_right=len(right),
        )
        pairs: List[Tuple[int, int]] = []
        if not left or not right:
            return JoinResult(pairs=pairs, stats=stats)
        cost = self.cost_model
        kpe_bytes = cost.kpe_bytes
        space = Space.of(left, right)
        n_partitions = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        # At least one task per worker, or parallelism is wasted.
        n_partitions = max(n_partitions, self.workers)
        grid = TileGrid.for_partitions(
            space, n_partitions, self.tiles_per_partition
        )
        stats.n_partitions = n_partitions

        # --- sequential partitioning phase -----------------------------
        wall = time.perf_counter()
        disk = SimulatedDisk(cost)
        part_cpu = CpuCounters()
        with disk.phase("partition"):
            left_files, n_left_written = partition_relation(
                left, grid, disk, kpe_bytes, part_cpu, "R"
            )
            right_files, n_right_written = partition_relation(
                right, grid, disk, kpe_bytes, part_cpu, "S"
            )
        stats.records_partitioned = n_left_written + n_right_written
        stats.replicas_created = stats.records_partitioned - len(left) - len(right)
        partition_seconds = cost.io_seconds(disk.total_units()) + cost.cpu_seconds(
            part_cpu
        )
        stats.wall_seconds_by_phase["partition"] = time.perf_counter() - wall

        # --- per-pair join tasks with individual cost measurement ------
        wall = time.perf_counter()
        task_costs: List[float] = []
        join_cpu_total = CpuCounters()
        join_units_total = 0.0
        suppressed_total = 0
        for pid in range(n_partitions):
            file_left = left_files[pid]
            file_right = right_files[pid]
            if not file_left.n_records or not file_right.n_records:
                continue
            pair_bytes = file_left.n_bytes + file_right.n_bytes
            if pair_bytes > self.memory_bytes:
                stats.memory_overruns += 1
            if pair_bytes > stats.peak_memory_bytes:
                stats.peak_memory_bytes = pair_bytes
            task_disk = SimulatedDisk(cost)
            task_cpu = CpuCounters()
            with task_disk.phase("join"):
                records_left = file_left.read_all()
                records_right = file_right.read_all()
            suppressed = self._join_task(
                records_left, records_right, grid, pid, pairs, task_cpu
            )
            suppressed_total += suppressed
            task_seconds = cost.io_seconds(task_disk.total_units()) + (
                cost.cpu_seconds(task_cpu)
            )
            task_costs.append(task_seconds)
            join_cpu_total.add(task_cpu)
            join_units_total += task_disk.total_units()
        stats.duplicates_suppressed = suppressed_total
        stats.wall_seconds_by_phase["join"] = time.perf_counter() - wall

        # --- LPT scheduling onto W workers ------------------------------
        makespan, loads = lpt_schedule(task_costs, self.workers)
        stats.n_results = len(pairs)
        stats.io_units_by_phase = {
            "partition": disk.total_units(),
            "join": join_units_total,
        }
        stats.cpu_by_phase = {
            "partition": part_cpu.as_dict(),
            "join": join_cpu_total.as_dict(),
        }
        # The *parallel* simulated runtime:
        stats.sim_io_seconds = cost.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = makespan  # join tasks dominated by makespan
        stats.sim_seconds_by_phase = {
            "partition": partition_seconds,
            "join": makespan,
        }
        return JoinResult(pairs=pairs, stats=stats)

    def _join_task(
        self,
        records_left: List[Tuple],
        records_right: List[Tuple],
        grid: TileGrid,
        pid: int,
        pairs: List[Tuple[int, int]],
        cpu: CpuCounters,
    ) -> int:
        """One partition-pair join with RPM ownership by partition *pid*."""
        suppressed = 0
        refpoint_tests = 0
        partition_of_point = grid.partition_of_point

        def emit(r: Tuple, s: Tuple) -> None:
            nonlocal suppressed, refpoint_tests
            refpoint_tests += 1
            rx = r[1]
            sx = s[1]
            ry = r[4]
            sy = s[4]
            x = rx if rx >= sx else sx
            y = ry if ry <= sy else sy
            if partition_of_point(x, y) == pid:
                pairs.append((r[0], s[0]))
            else:
                suppressed += 1

        self.internal(records_left, records_right, emit, cpu)
        cpu.refpoint_tests += refpoint_tests
        return suppressed


def lpt_schedule(task_costs: Sequence[float], workers: int) -> Tuple[float, List[float]]:
    """Longest-processing-time-first scheduling.

    Returns ``(makespan, per-worker loads)``.  LPT is within 4/3 of the
    optimal makespan — plenty for a speedup model.
    """
    loads = [0.0] * workers
    for cost in sorted(task_costs, reverse=True):
        idx = min(range(workers), key=loads.__getitem__)
        loads[idx] += cost
    return (max(loads) if loads else 0.0), loads
