"""Parallel PBSM: simulated multi-worker model and real multiprocess fan-out.

The paper's related work points to parallel spatial join processing
[BKS 96, Pat 98]; PBSM parallelises naturally because partition pairs are
independent once partitioning has replicated the data.  This module offers
three executors over the same shared-nothing decomposition:

* ``executor="simulated"`` — the analytic model: the partitioning phase is
  a single sequential scan, after which the P partition-pair join tasks —
  each with its own measured I/O + CPU cost — are scheduled onto W
  workers with the LPT (longest processing time first) heuristic.  The
  simulated total runtime is ``partition_phase + makespan``, so the
  speedup curve flattens exactly where the paper's decomposition
  predicts: the sequential partitioning fraction and the largest single
  partition bound the achievable speedup (Amdahl).
* ``executor="process"`` — the same task decomposition, actually executed:
  the join tasks are fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are merged
  in partition order, so the output is byte-identical to the sequential
  execution.  With ``workers=1`` the fan-out degrades gracefully to an
  in-process loop (no pool is spawned).
* ``executor="thread"`` — the same fan-out over a
  :class:`concurrent.futures.ThreadPoolExecutor`.  The columnar kernel
  spends its time inside numpy, which releases the GIL, so threads scale
  on the vectorized path while costing no process spawn, no pickling and
  no IPC at all — and they share pinned ``serve/`` segments for free.

On skewed inputs one mega-partition sets the makespan no matter how the
remaining tasks are packed.  Two knobs attack that:

* **stripe splitting**: any task whose joined size dwarfs the mean is
  split into sweep-axis stripe parts (``kernels/sweep.py`` computes the
  stripe plan identically in every part and executes only the part's
  stripe range), so the mega-partition's work spreads over many workers
  while the concatenated output stays bit-identical to the sequential
  scan;
* the **scheduler**: ``scheduler="static"`` is the classic up-front LPT
  packing into per-worker chunks; ``scheduler="stealing"`` (default)
  keeps tasks in one largest-first queue and hands the next unit to
  whichever worker frees up first (completion-driven dispatch — the
  pool-level equivalent of idle workers stealing the next-largest task).
  ``stats.tasks_stolen`` counts the units that ran on a different worker
  than static LPT would have planned, and
  ``stats.scheduler_idle_seconds`` is the summed worker idle time the
  makespan hides.

The process executor ships its data one of two ways:

* the legacy **pickle transport**: each chunk payload carries the full
  (replicated) record lists of its tasks, and pair lists come back the
  same way.  The internal name and grid spec are installed once per
  worker by a pool initializer, not re-pickled per chunk.
* the **zero-copy shared-memory transport** (``shared_memory=True``):
  both inputs are loaded once into a columnar
  :class:`~repro.kernels.shm.SharedColumnarStore` segment together with
  CSR partition-index arrays, a join task shrinks to five integers
  ``(pid, l_lo, l_hi, r_lo, r_hi)`` (seven with a stripe part), workers
  attach by segment name in the pool initializer and gather their slices
  straight out of the mapped pages, and result ``(rid, sid)`` id buffers
  come back through a worker-created segment — only task tuples and
  manifests ever cross the pipe.  Requires the numpy backend;
  ``REPRO_DISABLE_SHM=1`` (or a platform without POSIX shared memory)
  falls back to the pickle transport with byte-identical output.

Duplicate handling is online — ``dedup="rpm"`` (the reference-point test)
or ``dedup="twolayer"`` (corner-class avoidance, zero per-pair work) —
which is what makes the parallel version correct without any cross-worker
coordination: each result is owned by exactly one partition — and, under
stripe splitting, by exactly one stripe part of that partition.  The
offline ``"sort"`` mode would serialise the join behind a global sorting
phase, so it is rejected here rather than silently degraded.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.kernels.backend import (
    active_backend,
    cpu_count,
    numpy_enabled,
    require_numpy,
)
from repro.kernels.rpm import rpm_join_ids, rpm_join_task
from repro.kernels.shm import (
    AliasedStore,
    ChainedStore,
    Manifest,
    SharedColumnarStore,
    columnar_arrays,
    shm_enabled,
)
from repro.kernels.twolayer import twolayer_join_ids, twolayer_join_task
from repro.obs.trace import KIND_RUN, KIND_TASK, KIND_WORKER, NULL_TRACER
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.grid import TileGrid
from repro.pbsm.partitioner import partition_relation
from repro.pbsm.scheduler import SCHEDULERS, count_steals, lpt_schedule
from repro.pbsm.twolayer import twolayer_partition_join

EXECUTORS = ("simulated", "process", "thread")

#: Dedup modes the parallel driver supports: both are *online* (each pair
#: is owned by exactly one task), so no cross-worker phase is needed.
PARALLEL_DEDUP_MODES = ("rpm", "twolayer")

#: Chunks submitted per worker in process mode; >1 smooths load imbalance
#: that the up-front LPT packing cannot foresee.
CHUNKS_PER_WORKER = 4

#: A task is stripe-split when its joined size exceeds
#: ``max(STRIPE_SPLIT_FACTOR * mean task size, STRIPE_SPLIT_MIN_RECORDS)``.
STRIPE_SPLIT_FACTOR = 2.0

#: Below this joined size splitting cannot amortise the duplicated
#: stripe-layout work (2x the sweep kernel's own striping floor).
STRIPE_SPLIT_MIN_RECORDS = 8192

#: Upper bound on stripe parts per task.
STRIPE_SPLIT_MAX_PARTS = 16

#: Environment override raising the worker-count clamp beyond the usable
#: CPU count (tests and benches on small machines oversubscribe through
#: this on purpose).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: ``(pid, records_left, records_right)`` — one partition-pair join task;
#: a stripe-split part appends ``(part, n_parts)``.
JoinTask = Tuple[Any, ...]

#: ``(pid, l_lo, l_hi, r_lo, r_hi)`` — the same task in shared-memory
#: form: two CSR slices into the segment's partition-index arrays; a
#: stripe-split part appends ``(part, n_parts)``.
ShmJoinTask = Tuple[Any, ...]

#: ``(pid, part, pairs, suppressed, counters_dict, wall_seconds)`` — one
#: task's outcome.  ``part`` is the stripe part (0 for unsplit tasks);
#: merging sorts by ``(pid, part)``.  ``wall_seconds`` is measured inside
#: the worker, so per-task timing survives the process boundary instead
#: of being dropped.
TaskOutcome = Tuple[int, int, List[Tuple[int, int]], int, Dict[str, int], float]

#: ``(worker_pid, chunk_wall_seconds, task_outcomes)`` — what one chunk of
#: tasks reports back from a pool worker.
ChunkOutcome = Tuple[int, float, List[TaskOutcome]]

#: ``(worker_label, chunk_wall, task_outcomes, chunk_bytes)`` — one
#: decoded chunk as :meth:`ParallelPBSM._emit_pool_spans` consumes it.
ChunkReport = Tuple[str, float, List[TaskOutcome], int]


def _grid_spec(grid: TileGrid) -> Tuple:
    """A picklable description from which a worker can rebuild the grid."""
    space = grid.space
    return (
        space.xl,
        space.yl,
        space.xh,
        space.yh,
        grid.nx,
        grid.ny,
        grid.n_partitions,
        grid.mapping,
    )


def _grid_from_spec(spec: Tuple) -> TileGrid:
    xl, yl, xh, yh, nx, ny, n_partitions, mapping = spec
    return TileGrid(Space(xl, yl, xh, yh), nx, ny, n_partitions, mapping)


def _worker_cap() -> int:
    """The largest worker count the real executors will actually spawn."""
    cap = cpu_count() or 1
    try:
        cap = max(cap, int(os.environ.get(MAX_WORKERS_ENV, "")))
    except (TypeError, ValueError):
        pass
    return cap


#: Clamp messages already warned about in this process.  A serve loop
#: constructs one ``ParallelPBSM`` per query; re-warning the same clamp on
#: every request is noise, so each distinct message fires exactly once.
_WARNED_CLAMPS: Set[str] = set()


def _warn_clamp(message: str) -> None:
    """Emit a clamp ``RuntimeWarning`` exactly once per process."""
    if message in _WARNED_CLAMPS:
        return
    _WARNED_CLAMPS.add(message)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def reset_clamp_warnings() -> None:
    """Forget previously-warned clamps (tests asserting on the warning)."""
    _WARNED_CLAMPS.clear()


def _task_stripe(task: Tuple) -> Optional[Tuple[int, int]]:
    """The ``(part, n_parts)`` stripe slice of a task, if it is split."""
    if isinstance(task[1], int):  # shm form
        return (task[5], task[6]) if len(task) > 5 else None
    return (task[3], task[4]) if len(task) > 3 else None


def _run_join_task(
    internal_name: str, grid: TileGrid, task: JoinTask, dedup: str = "rpm"
) -> TaskOutcome:
    """Execute one partition-pair join with online ownership by its pid.

    ``dedup`` selects the ownership scheme: ``"rpm"`` (reference-point
    test) or ``"twolayer"`` (corner-class avoidance).  A stripe-split
    task runs only its stripe part of the scan (the numpy sweep path);
    scalar internals cannot slice, so for them the whole join belongs to
    part 0 and every other part is empty — the merged result is
    identical either way.
    """
    pid, records_left, records_right = task[0], task[1], task[2]
    stripe = _task_stripe(task)
    part = stripe[0] if stripe is not None else 0
    started = time.perf_counter()
    counters = CpuCounters()
    if internal_name == "sweep_numpy":
        join_task = rpm_join_task if dedup == "rpm" else twolayer_join_task
        pairs, suppressed = join_task(
            records_left, records_right, grid, pid, counters, stripe_slice=stripe
        )
        wall = time.perf_counter() - started
        return pid, part, pairs, suppressed, counters.as_dict(), wall

    if stripe is not None and part != 0:
        wall = time.perf_counter() - started
        return pid, part, [], 0, counters.as_dict(), wall

    if dedup == "twolayer":
        pairs = twolayer_partition_join(
            records_left,
            records_right,
            grid,
            pid,
            internal_algorithm(internal_name),
            counters,
        )
        wall = time.perf_counter() - started
        return pid, part, pairs, 0, counters.as_dict(), wall

    pairs: List[Tuple[int, int]] = []
    suppressed = 0
    refpoint_tests = 0
    partition_of_point = grid.partition_of_point

    def emit(r: Tuple, s: Tuple) -> None:
        nonlocal suppressed, refpoint_tests
        refpoint_tests += 1
        rx = r[1]
        sx = s[1]
        ry = r[4]
        sy = s[4]
        x = rx if rx >= sx else sx
        y = ry if ry <= sy else sy
        if partition_of_point(x, y) == pid:
            pairs.append((r[0], s[0]))
        else:
            suppressed += 1

    internal_algorithm(internal_name)(records_left, records_right, emit, counters)
    counters.refpoint_tests += refpoint_tests
    wall = time.perf_counter() - started
    return pid, part, pairs, suppressed, counters.as_dict(), wall


# ----------------------------------------------------------------------
# pool worker state (set once per worker by the initializer)
# ----------------------------------------------------------------------
_POOL_INTERNAL: Optional[str] = None
_POOL_GRID: Optional[TileGrid] = None
_POOL_STORE: Optional[SharedColumnarStore] = None
_POOL_DEDUP: str = "rpm"


def _pool_init(
    internal_name: str,
    grid_spec: Tuple,
    manifest: Optional[Any] = None,
    dedup: str = "rpm",
) -> None:
    """Process-pool initializer: rebuild per-worker state exactly once.

    The internal-algorithm name, the grid and the dedup mode used to be
    re-pickled into every chunk payload; all are installed here instead,
    once per worker.  With a shared-memory *manifest* the worker also
    attaches the input segment here, so chunk payloads shrink to bare
    task tuples.
    """
    global _POOL_INTERNAL, _POOL_GRID, _POOL_STORE, _POOL_DEDUP
    _POOL_INTERNAL = internal_name
    _POOL_GRID = _grid_from_spec(grid_spec)
    _POOL_STORE = (
        SharedColumnarStore.attach(manifest) if manifest is not None else None
    )
    _POOL_DEDUP = dedup


def _run_chunk(payload: bytes) -> bytes:
    """Pickle-transport worker entry point: run one chunk of join tasks.

    The payload is the pickled task list and the return value is the
    pickled :data:`ChunkOutcome` — the parent pre-serialises and
    post-deserialises both, so ``len()`` of what crosses the pool is an
    exact measurement of the bytes this transport ships.  The worker
    measures its own chunk wall time (and each task measures its own),
    because the parent cannot observe time spent inside another process —
    it only sees the fan-out's makespan.
    """
    assert _POOL_INTERNAL is not None and _POOL_GRID is not None
    tasks: List[JoinTask] = pickle.loads(payload)
    return _chunk_blob(_POOL_INTERNAL, _POOL_GRID, tasks, _POOL_DEDUP)


def _chunk_blob(
    internal_name: str, grid: TileGrid, tasks: List[JoinTask], dedup: str = "rpm"
) -> bytes:
    """Run one pickle-transport chunk and serialise its :data:`ChunkOutcome`."""
    started = time.perf_counter()
    outcomes = [_run_join_task(internal_name, grid, task, dedup) for task in tasks]
    wall = time.perf_counter() - started
    return pickle.dumps(
        (os.getpid(), wall, outcomes), pickle.HIGHEST_PROTOCOL
    )


def _run_shm_chunk(payload: bytes) -> bytes:
    """Shared-memory worker entry point: tasks are CSR slices, not records.

    Gathers each task's partition rows straight out of the attached
    segment, runs the columnar RPM kernel (or the scalar internal on a
    KPE round trip — same values either way), stores every task's
    ``(rid, sid)`` id buffers in a fresh worker-created segment, and
    ships back only the per-task metadata plus that segment's manifest.
    The parent attaches, decodes in partition order and unlinks.
    """
    assert _POOL_INTERNAL is not None and _POOL_GRID is not None
    tasks: List[ShmJoinTask] = pickle.loads(payload)
    return _shm_chunk_blob(
        _POOL_INTERNAL, _POOL_GRID, _POOL_STORE, tasks, _POOL_DEDUP
    )


def _shm_chunk_blob(
    internal_name: str,
    grid: TileGrid,
    store: Any,
    tasks: List[ShmJoinTask],
    dedup: str = "rpm",
) -> bytes:
    """Run one shared-memory chunk against *store* and serialise the blob."""
    np = require_numpy()
    started = time.perf_counter()
    metas = []
    out_arrays: Dict[str, object] = {}
    for task in tasks:
        pid, l_lo, l_hi, r_lo, r_hi = task[0], task[1], task[2], task[3], task[4]
        stripe = _task_stripe(task)
        part = stripe[0] if stripe is not None else 0
        task_started = time.perf_counter()
        counters = CpuCounters()
        a = store.gather("L", store["L.ids"][l_lo:l_hi])
        b = store.gather("R", store["R.ids"][r_lo:r_hi])
        if internal_name == "sweep_numpy":
            join_ids = rpm_join_ids if dedup == "rpm" else twolayer_join_ids
            rid, sid, suppressed = join_ids(
                a, b, grid, pid, counters, stripe_slice=stripe
            )
            counter_dict = counters.as_dict()
        else:
            record_task: Tuple = (pid, a.to_kpes(), b.to_kpes())
            if stripe is not None:
                record_task = record_task + stripe
            _, _, pairs, suppressed, counter_dict, _ = _run_join_task(
                internal_name, grid, record_task, dedup
            )
            rid = np.fromiter(
                (p[0] for p in pairs), dtype=np.int64, count=len(pairs)
            )
            sid = np.fromiter(
                (p[1] for p in pairs), dtype=np.int64, count=len(pairs)
            )
        out_arrays[f"{pid}.{part}.rid"] = rid
        out_arrays[f"{pid}.{part}.sid"] = sid
        metas.append(
            (pid, part, suppressed, counter_dict, time.perf_counter() - task_started)
        )
    wall = time.perf_counter() - started
    # Untracked on purpose: the parent unlinks after decoding (a worker
    # crashing between here and there leaks the segment — see docs).  If
    # the reply cannot even be serialised, unlink now: the parent will
    # never see the manifest, so nobody else can clean the segment up.
    results = SharedColumnarStore.create(out_arrays, track=False)
    try:
        blob = pickle.dumps(
            (os.getpid(), wall, metas, results.manifest),
            pickle.HIGHEST_PROTOCOL,
        )
    except BaseException:
        results.unlink()
        raise
    finally:
        results.close()
    return blob


# ----------------------------------------------------------------------
# dynamic-config execution (externally-owned persistent pools)
# ----------------------------------------------------------------------
#: ``(manifest, ((alias, real_prefix), ...), cache)`` — one store a
#: dynamic chunk attaches.  ``cache=True`` marks a long-lived (pinned)
#: segment the worker may keep attached across queries; ``cache=False``
#: marks a per-query segment closed again when the chunk ends.
StoreRef = Tuple[Manifest, Tuple[Tuple[str, str], ...], bool]

#: ``(internal_name, grid_spec, store_refs | None, dedup)`` — the
#: per-query configuration a dynamic chunk carries instead of relying on
#: a pool initializer.  ``store_refs=None`` selects the pickle transport.
PoolConfig = Tuple[str, Tuple, Optional[Tuple[StoreRef, ...]], str]

#: Long-lived attachments by segment name (pinned dataset segments);
#: lives in the worker process for the lifetime of the persistent pool.
_DYN_ATTACHED: Dict[str, SharedColumnarStore] = {}


def _dyn_store(
    refs: Tuple[StoreRef, ...]
) -> Tuple[Any, List[SharedColumnarStore]]:
    """Assemble the chunk's store view from *refs*.

    Returns ``(store, ephemeral)`` where *ephemeral* are the attachments
    the caller must close when the chunk is done (per-query segments);
    cached attachments stay mapped for the next query over the same
    pinned dataset — that is the amortisation a persistent pool buys.
    """
    views: List[Any] = []
    ephemeral: List[SharedColumnarStore] = []
    for manifest, aliases, cache in refs:
        name = manifest[0]
        if cache:
            attached = _DYN_ATTACHED.get(name)
            if attached is None:
                # Custody moves into the module-level cache: the segment
                # stays mapped for the pool's lifetime by design.
                attached = SharedColumnarStore.attach(manifest)  # repro-lint: disable=RPL004
                _DYN_ATTACHED[name] = attached
        else:
            # Custody moves into the returned `ephemeral` list; the
            # chunk runner closes every entry in its finally block.
            attached = SharedColumnarStore.attach(manifest)  # repro-lint: disable=RPL004
            ephemeral.append(attached)
        views.append(
            AliasedStore(attached, dict(aliases)) if aliases else attached
        )
    if len(views) == 1:
        return views[0], ephemeral
    return ChainedStore(views), ephemeral


def _run_dyn_chunk(payload: bytes) -> bytes:
    """Worker entry point for pools without a per-query initializer.

    A persistent pool (``repro serve``) outlives any single query, so
    per-query state cannot be installed by a pool initializer — it rides
    along with every chunk instead: the payload is the pickled
    ``(config, tasks)`` pair.  Grid rebuild is cheap; segment
    attachments are cached by name (pinned datasets) or scoped to the
    chunk (per-query id arrays), so repeated queries over registered
    datasets touch the big columns without ever re-mapping them.
    """
    config, tasks = pickle.loads(payload)
    internal_name, grid_spec, refs, dedup = config
    grid = _grid_from_spec(grid_spec)
    if refs is None:
        return _chunk_blob(internal_name, grid, tasks, dedup)
    store, ephemeral = _dyn_store(refs)
    try:
        return _shm_chunk_blob(internal_name, grid, store, tasks, dedup)
    finally:
        for attached in ephemeral:
            attached.close()


def _task_size(task: Tuple) -> int:
    """Joined record count of a task, in either task representation.

    A stripe-split part is charged its share of the full task: the
    stripes divide the scan, so ``size / n_parts`` is the scheduling
    estimate (the stripe plan itself decides the exact distribution).
    """
    if isinstance(task[1], int):
        size = (task[2] - task[1]) + (task[4] - task[3])
    else:
        size = len(task[1]) + len(task[2])
    stripe = _task_stripe(task)
    if stripe is not None:
        size = max(1, size // stripe[1])
    return size


def _task_key(task: Tuple) -> Tuple[int, int]:
    """Deterministic ``(pid, part)`` identity of a task."""
    stripe = _task_stripe(task)
    return task[0], (stripe[0] if stripe is not None else 0)


def _split_tasks(tasks: List, workers: int) -> List:
    """Stripe-split oversized tasks so no single task dominates.

    A task whose joined size exceeds ``STRIPE_SPLIT_FACTOR`` times the
    mean (and the absolute floor) is replaced by ``n_parts`` stripe-part
    tasks carrying the same data plus ``(part, n_parts)``.  Each part
    recomputes the identical stripe plan and runs only its stripe range,
    so concatenating the parts in order reproduces the unsplit output
    bit for bit.
    """
    if not tasks:
        return tasks
    sizes = [_task_size(t) for t in tasks]
    mean = sum(sizes) / len(sizes)
    threshold = max(STRIPE_SPLIT_FACTOR * mean, float(STRIPE_SPLIT_MIN_RECORDS))
    out: List = []
    for task, size in zip(tasks, sizes):
        if size <= threshold:
            out.append(task)
            continue
        denom = max(mean, float(STRIPE_SPLIT_MIN_RECORDS))
        n_parts = min(
            STRIPE_SPLIT_MAX_PARTS,
            max(2, workers, int(-(-size // denom))),
        )
        for part in range(n_parts):
            out.append(task + (part, n_parts))
    return out


def _chunk_tasks(tasks: List, n_chunks: int) -> List[List]:
    """Pack tasks into *n_chunks* LPT-balanced chunks (by joined size)."""
    sized = sorted(
        tasks, key=lambda t: (-_task_size(t),) + _task_key(t)
    )
    chunks: List[List] = [[] for _ in range(n_chunks)]
    loads = [0] * n_chunks
    for task in sized:
        idx = min(range(n_chunks), key=loads.__getitem__)
        chunks[idx].append(task)
        loads[idx] += _task_size(task)
    return [chunk for chunk in chunks if chunk]


def _steal_units(tasks: List, workers: int) -> List[List]:
    """Largest-first dispatch units for the work-stealing scheduler.

    Big tasks travel solo so the queue can hand them out one at a time;
    small tasks are packed together until they reach the target unit
    size, so dispatch overhead stays bounded.  Units come back sorted
    largest-first — the dispatch order of the shared queue.
    """
    sized = sorted(tasks, key=lambda t: (-_task_size(t),) + _task_key(t))
    total = sum(_task_size(t) for t in tasks)
    target = max(1, total // max(1, workers * CHUNKS_PER_WORKER))
    units: List[List] = []
    current: List = []
    current_size = 0
    for task in sized:
        size = _task_size(task)
        if size >= target:
            units.append([task])
            continue
        current.append(task)
        current_size += size
        if current_size >= target:
            units.append(current)
            current = []
            current_size = 0
    if current:
        units.append(current)
    return units


def _unit_sizes(units: List[List]) -> List[float]:
    return [float(sum(_task_size(t) for t in unit)) for unit in units]


class ParallelPBSM:
    """PBSM with the join phase spread over *workers* workers.

    ``executor="simulated"`` runs sequentially and *models* the parallel
    runtime; ``executor="process"`` actually fans the join tasks out over
    a process pool and ``executor="thread"`` over a thread pool (numpy
    releases the GIL inside the vectorized kernel, so threads scale on
    the ``sweep_numpy`` path with zero spawn or pickling cost).  All
    executors produce identical result pairs in identical order, and all
    report the same simulated costs — the real executors additionally
    deliver wall-clock speedup on multicore hardware.

    ``scheduler`` selects the task-dispatch policy (``"stealing"``
    default, ``"static"`` for the classic up-front LPT chunking) and
    gates stripe splitting of oversized tasks — see the module
    docstring.  ``dedup`` selects the online ownership scheme —
    ``"rpm"`` (per-pair reference-point test) or ``"twolayer"``
    (corner-class avoidance with zero per-pair work); the offline
    ``"sort"`` mode is rejected because it would serialise the join
    behind a global sorting phase.  ``shared_memory=True`` switches the
    process executor to the zero-copy transport; out-of-range worker
    counts are clamped with a :class:`RuntimeWarning` (once per process
    per distinct clamp) instead of raising or silently oversubscribing
    the machine.
    """

    def __init__(
        self,
        memory_bytes: int,
        workers: int = 4,
        *,
        internal: str = "sweep_trie",
        executor: str = "simulated",
        scheduler: str = "stealing",
        shared_memory: bool = False,
        dedup: str = "rpm",
        t_factor: float = 1.2,
        tiles_per_partition: int = 4,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Any] = None,
        pool: Optional[Any] = None,
        pinned: Optional[Tuple[Manifest, Manifest]] = None,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if dedup not in PARALLEL_DEDUP_MODES:
            raise ValueError(
                f"ParallelPBSM dedup must be one of {PARALLEL_DEDUP_MODES}, "
                f"got {dedup!r}: offline sort-based removal would serialise "
                "the join behind a global sorting phase (use the sequential "
                "PBSM driver for dedup='sort')"
            )
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if workers < 1:
            _warn_clamp(f"workers={workers} is below 1; clamped to 1")
            workers = 1
        if executor in ("process", "thread"):
            cap = _worker_cap()
            if workers > cap:
                _warn_clamp(
                    f"workers={workers} exceeds the usable CPU count ({cap}); "
                    f"clamped to {cap} (set {MAX_WORKERS_ENV} to allow "
                    "oversubscription)"
                )
                workers = cap
        self.memory_bytes = memory_bytes
        self.workers = workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.executor = executor
        self.scheduler = scheduler
        self.shared_memory = shared_memory
        self.dedup = dedup
        self.t_factor = t_factor
        self.tiles_per_partition = tiles_per_partition
        self.cost_model = cost_model or CostModel()
        #: An externally-owned (persistent) process pool.  When set, the
        #: fan-out submits dynamic-config chunks to it instead of
        #: spawning a pool per run — the ``repro serve`` path, where the
        #: pool outlives every query.  The caller owns its lifecycle.
        self.pool = pool
        #: Manifests of pinned left/right dataset segments (columns under
        #: the neutral ``D.*`` prefix).  With the shared-memory transport
        #: and an external pool, the per-query segment then carries only
        #: the CSR id arrays — the relation columns are never re-shipped.
        self.pinned = pinned

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        # The zero-copy transport needs a real pool (workers > 1), the
        # columnar backend, and working platform shared memory; anything
        # else silently degrades to the pickle/in-process paths, which
        # produce byte-identical output.
        use_shm = (
            self.shared_memory
            and self.executor == "process"
            and self.workers > 1
            and shm_enabled()
        )
        # RPM stays untagged (the historical spelling); avoidance is
        # surfaced so reports and traces show which scheme owned pairs.
        dedup_tag = "" if self.dedup == "rpm" else ",2L"
        stats = JoinStats(
            algorithm=(
                f"ParallelPBSM({self.internal_name}{dedup_tag},"
                f"W={self.workers})"
            ),
            backend=(
                active_backend() if self.internal_name == "sweep_numpy" else ""
            ),
            executor=self.executor,
            shared_memory=use_shm,
            n_left=len(left),
            n_right=len(right),
            n_workers=self.workers,
            scheduler=self.scheduler,
        )
        pairs: List[Tuple[int, int]] = []
        if not left or not right:
            return JoinResult(pairs=pairs, stats=stats)
        cost = self.cost_model
        kpe_bytes = cost.kpe_bytes
        space = Space.of(left, right)
        n_partitions = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        # At least one task per worker, or parallelism is wasted.
        n_partitions = max(n_partitions, self.workers)
        grid = TileGrid.for_partitions(
            space, n_partitions, self.tiles_per_partition
        )
        stats.n_partitions = n_partitions

        tracer = self.tracer
        with tracer.span(
            "parallel_pbsm",
            kind=KIND_RUN,
            internal=self.internal_name,
            dedup=self.dedup,
            executor=self.executor,
            scheduler=self.scheduler,
            workers=self.workers,
            shared_memory=use_shm,
            backend=stats.backend or None,
        ):
            # --- sequential partitioning phase -----------------------------
            emit = "ids" if use_shm else "records"
            disk = SimulatedDisk(cost)
            part_cpu = CpuCounters()
            with tracer.span(PHASE_PARTITION, cpu=part_cpu, disk=disk) as sp:
                with disk.phase(PHASE_PARTITION):
                    left_files, n_left_written = partition_relation(
                        left, grid, disk, kpe_bytes, part_cpu, "R", emit=emit
                    )
                    right_files, n_right_written = partition_relation(
                        right, grid, disk, kpe_bytes, part_cpu, "S", emit=emit
                    )
                stats.records_partitioned = n_left_written + n_right_written
                stats.replicas_created = (
                    stats.records_partitioned - len(left) - len(right)
                )
                partition_seconds = cost.io_seconds(
                    disk.total_units()
                ) + cost.cpu_seconds(part_cpu)
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            with tracer.span(PHASE_JOIN) as sp:
                # --- materialise the join tasks (reads are charged) --------
                # Record tasks carry the records themselves; shm tasks
                # carry CSR slices into the concatenated id arrays.  The
                # files hold the same counts either way, so the charged
                # reads are identical.
                tasks: List = []
                ids_left: List[int] = []
                ids_right: List[int] = []
                task_io_units: Dict[int, float] = {}
                for pid in range(n_partitions):
                    file_left = left_files[pid]
                    file_right = right_files[pid]
                    if not file_left.n_records or not file_right.n_records:
                        continue
                    pair_bytes = file_left.n_bytes + file_right.n_bytes
                    if pair_bytes > self.memory_bytes:
                        stats.memory_overruns += 1
                    if pair_bytes > stats.peak_memory_bytes:
                        stats.peak_memory_bytes = pair_bytes
                    task_disk = SimulatedDisk(cost)
                    # Rebind so the join-phase reads are charged to this
                    # task (they used to land on the partition disk's
                    # default phase, zeroing every task's I/O share).
                    file_left.disk = task_disk
                    file_right.disk = task_disk
                    with task_disk.phase(PHASE_JOIN):
                        records_left = file_left.read_all()
                        records_right = file_right.read_all()
                    if use_shm:
                        l_lo = len(ids_left)
                        ids_left.extend(records_left)
                        r_lo = len(ids_right)
                        ids_right.extend(records_right)
                        tasks.append(
                            (pid, l_lo, len(ids_left), r_lo, len(ids_right))
                        )
                    else:
                        tasks.append((pid, records_left, records_right))
                    task_io_units[pid] = task_disk.total_units()

                # --- stripe-split oversized tasks --------------------------
                # Only the stealing scheduler splits (static stays the
                # unchanged baseline), and only the vectorized sweep can
                # execute a stripe range.  Splitting never changes the
                # output: parts merge back in (pid, part) order.
                if (
                    self.scheduler == "stealing"
                    and self.workers > 1
                    and self.internal_name == "sweep_numpy"
                    and numpy_enabled()
                ):
                    tasks = _split_tasks(tasks, self.workers)

                # --- execute the tasks -------------------------------------
                if use_shm:
                    outcomes = self._execute_shm(
                        tasks, grid, stats, left, right, ids_left, ids_right
                    )
                else:
                    outcomes = self._execute(tasks, grid, stats)

                # --- deterministic merge in (pid, part) order --------------
                task_costs: List[float] = []
                join_cpu_total = CpuCounters()
                join_units_total = 0.0
                suppressed_total = 0
                parts_per_pid: Dict[int, int] = {}
                for outcome in outcomes:
                    parts_per_pid[outcome[0]] = parts_per_pid.get(outcome[0], 0) + 1
                for pid, part, task_pairs, suppressed, counter_dict, _wall in (
                    sorted(outcomes, key=lambda o: (o[0], o[1]))
                ):
                    pairs.extend(task_pairs)
                    suppressed_total += suppressed
                    task_cpu = CpuCounters(**counter_dict)
                    # A split task's I/O (the partition files are read
                    # once, in the parent, before the fan-out) is
                    # amortised evenly across the parts it feeds.
                    units = task_io_units[pid] / parts_per_pid[pid]
                    task_costs.append(
                        cost.io_seconds(units) + cost.cpu_seconds(task_cpu)
                    )
                    join_cpu_total.add(task_cpu)
                    join_units_total += units
                stats.duplicates_suppressed = suppressed_total
                sp.add_counters(join_cpu_total.as_dict())
                sp.add_counters({"io_units": join_units_total})
                if stats.ipc_bytes_shipped or stats.ipc_seconds:
                    sp.add_counters(
                        {
                            "bytes_shipped": stats.ipc_bytes_shipped,
                            "ipc_seconds": stats.ipc_seconds,
                        }
                    )
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

            # --- LPT scheduling onto W workers --------------------------
            makespan, _loads = lpt_schedule(task_costs, self.workers)
            stats.n_results = len(pairs)
            stats.io_units_by_phase = {
                PHASE_PARTITION: disk.total_units(),
                PHASE_JOIN: join_units_total,
            }
            stats.cpu_by_phase = {
                PHASE_PARTITION: part_cpu.as_dict(),
                PHASE_JOIN: join_cpu_total.as_dict(),
            }
            # The *parallel* simulated runtime:
            stats.sim_io_seconds = cost.io_seconds(disk.total_units())
            stats.sim_cpu_seconds = makespan  # join tasks dominated by makespan
            stats.sim_seconds_by_phase = {
                PHASE_PARTITION: partition_seconds,
                PHASE_JOIN: makespan,
            }
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def _execute(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Run every join task under the configured executor.

        Besides the outcomes this fills in the parallel timing fields of
        *stats*: ``join_busy_seconds`` (sum of per-task wall seconds, as
        measured where the task ran) and ``join_makespan_seconds`` (the
        fan-out elapsed time observed here, in the parent).
        """
        if not tasks:
            return []
        if self.executor == "process" and self.workers > 1:
            outcomes = self._execute_process(tasks, grid, stats)
        elif self.executor == "thread" and self.workers > 1:
            outcomes = self._execute_thread(tasks, grid, stats)
        else:
            # Simulated mode and the workers=1 degenerate case share the
            # in-process loop; no pool is spawned.
            tracer = self.tracer
            started = time.perf_counter()
            outcomes = []
            for task in tasks:
                outcome = _run_join_task(
                    self.internal_name, grid, task, self.dedup
                )
                outcomes.append(outcome)
                if tracer.recording:
                    tracer.add_span(
                        "task",
                        outcome[5],
                        kind=KIND_TASK,
                        counters=outcome[4],
                        pid=outcome[0],
                        part=outcome[1],
                    )
            stats.join_makespan_seconds = time.perf_counter() - started
        stats.join_busy_seconds = sum(outcome[5] for outcome in outcomes)
        return outcomes

    def _drain(
        self,
        pool: Any,
        run_fn: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> List[Any]:
        """Run *payloads* on *pool*, honouring the configured scheduler.

        ``static`` maps the pre-packed chunks over the pool up front.
        ``stealing`` keeps the (largest-first) payload queue in the
        parent and submits the head to whichever worker slot frees up
        first — completion-driven dispatch, the executor-level
        realisation of idle workers stealing the next-largest task.
        Results come back indexed by payload order either way.
        """
        if self.scheduler != "stealing":
            return list(pool.map(run_fn, payloads))
        from concurrent.futures import FIRST_COMPLETED, wait

        results: List[Any] = [None] * len(payloads)
        pending: Dict[Any, int] = {}
        next_idx = 0
        while next_idx < len(payloads) and len(pending) < self.workers:
            future = pool.submit(run_fn, payloads[next_idx])
            pending[future] = next_idx
            next_idx += 1
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                idx = pending.pop(future)
                results[idx] = future.result()
                if next_idx < len(payloads):
                    queued = pool.submit(run_fn, payloads[next_idx])
                    pending[queued] = next_idx
                    next_idx += 1
        return results

    def _units(self, tasks: List) -> List[List]:
        """Dispatch units for one fan-out, per the configured scheduler."""
        if self.scheduler == "stealing":
            return _steal_units(tasks, self.workers)
        n_chunks = min(len(tasks), self.workers * CHUNKS_PER_WORKER)
        return _chunk_tasks(tasks, n_chunks)

    def _emit_pool_spans(
        self,
        stats: JoinStats,
        chunk_reports: List[ChunkReport],
    ) -> None:
        """Worker/task spans and per-worker busy totals for one fan-out.

        ``chunk_reports`` rows are ``(worker_label, chunk_wall,
        task_outcomes, chunk_bytes)``; ``chunk_bytes`` (payload out plus
        result blob in) lands on the worker span as a ``bytes_shipped``
        counter, so traces attribute the IPC volume next to the time.
        Also derives ``scheduler_idle_seconds`` — the worker-seconds the
        fan-out paid for but did not fill (``makespan x W - busy``).
        """
        tracer = self.tracer
        busy_by_worker: Dict[str, float] = {}
        for chunk_idx, (label, chunk_wall, task_outcomes, chunk_bytes) in (
            enumerate(chunk_reports)
        ):
            busy_by_worker[label] = busy_by_worker.get(label, 0.0) + chunk_wall
            if tracer.recording:
                worker_span = tracer.add_span(
                    "worker",
                    chunk_wall,
                    kind=KIND_WORKER,
                    worker=label,
                    chunk=chunk_idx,
                    tasks=len(task_outcomes),
                    counters={"bytes_shipped": chunk_bytes},
                )
                for pid, part, _pairs, _suppressed, counter_dict, task_wall in (
                    task_outcomes
                ):
                    tracer.add_span(
                        "task",
                        task_wall,
                        kind=KIND_TASK,
                        parent_id=worker_span.span_id,
                        counters=counter_dict,
                        pid=pid,
                        part=part,
                        worker=label,
                    )
        stats.worker_busy_seconds = busy_by_worker
        stats.scheduler_idle_seconds = max(
            0.0,
            stats.join_makespan_seconds * self.workers
            - sum(busy_by_worker.values()),
        )

    def _execute_process(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Fan the tasks out over a process pool via the pickle transport.

        The parent pre-pickles every chunk payload and unpickles every
        result blob itself, so ``stats.ipc_bytes_shipped`` counts the
        exact bytes crossing the pool (re-pickling a ``bytes`` payload is
        a memcpy) and ``stats.ipc_seconds`` is the measured
        serialisation time the transport costs on top of the join work.
        """
        from concurrent.futures import ProcessPoolExecutor

        chunks = self._units(tasks)
        encode_started = time.perf_counter()
        if self.pool is not None:
            config: PoolConfig = (
                self.internal_name,
                _grid_spec(grid),
                None,
                self.dedup,
            )
            payloads = [
                pickle.dumps((config, chunk), pickle.HIGHEST_PROTOCOL)
                for chunk in chunks
            ]
        else:
            payloads = [
                pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL) for chunk in chunks
            ]
        ipc_seconds = time.perf_counter() - encode_started
        bytes_shipped = sum(len(p) for p in payloads)

        started = time.perf_counter()
        if self.pool is not None:
            # Persistent pool: no spawn, no initializer — the config
            # rides inside each chunk payload instead.
            blobs = cast(
                List[bytes], self._drain(self.pool, _run_dyn_chunk, payloads)
            )
        else:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=(self.internal_name, _grid_spec(grid), None, self.dedup),
            ) as pool:
                blobs = cast(
                    List[bytes], self._drain(pool, _run_chunk, payloads)
                )
        stats.join_makespan_seconds = time.perf_counter() - started

        decode_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        chunk_reports: List[ChunkReport] = []
        executed_by: List[str] = []
        for payload, blob in zip(payloads, blobs):
            worker_pid, chunk_wall, task_outcomes = pickle.loads(blob)
            bytes_shipped += len(blob)
            outcomes.extend(task_outcomes)
            executed_by.append(f"pid-{worker_pid}")
            chunk_reports.append(
                (
                    f"pid-{worker_pid}",
                    chunk_wall,
                    task_outcomes,
                    len(payload) + len(blob),
                )
            )
        ipc_seconds += time.perf_counter() - decode_started
        stats.ipc_bytes_shipped = bytes_shipped
        stats.ipc_seconds = ipc_seconds
        if self.scheduler == "stealing":
            stats.tasks_stolen = count_steals(
                _unit_sizes(chunks), executed_by, self.workers
            )
        self._emit_pool_spans(stats, chunk_reports)
        return outcomes

    def _execute_thread(
        self, tasks: List[JoinTask], grid: TileGrid, stats: JoinStats
    ) -> List[TaskOutcome]:
        """Fan the tasks out over a thread pool — no spawn, no pickling.

        The vectorized kernel releases the GIL inside numpy, so the scan
        work genuinely overlaps; everything stays in one address space,
        so ``ipc_bytes_shipped`` is rightfully zero and pinned segments
        (or any caller-held arrays) are shared for free.  Worker labels
        are thread names normalised to ``thread-N`` in first-appearance
        order.
        """
        from concurrent.futures import ThreadPoolExecutor

        units = self._units(tasks)
        internal_name = self.internal_name
        dedup = self.dedup

        def run_unit(unit: List[JoinTask]) -> Tuple[str, float, List[TaskOutcome]]:
            unit_started = time.perf_counter()
            unit_outcomes = [
                _run_join_task(internal_name, grid, task, dedup) for task in unit
            ]
            wall = time.perf_counter() - unit_started
            return threading.current_thread().name, wall, unit_outcomes

        started = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-join"
        ) as pool:
            reports = cast(
                List[Tuple[str, float, List[TaskOutcome]]],
                self._drain(pool, run_unit, units),
            )
        stats.join_makespan_seconds = time.perf_counter() - started

        outcomes: List[TaskOutcome] = []
        chunk_reports: List[ChunkReport] = []
        labels: Dict[str, str] = {}
        executed_by: List[str] = []
        for thread_name, unit_wall, unit_outcomes in reports:
            label = labels.setdefault(thread_name, f"thread-{len(labels)}")
            outcomes.extend(unit_outcomes)
            executed_by.append(label)
            chunk_reports.append((label, unit_wall, unit_outcomes, 0))
        if self.scheduler == "stealing":
            stats.tasks_stolen = count_steals(
                _unit_sizes(units), executed_by, self.workers
            )
        self._emit_pool_spans(stats, chunk_reports)
        return outcomes

    def _execute_shm(
        self,
        tasks: List[ShmJoinTask],
        grid: TileGrid,
        stats: JoinStats,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        ids_left: List[int],
        ids_right: List[int],
    ) -> List[TaskOutcome]:
        """Fan the tasks out via the zero-copy shared-memory transport.

        Loads both inputs once into a columnar segment (plus the CSR id
        arrays the partitioner emitted), ships five-integer tasks (seven
        with a stripe part), and decodes worker-returned ``(rid, sid)``
        id buffers in ``(pid, part)`` order — so the merged output is
        byte-identical to the pickle transport and to sequential
        execution.  Segment build, payload encode and result decode all
        count into ``stats.ipc_seconds``; only the pipe traffic counts
        into ``stats.ipc_bytes_shipped``.
        """
        from concurrent.futures import ProcessPoolExecutor

        if not tasks:
            return []
        np = require_numpy()
        stats.join_busy_seconds = 0.0

        encode_started = time.perf_counter()
        from repro.kernels.columnar import ColumnarRelation

        pinned_refs: List[StoreRef] = []
        arrays: Dict[str, object] = {}
        if self.pool is not None and self.pinned is not None:
            # The relation columns already live in pinned registry
            # segments; the per-query segment carries only the CSR id
            # arrays, so a query's segment-build cost is O(partitioned
            # ids), not O(data).
            l_manifest, r_manifest = self.pinned
            pinned_refs = [
                (l_manifest, (("L", "D"),), True),
                (r_manifest, (("R", "D"),), True),
            ]
        else:
            arrays = columnar_arrays("L", ColumnarRelation.from_kpes(left))
            arrays.update(
                columnar_arrays("R", ColumnarRelation.from_kpes(right))
            )
        arrays["L.ids"] = np.asarray(ids_left, dtype=np.int64)
        arrays["R.ids"] = np.asarray(ids_right, dtype=np.int64)
        chunks = self._units(tasks)

        with SharedColumnarStore.create(arrays) as store:
            if self.pool is not None:
                config: PoolConfig = (
                    self.internal_name,
                    _grid_spec(grid),
                    tuple(pinned_refs) + ((store.manifest, (), False),),
                    self.dedup,
                )
                payloads = [
                    pickle.dumps((config, chunk), pickle.HIGHEST_PROTOCOL)
                    for chunk in chunks
                ]
            else:
                payloads = [
                    pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL)
                    for chunk in chunks
                ]
            bytes_shipped = sum(len(p) for p in payloads)
            ipc_seconds = time.perf_counter() - encode_started
            started = time.perf_counter()
            if self.pool is not None:
                blobs = cast(
                    List[bytes],
                    self._drain(self.pool, _run_dyn_chunk, payloads),
                )
            else:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_init,
                    initargs=(
                        self.internal_name,
                        _grid_spec(grid),
                        store.manifest,
                        self.dedup,
                    ),
                ) as pool:
                    blobs = cast(
                        List[bytes], self._drain(pool, _run_shm_chunk, payloads)
                    )
            stats.join_makespan_seconds = time.perf_counter() - started

            decode_started = time.perf_counter()
            outcomes: List[TaskOutcome] = []
            chunk_reports: List[ChunkReport] = []
            executed_by: List[str] = []
            for payload, blob in zip(payloads, blobs):
                worker_pid, chunk_wall, metas, manifest = pickle.loads(blob)
                bytes_shipped += len(blob)
                results = SharedColumnarStore.attach(manifest)
                try:
                    task_outcomes: List[TaskOutcome] = []
                    for pid, part, suppressed, counter_dict, task_wall in metas:
                        task_pairs = list(
                            zip(
                                results[f"{pid}.{part}.rid"].tolist(),
                                results[f"{pid}.{part}.sid"].tolist(),
                            )
                        )
                        task_outcomes.append(
                            (
                                pid,
                                part,
                                task_pairs,
                                suppressed,
                                counter_dict,
                                task_wall,
                            )
                        )
                finally:
                    results.close()
                    results.unlink()
                outcomes.extend(task_outcomes)
                executed_by.append(f"pid-{worker_pid}")
                chunk_reports.append(
                    (
                        f"pid-{worker_pid}",
                        chunk_wall,
                        task_outcomes,
                        len(payload) + len(blob),
                    )
                )
            ipc_seconds += time.perf_counter() - decode_started
        stats.ipc_bytes_shipped = bytes_shipped
        stats.ipc_seconds = ipc_seconds
        stats.join_busy_seconds = sum(outcome[5] for outcome in outcomes)
        if self.scheduler == "stealing":
            stats.tasks_stolen = count_steals(
                _unit_sizes(chunks), executed_by, self.workers
            )
        self._emit_pool_spans(stats, chunk_reports)
        return outcomes


__all__ = [
    "CHUNKS_PER_WORKER",
    "EXECUTORS",
    "MAX_WORKERS_ENV",
    "PARALLEL_DEDUP_MODES",
    "ParallelPBSM",
    "SCHEDULERS",
    "STRIPE_SPLIT_FACTOR",
    "STRIPE_SPLIT_MAX_PARTS",
    "STRIPE_SPLIT_MIN_RECORDS",
    "lpt_schedule",
    "reset_clamp_warnings",
]
