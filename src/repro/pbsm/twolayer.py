"""Two-layer corner-class duplicate *avoidance* for PBSM (``dedup="twolayer"``).

The paper's two duplicate strategies both pay per pair: ``dedup="sort"``
materialises every candidate and sorts, ``dedup="rpm"`` runs a reference
point test on every detected pair.  Two-layer space-oriented partitioning
(Tsitsigkos et al.) removes the per-pair cost entirely: inside each tile,
every replicated rectangle is classified once by where its *low* corners
fall —

* class **A** — both low corners inside the tile (its home tile),
* class **B** — the x-low corner is in a tile to the left,
* class **C** — the y-low corner is in a tile below,
* class **D** — both low corners outside (left *and* below),

and then only the cross-class mini-joins of :data:`MINI_JOIN_SCHEDULE` are
executed.  The schedule is exactly the set of class combinations for which
the intersection's bottom-left corner ``(max(r.xl, s.xl), max(r.yl, s.yl))``
provably lies in the tile: per axis, the clamped tile index is monotone, so
``tile_x(max(r.xl, s.xl)) == tx`` iff at least one of the two rectangles has
its x-low corner inside the tile's x-slab (class A or C), and symmetrically
for y.  Enumerating the sixteen ordered class pairs under
``(r.ax or s.ax) and (r.ay or s.ay)`` leaves the nine combinations below —
each intersecting pair therefore surfaces in *exactly one* mini-join of
*exactly one* tile, with zero reference-point tests and zero sorting.

Ownership by the intersection's **bottom-left** corner (RPM uses the
top-left) also settles every degenerate case: a point MBR's home tile is
the only tile it overlaps, so it is always class A, and the owner tile of
any pair contains a real point of both rectangles — ownership can never
escape the tiles the pair actually intersects.

This module is the scalar engine (pluggable internal algorithms, the same
registry the sequential driver uses); :mod:`repro.kernels.twolayer` is the
vectorized columnar variant.  Both own pairs identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.pbsm.grid import TileGrid

#: Corner classes, indexed by ``(x_low_outside) + 2 * (y_low_outside)``.
CLASS_A, CLASS_B, CLASS_C, CLASS_D = 0, 1, 2, 3

#: Class names for display and tests.
CORNER_CLASSES = ("A", "B", "C", "D")

#: The nine ordered ``(left_class, right_class)`` mini-joins whose pairs
#: are owned by the tile (see the module docstring for the derivation).
#: Grouped A-side first so the common case (A x everything) runs first.
MINI_JOIN_SCHEDULE: Tuple[Tuple[int, int], ...] = (
    (CLASS_A, CLASS_A),
    (CLASS_A, CLASS_B),
    (CLASS_A, CLASS_C),
    (CLASS_A, CLASS_D),
    (CLASS_B, CLASS_A),
    (CLASS_B, CLASS_C),
    (CLASS_C, CLASS_A),
    (CLASS_C, CLASS_B),
    (CLASS_D, CLASS_A),
)

#: Scalar structure operations charged per (record, tile) visit of the
#: classification walk (tile step + partition filter).
CLASSIFY_OPS_PER_VISIT = 1

#: Scalar structure operations charged per kept replica — the two corner
#: comparisons that assign its class.
CLASSIFY_OPS_PER_REPLICA = 2

#: An internal join algorithm from the :mod:`repro.internal` registry.
InternalAlgorithm = Callable[
    [Sequence[Tuple], Sequence[Tuple], Callable[[Tuple, Tuple], None], CpuCounters],
    None,
]

#: Per-tile class groups: four record lists indexed by corner class.
TileGroups = Dict[Tuple[int, int], List[List[Tuple]]]


def bottom_left_refpoint(r: Tuple, s: Tuple) -> Tuple[float, float]:
    """The intersection's bottom-left corner — two-layer's ownership point.

    Mirrors :func:`repro.core.refpoint.reference_point` (which uses the
    top-left corner); both are points of ``r ∩ s``, so either defines a
    consistent exactly-once ownership.  Two-layer uses the bottom-left
    corner because it is the corner the classes are built from.
    """
    return (
        r[1] if r[1] >= s[1] else s[1],
        r[2] if r[2] >= s[2] else s[2],
    )


def corner_class(grid: TileGrid, kpe: Tuple, tx: int, ty: int) -> int:
    """The corner class of *kpe* relative to tile ``(tx, ty)``.

    The home tile (the tile of the low corner) can never be above or to
    the right of a tile the rectangle overlaps, so two comparisons decide
    the class.
    """
    hx, hy = grid.tile_of_point(kpe[1], kpe[2])
    return (1 if hx < tx else 0) + (2 if hy < ty else 0)


def classify_tiles(
    records: Sequence[Tuple],
    grid: TileGrid,
    pid: int,
    counters: CpuCounters,
) -> TileGroups:
    """Group *records* by (tile, corner class) over partition *pid*'s tiles.

    A partition file stores each record once even when it overlaps several
    of the partition's tiles, so the classification re-expands it: every
    overlapped tile mapped to *pid* receives the record in the class its
    low corners dictate.  Tile walk and class comparisons are charged as
    ``structure_ops`` (this is the scalar engine; the vectorized variant
    charges ``batch_ops``).
    """
    groups: TileGroups = {}
    partition_of_tile = grid.partition_of_tile
    tile_of_point = grid.tile_of_point
    visits = 0
    kept = 0
    for rec in records:
        hx, hy = tile_of_point(rec[1], rec[2])
        txh, tyh = tile_of_point(rec[3], rec[4])
        for ty in range(hy, tyh + 1):
            for tx in range(hx, txh + 1):
                visits += 1
                if partition_of_tile(tx, ty) != pid:
                    continue
                kept += 1
                cls = (1 if hx < tx else 0) + (2 if hy < ty else 0)
                tile = groups.get((tx, ty))
                if tile is None:
                    tile = [[], [], [], []]
                    groups[(tx, ty)] = tile
                tile[cls].append(rec)
    counters.structure_ops += (
        CLASSIFY_OPS_PER_VISIT * visits + CLASSIFY_OPS_PER_REPLICA * kept
    )
    return groups


def twolayer_partition_join(
    records_left: Sequence[Tuple],
    records_right: Sequence[Tuple],
    grid: TileGrid,
    pid: int,
    internal: InternalAlgorithm,
    counters: CpuCounters,
) -> List[Tuple[int, int]]:
    """One partition-pair join with two-layer duplicate avoidance.

    Classifies both sides over the partition's tiles, then runs the nine
    cross-class mini-joins of :data:`MINI_JOIN_SCHEDULE` per tile with the
    pluggable *internal* algorithm.  Every emitted pair is owned by its
    tile by construction — there is no per-pair test and nothing to
    suppress, which is the whole point of the scheme.

    Tiles run in ``(tx, ty)`` order, mini-joins in schedule order, so the
    output order is deterministic for a given internal algorithm.
    """
    left_groups = classify_tiles(records_left, grid, pid, counters)
    right_groups = classify_tiles(records_right, grid, pid, counters)
    pairs: List[Tuple[int, int]] = []

    def emit(r: Tuple, s: Tuple) -> None:
        pairs.append((r[0], s[0]))

    # A pair's owner tile contains a point of both rectangles, so both
    # sides are replicated there — tiles present on one side only cannot
    # own anything.
    for tile in sorted(set(left_groups) & set(right_groups)):
        lg = left_groups[tile]
        rg = right_groups[tile]
        for left_cls, right_cls in MINI_JOIN_SCHEDULE:
            if lg[left_cls] and rg[right_cls]:
                internal(lg[left_cls], rg[right_cls], emit, counters)
    return pairs


__all__ = [
    "CLASSIFY_OPS_PER_REPLICA",
    "CLASSIFY_OPS_PER_VISIT",
    "CORNER_CLASSES",
    "MINI_JOIN_SCHEDULE",
    "bottom_left_refpoint",
    "classify_tiles",
    "corner_class",
    "twolayer_partition_join",
]
