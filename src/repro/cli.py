"""Command-line interface: generate datasets and run spatial joins.

Usage examples::

    python -m repro generate --pattern tiger --n 20000 --seed 1 roads.npy
    python -m repro generate --pattern manhattan --n 20000 streets.csv
    python -m repro join roads.npy streets.csv --method pbsm \\
        --memory-mb 2.5 --internal sweep_trie --out pairs.csv
    python -m repro join roads.npy streets.csv --method auto
    python -m repro explain roads.npy streets.csv --memory-mb 2.5
    python -m repro info roads.npy

The bench CLI lives separately under ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

from repro import SPATIAL_JOIN_METHODS, spatial_join
from repro.core.report import format_stats, stats_to_dict
from repro.datasets import (
    clustered_rects,
    coverage,
    polyline_mbrs,
    summarize,
    uniform_rects,
)
from repro.datasets.fileio import load_relation, save_relation
from repro.datasets.patterns import manhattan_grid, mixed_scale, radial_city
from repro.io.costmodel import mb

PATTERNS = {
    "tiger": polyline_mbrs,
    "uniform": uniform_rects,
    "clustered": clustered_rects,
    "manhattan": manhattan_grid,
    "radial": radial_city,
    "mixed": mixed_scale,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = PATTERNS[args.pattern]
    kpes = generator(args.n, seed=args.seed, start_oid=args.start_oid)
    save_relation(kpes, args.output)
    print(
        f"wrote {len(kpes):,} MBRs ({args.pattern}, seed {args.seed}, "
        f"coverage {coverage(kpes):.4f}) to {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    kpes = load_relation(args.relation)
    summary = summarize(Path(args.relation).name, kpes)
    print(f"relation:  {summary.name}")
    print(f"records:   {summary.n_mbrs:,}")
    print(f"coverage:  {summary.coverage:.4f}")
    print(f"avg width: {summary.avg_width:.6f}")
    print(f"avg height:{summary.avg_height:.6f}")
    return 0


def _load_pair(left_path: str, right_path: str):
    """Load both relations, reusing one load for a self-join.

    Paths are compared resolved, so ``./a.npy`` vs ``a.npy`` (or a
    symlink) still load the relation once.
    """
    left = load_relation(left_path)
    if Path(right_path).resolve() == Path(left_path).resolve():
        return left, left
    return left, load_relation(right_path)


def _cmd_join(args: argparse.Namespace) -> int:
    left, right = _load_pair(args.left, args.right)
    kwargs = {}
    if args.internal:
        kwargs["internal"] = args.internal
    if args.dedup:
        kwargs["dedup"] = args.dedup
    if args.method == "auto" and kwargs:
        print(
            "note: --internal/--dedup are ignored with --method auto "
            "(the planner chooses them)",
            file=sys.stderr,
        )
        kwargs = {}
    if args.workers is not None:
        if args.method not in ("pbsm", "auto"):
            parser_error = "--workers requires --method pbsm or auto"
            print(f"error: {parser_error}", file=sys.stderr)
            return 2
        kwargs.pop("dedup", None)  # parallel PBSM is always RPM
        kwargs["workers"] = args.workers
    if args.shm:
        if args.workers is None or args.method != "pbsm":
            print(
                "error: --shm requires --workers and --method pbsm",
                file=sys.stderr,
            )
            return 2
        kwargs["shared_memory"] = True
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    result = spatial_join(
        left, right, mb(args.memory_mb), method=args.method, tracer=tracer, **kwargs
    )
    stats = result.stats
    # format_stats covers the end-to-end timing (``total wall seconds``
    # includes planning) from the stats record itself, so the printed and
    # machine-readable numbers can never diverge.
    print(format_stats(stats, verbose=args.verbose))
    if args.method == "auto":
        print()
        print(result.plan.explain(verbose=args.verbose))
    if args.trace:
        n_spans = tracer.write(args.trace)
        print(f"wrote {n_spans:,} spans to {args.trace}")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(stats_to_dict(stats), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote stats report to {args.report}")
    if args.out:
        with open(args.out, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("left_oid", "right_oid"))
            writer.writerows(result.pairs)
        print(f"wrote {len(result):,} pairs to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        MetricsRegistry,
        TraceValidationError,
        read_trace,
        summarize_trace,
    )

    try:
        spans = read_trace(args.trace)
    except TraceValidationError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    if args.validate_only:
        print(f"{args.trace}: {len(spans)} spans, schema valid")
        return 0
    print(summarize_trace(spans))
    if args.metrics:
        registry = MetricsRegistry()
        registry.observe_trace(spans)
        print()
        print(registry.render(), end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.planner import plan_join
    from repro.planner.cache import DEFAULT_CACHE

    left, right = _load_pair(args.left, args.right)
    plan = plan_join(left, right, mb(args.memory_mb), cache=DEFAULT_CACHE)
    if args.execute:
        plan.execute(left, right)
    print(plan.explain(verbose=args.verbose))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spatial joins (PBSM / S3J / SSSJ / SHJ / R-tree) on KPE relations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic relation")
    gen.add_argument("output", help="output file (.csv or .npy)")
    gen.add_argument("--pattern", choices=sorted(PATTERNS), default="tiger")
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--start-oid", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="summarise a relation file")
    info.add_argument("relation")
    info.set_defaults(func=_cmd_info)

    join = sub.add_parser("join", help="run a spatial join on two relation files")
    join.add_argument("left")
    join.add_argument("right")
    join.add_argument("--method", choices=SPATIAL_JOIN_METHODS, default="pbsm")
    join.add_argument("--memory-mb", type=float, default=2.5)
    join.add_argument("--internal", default=None, help="internal algorithm name")
    join.add_argument("--dedup", default=None, choices=("rpm", "sort"))
    join.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the PBSM join phase on a process pool with N workers",
    )
    join.add_argument(
        "--shm",
        action="store_true",
        help="with --workers: ship partition data through zero-copy "
        "shared memory instead of pickling records",
    )
    join.add_argument("--out", default=None, help="write result pairs as CSV")
    join.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record execution spans and write them as JSONL",
    )
    join.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the full machine-readable statistics as JSON",
    )
    join.add_argument(
        "--verbose", action="store_true", help="per-phase cost breakdown"
    )
    join.set_defaults(func=_cmd_join)

    trace = sub.add_parser(
        "trace", help="validate and summarise a trace file written by --trace"
    )
    trace.add_argument("trace", help="trace file (JSONL, one span per line)")
    trace.add_argument(
        "--validate-only",
        action="store_true",
        help="only check the schema, print span count",
    )
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="also render the trace as Prometheus text metrics",
    )
    trace.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="plan a join with the cost-based planner and show every candidate",
    )
    explain.add_argument("left")
    explain.add_argument("right")
    explain.add_argument("--memory-mb", type=float, default=2.5)
    explain.add_argument(
        "--execute",
        action="store_true",
        help="also run the chosen plan and report estimated vs. actual",
    )
    explain.add_argument(
        "--verbose", action="store_true", help="include the phase-level estimate"
    )
    explain.set_defaults(func=_cmd_explain)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
