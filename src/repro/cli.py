"""Command-line interface: generate datasets and run spatial joins.

Usage examples::

    python -m repro generate --pattern tiger --n 20000 --seed 1 roads.npy
    python -m repro generate --pattern manhattan --n 20000 streets.csv
    python -m repro build roads.rcd --from roads.npy
    python -m repro build streets.rcd --pattern manhattan --n 20000
    python -m repro join roads.rcd streets.rcd --method pbsm \\
        --memory-mb 2.5 --internal sweep_trie --out pairs.csv
    python -m repro join roads.npy streets.csv --method auto
    python -m repro explain roads.rcd streets.rcd --memory-mb 2.5
    python -m repro info roads.npy

``.rcd`` is the memory-mapped columnar dataset format (docs/datasets.md):
``build`` once, then every ``join``/``explain``/``info``/``serve``
open is zero-copy in O(ms) instead of a full parse.

The bench CLI lives separately under ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path

from repro import SPATIAL_JOIN_METHODS, spatial_join
from repro.core.report import format_stats, stats_to_dict
from repro.datasets import (
    clustered_rects,
    coverage,
    polyline_mbrs,
    summarize,
    uniform_rects,
    zipf_rects,
)
from repro.datasets.fileio import load_relation, save_relation
from repro.datasets.patterns import manhattan_grid, mixed_scale, radial_city
from repro.io.costmodel import mb

PATTERNS = {
    "tiger": polyline_mbrs,
    "uniform": uniform_rects,
    "clustered": clustered_rects,
    "manhattan": manhattan_grid,
    "radial": radial_city,
    "mixed": mixed_scale,
    "zipf": zipf_rects,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = PATTERNS[args.pattern]
    kpes = generator(args.n, seed=args.seed, start_oid=args.start_oid)
    save_relation(kpes, args.output)
    print(
        f"wrote {len(kpes):,} MBRs ({args.pattern}, seed {args.seed}, "
        f"coverage {coverage(kpes):.4f}) to {args.output}"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    import time

    if Path(args.output).suffix.lower() != ".rcd":
        print(
            f"error: build output must be an .rcd file, got {args.output!r}",
            file=sys.stderr,
        )
        return 2
    if (args.source is None) == (args.pattern is None):
        print(
            "error: build wants exactly one input: --from FILE or --pattern NAME",
            file=sys.stderr,
        )
        return 2
    if args.source is not None:
        kpes = load_relation(args.source)
        origin = args.source
    else:
        kpes = PATTERNS[args.pattern](
            args.n, seed=args.seed, start_oid=args.start_oid
        )
        origin = f"{args.pattern} pattern, seed {args.seed}"
    if args.sort:
        kpes = sorted(kpes, key=lambda k: k[1])

    started = time.perf_counter()
    save_relation(kpes, args.output)
    build_seconds = time.perf_counter() - started

    from repro.io.rcd import read_header

    header = read_header(args.output)
    started = time.perf_counter()
    reopened = load_relation(args.output)
    reopen_seconds = time.perf_counter() - started
    mapped = getattr(reopened, "mapped", False)
    size_mb = Path(args.output).stat().st_size / 1e6
    print(
        f"built {header.n:,} MBRs from {origin} into {args.output} "
        f"({size_mb:.1f} MB, sorted_by_xl={'yes' if header.sorted_by_xl else 'no'}) "
        f"in {build_seconds:.3f}s"
    )
    print(f"fingerprint: {header.fingerprint}")
    print(
        f"reopen: {reopen_seconds * 1000:.2f} ms "
        f"({'zero-copy mapped' if mapped else 'struct fallback'})"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    kpes = load_relation(args.relation)
    summary = summarize(Path(args.relation).name, kpes)
    print(f"relation:  {summary.name}")
    print(f"records:   {summary.n_mbrs:,}")
    print(f"coverage:  {summary.coverage:.4f}")
    print(f"avg width: {summary.avg_width:.6f}")
    print(f"avg height:{summary.avg_height:.6f}")
    return 0


def _load_pair(left_path: str, right_path: str):
    """Load both relations, reusing one load for a self-join.

    Paths are compared resolved, so ``./a.npy`` vs ``a.npy`` (or a
    symlink) still load the relation once.
    """
    left = load_relation(left_path)
    if Path(right_path).resolve() == Path(left_path).resolve():
        return left, left
    return left, load_relation(right_path)


def _cmd_join(args: argparse.Namespace) -> int:
    left, right = _load_pair(args.left, args.right)
    kwargs = {}
    if args.internal:
        kwargs["internal"] = args.internal
    if args.dedup:
        kwargs["dedup"] = args.dedup
    if args.method == "auto" and kwargs:
        print(
            "note: --internal/--dedup are ignored with --method auto "
            "(the planner chooses them)",
            file=sys.stderr,
        )
        kwargs = {}
    if args.workers is not None:
        if args.method not in ("pbsm", "auto"):
            parser_error = "--workers requires --method pbsm or auto"
            print(f"error: {parser_error}", file=sys.stderr)
            return 2
        if kwargs.get("dedup") == "sort":
            print(
                "error: --dedup sort cannot run with --workers: the "
                "offline sorting phase would serialise the parallel "
                "join (use --dedup rpm or --dedup twolayer, or drop "
                "--workers)",
                file=sys.stderr,
            )
            return 2
        kwargs["workers"] = args.workers
    if args.executor:
        if args.workers is None or args.method != "pbsm":
            print(
                "error: --executor requires --workers and --method pbsm",
                file=sys.stderr,
            )
            return 2
        kwargs["executor"] = args.executor
    if args.scheduler:
        if args.workers is None or args.method != "pbsm":
            print(
                "error: --scheduler requires --workers and --method pbsm",
                file=sys.stderr,
            )
            return 2
        kwargs["scheduler"] = args.scheduler
    if args.shm:
        if args.workers is None or args.method != "pbsm":
            print(
                "error: --shm requires --workers and --method pbsm",
                file=sys.stderr,
            )
            return 2
        kwargs["shared_memory"] = True
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    result = spatial_join(
        left, right, mb(args.memory_mb), method=args.method, tracer=tracer, **kwargs
    )
    stats = result.stats
    # format_stats covers the end-to-end timing (``total wall seconds``
    # includes planning) from the stats record itself, so the printed and
    # machine-readable numbers can never diverge.
    print(format_stats(stats, verbose=args.verbose))
    if args.method == "auto":
        print()
        print(result.plan.explain(verbose=args.verbose))
    if args.trace:
        n_spans = tracer.write(args.trace)
        print(f"wrote {n_spans:,} spans to {args.trace}")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(stats_to_dict(stats), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote stats report to {args.report}")
    if args.out:
        with open(args.out, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("left_oid", "right_oid"))
            writer.writerows(result.pairs)
        print(f"wrote {len(result):,} pairs to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        MetricsRegistry,
        TraceValidationError,
        read_trace,
        summarize_trace,
    )

    try:
        spans = read_trace(args.trace)
    except TraceValidationError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    if args.validate_only:
        print(f"{args.trace}: {len(spans)} spans, schema valid")
        return 0
    print(summarize_trace(spans))
    if args.metrics:
        registry = MetricsRegistry()
        registry.observe_trace(spans)
        print()
        print(registry.render(), end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.pbsm.parallel import MAX_WORKERS_ENV
    from repro.serve import (
        AdmissionController,
        DatasetRegistry,
        EngineHost,
        JoinServer,
    )

    if args.workers > 1:
        # An always-on server is allowed to oversubscribe a small box on
        # purpose; honor the explicit worker count unless the operator
        # already set the cap themselves.
        os.environ.setdefault(MAX_WORKERS_ENV, str(args.workers))
    registry = DatasetRegistry(pin=not args.no_pin)
    for spec in args.dataset or ():
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"error: --dataset wants NAME=PATH, got {spec!r}", file=sys.stderr)
            return 2
        registry.register_file(name, path)
        print(f"registered dataset {name!r} from {path}")
    engine = EngineHost(mb(args.memory_mb), workers=args.workers)
    admission = AdmissionController(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        budget_seconds=args.budget_seconds,
    )
    server = JoinServer(
        registry,
        engine,
        admission,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        page_size=args.page_size,
    )

    async def run() -> None:
        await server.start()
        server.install_signal_handlers()
        if server.unix_socket is not None:
            where = server.unix_socket
        else:
            where = "{0}:{1}".format(*server.address)
        print(
            f"repro serve listening on {where} "
            f"(workers={engine.workers}, memory={args.memory_mb}MB, "
            f"inflight<={admission.max_inflight}, queue<={admission.max_queue})",
            flush=True,
        )
        await server.serve_until_stopped()

    asyncio.run(run())
    print("repro serve stopped cleanly")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_load

    report = run_load(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        topologies=args.topologies.split(","),
        scales=[int(s) for s in args.scales.split(",")],
        concurrency_levels=[int(c) for c in args.concurrency.split(",")],
        repeats=args.repeats,
        memory_mb=args.memory_mb,
        out=args.out,
    )
    for cell in report["cells"]:
        status = "ok" if cell["checksum_ok"] else "CHECKSUM MISMATCH"
        print(
            f"{cell['topology']:>10} n={cell['n']:<8} c={cell['concurrency']:<3} "
            f"{cell['throughput_qps']:8.2f} q/s  "
            f"p50 {cell['p50_seconds'] * 1000:8.1f} ms  "
            f"p99 {cell['p99_seconds'] * 1000:8.1f} ms  {status}"
        )
    latency = report.get("server_latency") or {}
    if latency:
        print(
            f"server histogram: p50 {latency.get('p50_seconds', 0.0) * 1000:.1f} ms, "
            f"p99 {latency.get('p99_seconds', 0.0) * 1000:.1f} ms over "
            f"{latency.get('count', 0)} queries"
        )
    if args.out:
        print(f"wrote load report to {args.out}")
    if not report["ok"]:
        print("load sweep FAILED (checksum or plan-cache violation)", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.planner import plan_join
    from repro.planner.cache import DEFAULT_CACHE

    left, right = _load_pair(args.left, args.right)
    plan = plan_join(left, right, mb(args.memory_mb), cache=DEFAULT_CACHE)
    if args.execute:
        plan.execute(left, right)
    print(plan.explain(verbose=args.verbose))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spatial joins (PBSM / S3J / SSSJ / SHJ / R-tree) on KPE relations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic relation")
    gen.add_argument("output", help="output file (.csv or .npy)")
    gen.add_argument("--pattern", choices=sorted(PATTERNS), default="tiger")
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--start-oid", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser(
        "build",
        help="build a memory-mapped columnar dataset (.rcd) — load once, "
        "join many (see docs/datasets.md)",
    )
    build.add_argument("output", help="output dataset file (.rcd)")
    build.add_argument(
        "--from",
        dest="source",
        default=None,
        metavar="FILE",
        help="convert an existing relation file (.csv/.npy/.rcd)",
    )
    build.add_argument(
        "--pattern",
        choices=sorted(PATTERNS),
        default=None,
        help="synthesize the relation instead of converting a file",
    )
    build.add_argument("--n", type=int, default=10_000)
    build.add_argument("--seed", type=int, default=1)
    build.add_argument("--start-oid", type=int, default=0)
    build.add_argument(
        "--sort",
        action="store_true",
        help="pre-sort rows by xl so every open also skips the kernels' x-sort",
    )
    build.set_defaults(func=_cmd_build)

    info = sub.add_parser("info", help="summarise a relation file")
    info.add_argument("relation")
    info.set_defaults(func=_cmd_info)

    join = sub.add_parser("join", help="run a spatial join on two relation files")
    join.add_argument("left")
    join.add_argument("right")
    join.add_argument("--method", choices=SPATIAL_JOIN_METHODS, default="pbsm")
    join.add_argument("--memory-mb", type=float, default=2.5)
    join.add_argument("--internal", default=None, help="internal algorithm name")
    join.add_argument(
        "--dedup",
        default=None,
        choices=("rpm", "twolayer", "sort"),
        help="duplicate handling: rpm reference-point tests, twolayer "
        "corner-class avoidance (zero per-pair work), sort offline "
        "removal (sequential only)",
    )
    join.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the PBSM join phase on a process pool with N workers",
    )
    join.add_argument(
        "--executor",
        default=None,
        choices=("process", "thread"),
        help="with --workers: pool flavour — forked processes (default) "
        "or GIL-releasing threads over the columnar kernel",
    )
    join.add_argument(
        "--scheduler",
        default=None,
        choices=("static", "stealing"),
        help="with --workers: static LPT chunking or work stealing with "
        "duplicate-free stripe splitting (default)",
    )
    join.add_argument(
        "--shm",
        action="store_true",
        help="with --workers: ship partition data through zero-copy "
        "shared memory instead of pickling records",
    )
    join.add_argument("--out", default=None, help="write result pairs as CSV")
    join.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record execution spans and write them as JSONL",
    )
    join.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the full machine-readable statistics as JSON",
    )
    join.add_argument(
        "--verbose", action="store_true", help="per-phase cost breakdown"
    )
    join.set_defaults(func=_cmd_join)

    trace = sub.add_parser(
        "trace", help="validate and summarise a trace file written by --trace"
    )
    trace.add_argument("trace", help="trace file (JSONL, one span per line)")
    trace.add_argument(
        "--validate-only",
        action="store_true",
        help="only check the schema, print span count",
    )
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="also render the trace as Prometheus text metrics",
    )
    trace.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="plan a join with the cost-based planner and show every candidate",
    )
    explain.add_argument("left")
    explain.add_argument("right")
    explain.add_argument("--memory-mb", type=float, default=2.5)
    explain.add_argument(
        "--execute",
        action="store_true",
        help="also run the chosen plan and report estimated vs. actual",
    )
    explain.add_argument(
        "--verbose", action="store_true", help="include the phase-level estimate"
    )
    explain.set_defaults(func=_cmd_explain)

    serve = sub.add_parser(
        "serve",
        help="run the always-on join service (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--unix-socket", default=None, help="serve on a unix socket instead of TCP"
    )
    serve.add_argument("--memory-mb", type=float, default=2.5)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent worker-pool size (1 = in-process execution)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent executing queries"
    )
    serve.add_argument(
        "--max-queue", type=int, default=16, help="queries allowed to wait"
    )
    serve.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="reject queries whose cost estimate exceeds this (simulated s)",
    )
    serve.add_argument(
        "--page-size", type=int, default=20_000, help="result pairs per page"
    )
    serve.add_argument(
        "--dataset",
        action="append",
        metavar="NAME=PATH",
        help="pre-register a relation file (repeatable)",
    )
    serve.add_argument(
        "--no-pin",
        action="store_true",
        help="keep datasets as plain lists (no shared-memory pinning)",
    )
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser(
        "load",
        help="closed-loop load sweep against a running repro serve",
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=0)
    load.add_argument("--unix-socket", default=None)
    load.add_argument(
        "--topologies",
        default="uniform,clustered",
        help="comma-separated dataset patterns",
    )
    load.add_argument(
        "--scales", default="2000", help="comma-separated records per relation"
    )
    load.add_argument(
        "--concurrency", default="1,4", help="comma-separated client counts"
    )
    load.add_argument(
        "--repeats", type=int, default=3, help="queries per client per cell"
    )
    load.add_argument("--memory-mb", type=float, default=2.5)
    load.add_argument(
        "--out", default=None, metavar="PATH", help="write BENCH_serve.json here"
    )
    load.set_defaults(func=_cmd_load)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
