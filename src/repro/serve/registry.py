"""The dataset registry: load relations once, pin them in shared memory.

Tsitsigkos & Mamoulis (PAPERS.md) locate the win of a long-running
spatial-join service in *partition-once/query-many* amortisation.  The
registry is the "once" half: a relation is loaded (from a file, a
synthetic generator, or inline records) a single time, kept as the KPE
list the planner and the sequential drivers consume, and — when the
shared-memory transport is available — additionally *pinned* into a
long-lived :class:`~repro.kernels.shm.SharedColumnarStore` segment.

Pinned columns live under the neutral ``D.*`` prefix because at pin time
nobody knows whether the dataset will be the left or the right input of
a query; per-query :class:`~repro.kernels.shm.AliasedStore` views rename
``L``/``R`` onto ``D`` inside the workers.  A persistent worker that has
attached a pinned segment once keeps it mapped, so repeated queries over
registered datasets never re-ship (or even re-map) the relation columns.

The registry owns the segments: :meth:`DatasetRegistry.close` unlinks
every pin, and the server additionally runs the orphan sweep at startup
and shutdown so a crash never leaks segments past the next boot of the
service (see ``kernels/shm.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.fileio import load_relation
from repro.kernels.shm import (
    Manifest,
    SharedColumnarStore,
    columnar_arrays,
    shm_enabled,
)


@dataclass
class Dataset:
    """One registered relation: records in memory, optionally a pinned segment."""

    name: str
    kpes: List[Tuple]
    #: human-readable provenance ("file:...", "pattern:...", "records")
    source: str
    store: Optional[SharedColumnarStore] = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return len(self.kpes)

    @property
    def pinned(self) -> bool:
        return self.store is not None

    @property
    def manifest(self) -> Optional[Manifest]:
        return self.store.manifest if self.store is not None else None

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary for the ``datasets`` protocol op."""
        return {
            "name": self.name,
            "n": self.n,
            "source": self.source,
            "pinned": self.pinned,
            "segment": self.store.name if self.store is not None else None,
            "segment_bytes": self.store.nbytes if self.store is not None else 0,
        }


class DatasetRegistry:
    """Named datasets shared by every query of a server process."""

    def __init__(self, pin: bool = True) -> None:
        #: pin datasets into shared-memory segments when the platform
        #: allows it; ``pin=False`` keeps everything as plain KPE lists
        #: (the no-numpy / no-shm configuration).
        self.pin = pin
        self._lock = threading.Lock()
        self._datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, kpes: Sequence[Tuple], source: str = "records"
    ) -> Dataset:
        """Register *kpes* under *name* (idempotent for an equal source).

        Re-registering an existing name with the same *source* returns
        the existing entry (so every load-generator client may issue the
        same ``register`` ops without coordination); a differing source
        is a conflict and raises.
        """
        if not name:
            raise ValueError("dataset name must be non-empty")
        with self._lock:
            existing = self._datasets.get(name)
            if existing is not None:
                if existing.source != source:
                    raise ValueError(
                        f"dataset {name!r} already registered from "
                        f"{existing.source!r}, refusing {source!r}"
                    )
                return existing
        # Mapped relations (``.rcd`` files) stay lazy: listifying one
        # would parse every record into tuples — the exact cost the
        # format exists to avoid.  Pinning below copies straight from
        # the file mapping into the segment instead.
        if getattr(kpes, "columnar", None) is not None:
            records = kpes
        else:
            records = list(kpes)
        entry = Dataset(name=name, kpes=records, source=source)
        if self.pin and shm_enabled() and entry.kpes:
            from repro.kernels.columnar import ColumnarRelation

            entry.store = SharedColumnarStore.create(
                columnar_arrays("D", ColumnarRelation.from_kpes(entry.kpes))
            )
        with self._lock:
            raced = self._datasets.get(name)
            if raced is not None:
                # Another thread pinned the same name first; drop ours.
                if entry.store is not None:
                    entry.store.close()
                    entry.store.unlink()
                    entry.store = None
                return raced
            self._datasets[name] = entry
        return entry

    def register_file(self, name: str, path: str) -> Dataset:
        """Load a relation file (.csv/.npy/.rcd) and register it.

        ``.rcd`` files are opened as zero-copy mapped relations, so
        registration (and pinning into shm) never parses a record:
        the pin is one memmap-to-segment array copy.
        """
        return self.register(name, load_relation(path), source=f"file:{path}")

    def register_synthetic(
        self,
        name: str,
        pattern: str,
        n: int,
        seed: int = 1,
        start_oid: int = 0,
    ) -> Dataset:
        """Generate a synthetic relation server-side and register it.

        The generators are deterministic under ``seed``, so a client that
        generates the same pattern locally holds byte-identical records —
        the load harness verifies checksums against exactly this.
        """
        from repro.cli import PATTERNS

        generator = PATTERNS.get(pattern)
        if generator is None:
            raise ValueError(
                f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}"
            )
        source = f"pattern:{pattern}:{n}:{seed}:{start_oid}"
        with self._lock:
            existing = self._datasets.get(name)
        if existing is not None and existing.source == source:
            return existing
        kpes = generator(n, seed=seed, start_oid=start_oid)
        return self.register(name, kpes, source=source)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Dataset:
        with self._lock:
            entry = self._datasets.get(name)
        if entry is None:
            raise KeyError(f"unknown dataset {name!r}")
        return entry

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._datasets)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = list(self._datasets.values())
        return [entry.describe() for entry in sorted(entries, key=lambda d: d.name)]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every pinned segment (idempotent)."""
        with self._lock:
            entries = list(self._datasets.values())
        for entry in entries:
            if entry.store is not None:
                entry.store.close()
                entry.store.unlink()
                entry.store = None


__all__ = ["Dataset", "DatasetRegistry"]
