"""The always-on join server behind ``repro serve``.

An asyncio TCP (or unix-socket) server speaking the line-delimited JSON
protocol of :mod:`repro.serve.protocol`.  The event loop only shuffles
bytes and bookkeeping; every blocking engine call — planning, joining,
dataset loading, even result checksumming — is shipped to a worker
thread through :func:`~repro.serve.executor.run_blocking` (lint rule
RPL007), so a running 100k x 100k join never stalls another client's
``metrics`` scrape.

Request lifecycle of a ``join`` op::

    admission slot (reject on capacity)        AdmissionController
      -> plan through the shared cache        EngineHost.plan
      -> budget check on the cost estimate    AdmissionController
      -> execute (persistent pool, pins)      EngineHost.execute
      -> stream result pages + summary        protocol.paginate

Every request gets its own :class:`~repro.obs.Tracer`; the finished span
tree is retained for the last :data:`TRACE_KEEP` queries and served back
by the ``trace`` op — which is how the load harness *sees* that a
repeated query re-profiled nothing (no ``profile`` span, ``plan`` span
tagged ``from_cache``).

Shutdown discipline: SIGTERM/SIGINT request a stop; the listener closes,
in-flight queries drain, the worker pool is torn down, the registry
unlinks its pinned segments, and a final orphan sweep reaps anything a
crashed predecessor left in ``/dev/shm``.  The same sweep runs at
startup, so a SIGKILLed server never leaks segments past the next start.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.io.costmodel import mb
from repro.kernels.shm import shm_enabled, sweep_orphan_segments
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.admission import AdmissionController, AdmissionReject
from repro.serve.engine import EngineHost
from repro.serve.executor import run_blocking
from repro.serve.protocol import (
    DEFAULT_PAGE_SIZE,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    paginate,
    result_checksum,
)
from repro.serve.registry import DatasetRegistry

#: Finished query traces retained for the ``trace`` op.
TRACE_KEEP = 64


class JoinServer:
    """One server process: registry + engine host + admission + metrics."""

    def __init__(
        self,
        registry: DatasetRegistry,
        engine: EngineHost,
        admission: Optional[AdmissionController] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.registry = registry
        self.engine = engine
        self.admission = admission if admission is not None else AdmissionController()
        self.admission.on_change = self._admission_changed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.page_size = page_size
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self._query_seq = 0
        self._queries_ok = 0
        self._queries_rejected = 0
        self._queries_error = 0
        self._traces: "OrderedDict[int, list]" = OrderedDict()
        self._declare_metrics()
        self._ops: Dict[str, Callable[[dict, asyncio.StreamWriter], Awaitable[None]]] = {
            "ping": self._op_ping,
            "register": self._op_register,
            "datasets": self._op_datasets,
            "join": self._op_join,
            "metrics": self._op_metrics,
            "stats": self._op_stats,
            "trace": self._op_trace,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _declare_metrics(self) -> None:
        m = self.metrics
        m.counter("repro_serve_queries_total", "Join queries by outcome status")
        m.counter(
            "repro_serve_admission_rejects_total",
            "Queries refused by admission control, by reason",
        )
        m.gauge("repro_serve_queue_depth", "Queries waiting for an execution slot")
        m.gauge("repro_serve_inflight", "Queries currently executing")
        m.gauge("repro_serve_datasets", "Registered datasets")
        m.gauge(
            "repro_serve_plan_cache",
            "Shared planner-cache state, by stat name",
        )
        m.histogram(
            "repro_serve_query_seconds",
            "End-to-end join latency as observed by the server",
        )
        self._admission_changed(self.admission)

    def _admission_changed(self, admission: AdmissionController) -> None:
        self.metrics.set("repro_serve_queue_depth", float(admission.queue_depth))
        self.metrics.set("repro_serve_inflight", float(admission.inflight))

    def _refresh_gauges(self) -> None:
        self.metrics.set("repro_serve_datasets", float(len(self.registry.names())))
        for stat, value in self.engine.cache.stats().items():
            self.metrics.set("repro_serve_plan_cache", float(value), stat=stat)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Sweep orphans, start the engine pool, open the listener."""
        swept = sweep_orphan_segments()
        if swept:
            self.metrics.counter(
                "repro_serve_orphans_swept_total",
                "Stale shared-memory segments reaped at startup",
            )
            self.metrics.inc("repro_serve_orphans_swept_total", len(swept))
        await run_blocking(self.engine.start)
        self._stopped = asyncio.Event()
        if self.unix_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_socket, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful stop (POSIX loops only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError):
                break  # non-POSIX loop; rely on KeyboardInterrupt instead

    def request_stop(self) -> None:
        """Ask the serve loop to exit (safe from signal handlers)."""
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`, then drain and shut down."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener, drain, and release every pinned resource."""
        server = self._server
        self._server = None
        if server is not None:
            server.close()
            await server.wait_closed()
        await run_blocking(self.engine.shutdown)
        await run_blocking(self.registry.close)
        # Anything this pid still owns at this point (a query killed
        # mid-fan-out, for instance) is garbage by definition.
        await run_blocking(sweep_orphan_segments, True)
        if self.unix_socket is not None and os.path.exists(self.unix_socket):
            os.unlink(self.unix_socket)
        if self._stopped is not None:
            self._stopped.set()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        error_response("protocol", "request line too long"),
                    )
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    await self._send(writer, error_response("protocol", str(exc)))
                    continue
                op = message.get("op")
                handler = self._ops.get(op) if isinstance(op, str) else None
                if handler is None:
                    await self._send(
                        writer,
                        error_response(
                            "unknown_op",
                            f"unknown op {op!r}; choose from {sorted(self._ops)}",
                        ),
                    )
                    continue
                await handler(message, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # already torn down on the client side

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    # ------------------------------------------------------------------
    # simple ops
    # ------------------------------------------------------------------
    async def _op_ping(self, message: dict, writer: asyncio.StreamWriter) -> None:
        await self._send(
            writer,
            {
                "ok": True,
                "pid": os.getpid(),
                "uptime_seconds": time.monotonic() - self._started_at,
                "workers": self.engine.workers,
                "shm": shm_enabled(),
            },
        )

    async def _op_register(self, message: dict, writer: asyncio.StreamWriter) -> None:
        name = message.get("name")
        if not isinstance(name, str) or not name:
            await self._send(
                writer, error_response("bad_request", "register needs a 'name'")
            )
            return
        try:
            if "path" in message:
                entry = await run_blocking(
                    self.registry.register_file, name, str(message["path"])
                )
            elif "pattern" in message:
                entry = await run_blocking(
                    self.registry.register_synthetic,
                    name,
                    str(message["pattern"]),
                    int(message.get("n", 10_000)),
                    seed=int(message.get("seed", 1)),
                    start_oid=int(message.get("start_oid", 0)),
                )
            elif "records" in message:
                records = [tuple(row) for row in message["records"]]
                entry = await run_blocking(self.registry.register, name, records)
            else:
                await self._send(
                    writer,
                    error_response(
                        "bad_request",
                        "register needs 'path', 'pattern', or 'records'",
                    ),
                )
                return
        except (ValueError, OSError) as exc:
            await self._send(writer, error_response("register_failed", str(exc)))
            return
        self._refresh_gauges()
        await self._send(writer, {"ok": True, "dataset": entry.describe()})

    async def _op_datasets(self, message: dict, writer: asyncio.StreamWriter) -> None:
        await self._send(
            writer, {"ok": True, "datasets": self.registry.describe()}
        )

    async def _op_metrics(self, message: dict, writer: asyncio.StreamWriter) -> None:
        self._refresh_gauges()
        await self._send(writer, {"ok": True, "text": self.metrics.render()})

    async def _op_stats(self, message: dict, writer: asyncio.StreamWriter) -> None:
        admission = self.admission
        await self._send(
            writer,
            {
                "ok": True,
                "uptime_seconds": time.monotonic() - self._started_at,
                "queries": {
                    "ok": self._queries_ok,
                    "rejected": self._queries_rejected,
                    "error": self._queries_error,
                },
                "admission": {
                    "inflight": admission.inflight,
                    "queue_depth": admission.queue_depth,
                    "max_inflight": admission.max_inflight,
                    "max_queue": admission.max_queue,
                    "budget_seconds": admission.budget_seconds,
                    "rejects_capacity": admission.rejects_capacity,
                    "rejects_budget": admission.rejects_budget,
                },
                "plan_cache": self.engine.cache.stats(),
                "datasets": self.registry.names(),
                "latency": {
                    "p50_seconds": self.metrics.quantile(
                        "repro_serve_query_seconds", 0.50
                    ),
                    "p99_seconds": self.metrics.quantile(
                        "repro_serve_query_seconds", 0.99
                    ),
                    "count": self.metrics.histogram_count(
                        "repro_serve_query_seconds"
                    ),
                },
            },
        )

    async def _op_trace(self, message: dict, writer: asyncio.StreamWriter) -> None:
        query_id = message.get("query_id")
        spans = self._traces.get(query_id) if isinstance(query_id, int) else None
        if spans is None:
            await self._send(
                writer,
                error_response(
                    "unknown_query",
                    f"no retained trace for query_id {query_id!r} "
                    f"(last {TRACE_KEEP} queries are kept)",
                ),
            )
            return
        await self._send(writer, {"ok": True, "query_id": query_id, "spans": spans})

    async def _op_shutdown(self, message: dict, writer: asyncio.StreamWriter) -> None:
        await self._send(writer, {"ok": True, "stopping": True})
        self.request_stop()

    # ------------------------------------------------------------------
    # the join op
    # ------------------------------------------------------------------
    async def _op_join(self, message: dict, writer: asyncio.StreamWriter) -> None:
        self._query_seq += 1
        query_id = self._query_seq
        started = time.perf_counter()
        try:
            left = self.registry.get(str(message.get("left")))
            right = self.registry.get(str(message.get("right")))
        except KeyError as exc:
            self._queries_error += 1
            self.metrics.inc("repro_serve_queries_total", 1, status="error")
            await self._send(
                writer,
                error_response("unknown_dataset", str(exc), query_id=query_id),
            )
            return
        memory_bytes = (
            mb(float(message["memory_mb"]))
            if "memory_mb" in message
            else self.engine.memory_bytes
        )
        include_pairs = bool(message.get("include_pairs", False))
        page_size = int(message.get("page_size", self.page_size))
        tracer = Tracer()

        try:
            async with self.admission.slot():
                plan = await run_blocking(
                    self.engine.plan, left, right, memory_bytes, tracer
                )
                self.admission.check_budget(plan.chosen.estimate.total_seconds)
                result = await run_blocking(
                    self.engine.execute, plan, left, right, tracer
                )
        except AdmissionReject as exc:
            self._queries_rejected += 1
            self.metrics.inc("repro_serve_queries_total", 1, status="rejected")
            self.metrics.inc(
                "repro_serve_admission_rejects_total", 1, reason=exc.reason
            )
            await self._send(
                writer,
                error_response(
                    "rejected", str(exc), reason=exc.reason, query_id=query_id
                ),
            )
            return

        checksum = await run_blocking(result_checksum, result.pairs)
        if include_pairs:
            for page_index, page in enumerate(paginate(result.pairs, page_size)):
                await self._send(
                    writer,
                    {
                        "ok": True,
                        "query_id": query_id,
                        "page": page_index,
                        "pairs": page,
                    },
                )

        elapsed = time.perf_counter() - started
        stats = result.stats
        self._queries_ok += 1
        self._traces[query_id] = [span.to_dict() for span in tracer.spans]
        while len(self._traces) > TRACE_KEEP:
            self._traces.popitem(last=False)
        self.metrics.inc("repro_serve_queries_total", 1, status="ok")
        self.metrics.observe("repro_serve_query_seconds", elapsed)
        self.metrics.observe_join(stats)
        profiled = sum(1 for span in tracer.spans if span.name == "profile")
        await self._send(
            writer,
            {
                "ok": True,
                "done": True,
                "query_id": query_id,
                "n_results": stats.n_results,
                "checksum": checksum,
                "elapsed_seconds": elapsed,
                "planning_seconds": plan.planning_seconds,
                "from_cache": plan.from_cache,
                "profile_spans": profiled,
                "chosen": plan.chosen.describe(),
                "algorithm": stats.algorithm,
                "shared_memory": stats.shared_memory,
                "duplicates_suppressed": stats.duplicates_suppressed,
            },
        )


async def start_server(
    registry: DatasetRegistry,
    engine: EngineHost,
    admission: Optional[AdmissionController] = None,
    metrics: Optional[MetricsRegistry] = None,
    **kwargs: Any,
) -> JoinServer:
    """Build and start a :class:`JoinServer` in one call (test helper)."""
    server = JoinServer(registry, engine, admission, metrics, **kwargs)
    await server.start()
    return server


__all__ = ["JoinServer", "TRACE_KEEP", "start_server"]
