"""Wire protocol of the join service: line-delimited JSON.

One request is one JSON object on one line; the server answers with one
or more JSON objects, one per line.  Most operations produce exactly one
response; ``join`` streams zero or more *page* messages (each carrying a
bounded slice of the result pairs) followed by one *summary* message, so
a multi-million-pair result never has to fit in a single line or a
single buffer on either side.

Every response carries ``"ok"``; error responses carry ``"error"``
(machine-readable reason code) and ``"message"``.  Join pages carry
``"page"``/``"pairs"``; the summary is the response with ``"done":
true``.

The checksum contract
---------------------
:func:`result_checksum` is the *order-insensitive* fingerprint of a
result set: SHA-256 over the sorted ``(left_oid, right_oid)`` pairs,
each packed as two little-endian int64s.  The planner is free to answer
the same query with different algorithms (whose output pair *order*
differs), so the load harness compares checksums, not pair sequences —
equal checksums mean byte-identical sorted result sets.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, Iterable, List, Sequence, Tuple

#: Upper bound on one protocol line; the asyncio stream reader limit.
#: Large enough for a register-by-records request of a few hundred
#: thousand KPEs; joins stream pages, so results never approach it.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Result pairs per ``join`` page message.
DEFAULT_PAGE_SIZE = 20_000

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 7207

_PAIR_STRUCT = struct.Struct("<qq")


def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol message as a single JSON line (newline included)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


class ProtocolError(Exception):
    """A malformed protocol message (either direction)."""


def error_response(error: str, message: str, **extra: Any) -> Dict[str, Any]:
    return {"ok": False, "error": error, "message": message, **extra}


def result_checksum(pairs: Iterable[Tuple[int, int]]) -> str:
    """Order-insensitive SHA-256 fingerprint of a result-pair set."""
    digest = hashlib.sha256()
    pack = _PAIR_STRUCT.pack
    for left_oid, right_oid in sorted(pairs):
        digest.update(pack(left_oid, right_oid))
    return digest.hexdigest()


def paginate(pairs: Sequence[Tuple[int, int]], page_size: int) -> Iterable[List[List[int]]]:
    """Result pairs as JSON-ready pages of at most *page_size* pairs."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    for start in range(0, len(pairs), page_size):
        yield [[int(a), int(b)] for a, b in pairs[start : start + page_size]]


__all__ = [
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "error_response",
    "paginate",
    "result_checksum",
]
