"""Closed-loop load harness for the join service (``repro load``).

Sweeps a (topology x scale x concurrency) matrix against a *running*
``repro serve`` and closes the loop on correctness, not just throughput:

* datasets are registered server-side by **pattern + seed** (the
  generators are deterministic), and the harness generates the same
  records locally, runs the *sequential* engine once per cell, and
  compares the server's result checksum against that ground truth —
  byte-identical sorted result sets or the cell fails;
* after the warm-up query, every repetition of a distinct query must be
  served from the shared plan cache (``from_cache`` true, zero
  ``profile`` spans in its trace) — a violation is recorded, because a
  service that silently re-plans hot queries has lost its whole
  amortisation story;
* capacity rejections are retried with backoff (and counted), so the
  measured latencies cover completed queries only while the rejects
  still show up in the report.

The report — client-side p50/p99 per cell, server-side p50/p99 and
throughput from the ``MetricsRegistry`` histogram, plan-cache counters —
is written as ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.io.costmodel import mb
from repro.serve.client import ServeClient
from repro.serve.executor import run_blocking
from repro.serve.protocol import result_checksum

#: Retries per query on a capacity rejection before giving up.
REJECT_RETRIES = 200
REJECT_BACKOFF_SECONDS = 0.05

DEFAULT_TOPOLOGIES = ("uniform", "clustered")
DEFAULT_SCALES = (2_000,)
DEFAULT_CONCURRENCY = (1, 4)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def _dataset_names(topology: str, n: int) -> Tuple[str, str]:
    return (f"load_{topology}_{n}_L", f"load_{topology}_{n}_R")


def _local_expected_checksum(topology: str, n: int, memory_mb: float) -> str:
    """Sequential-engine ground truth for one cell's query."""
    from repro import spatial_join
    from repro.cli import PATTERNS

    generator = PATTERNS[topology]
    left = generator(n, seed=11, start_oid=0)
    right = generator(n, seed=23, start_oid=10_000_000)
    result = spatial_join(left, right, mb(memory_mb), method="pbsm")
    return result_checksum(result.pairs)


async def _register_cell(
    client: ServeClient, topology: str, n: int
) -> None:
    left_name, right_name = _dataset_names(topology, n)
    for name, seed, start_oid in (
        (left_name, 11, 0),
        (right_name, 23, 10_000_000),
    ):
        response = await client.register(
            name, pattern=topology, n=n, seed=seed, start_oid=start_oid
        )
        if not response.get("ok"):
            raise RuntimeError(f"register {name} failed: {response}")


async def _one_query(
    client: ServeClient, left: str, right: str, memory_mb: float
) -> Tuple[Dict[str, Any], float, int]:
    """One join with capacity-reject retry; returns (summary, latency, rejects)."""
    rejects = 0
    for _ in range(REJECT_RETRIES):
        started = time.perf_counter()
        summary, _ = await client.join(left, right, memory_mb=memory_mb)
        latency = time.perf_counter() - started
        if summary.get("ok"):
            return summary, latency, rejects
        if summary.get("error") == "rejected" and summary.get("reason") == "capacity":
            rejects += 1
            await asyncio.sleep(REJECT_BACKOFF_SECONDS)
            continue
        raise RuntimeError(f"join {left}x{right} failed: {summary}")
    raise RuntimeError(
        f"join {left}x{right} rejected {rejects} times; server saturated"
    )


async def _worker(
    connect: Any,
    left: str,
    right: str,
    memory_mb: float,
    repeats: int,
    sink: List[Dict[str, Any]],
) -> None:
    client = await connect()
    try:
        for _ in range(repeats):
            summary, latency, rejects = await _one_query(
                client, left, right, memory_mb
            )
            sink.append(
                {"summary": summary, "latency": latency, "rejects": rejects}
            )
    finally:
        await client.close()


async def _run_matrix(
    connect: Any,
    topologies: Sequence[str],
    scales: Sequence[int],
    concurrency_levels: Sequence[int],
    repeats: int,
    memory_mb: float,
) -> Dict[str, Any]:
    control = await connect()
    try:
        ping = await control.ping()
        cells: List[Dict[str, Any]] = []
        for topology in topologies:
            for n in scales:
                left_name, right_name = _dataset_names(topology, n)
                await _register_cell(control, topology, n)
                expected = await run_blocking(
                    _local_expected_checksum, topology, n, memory_mb
                )
                # Warm-up: the one query allowed to plan from scratch.
                warm, _, _ = await _one_query(
                    control, left_name, right_name, memory_mb
                )
                if warm["checksum"] != expected:
                    raise RuntimeError(
                        f"{topology} x {n}: warm-up checksum mismatch "
                        f"(server {warm['checksum']}, sequential {expected})"
                    )
                for concurrency in concurrency_levels:
                    sink: List[Dict[str, Any]] = []
                    wall_started = time.perf_counter()
                    await asyncio.gather(
                        *(
                            _worker(
                                connect,
                                left_name,
                                right_name,
                                memory_mb,
                                repeats,
                                sink,
                            )
                            for _ in range(concurrency)
                        )
                    )
                    wall = time.perf_counter() - wall_started
                    latencies = sorted(row["latency"] for row in sink)
                    checksum_failures = sum(
                        1
                        for row in sink
                        if row["summary"]["checksum"] != expected
                    )
                    cache_violations = sum(
                        1
                        for row in sink
                        if not row["summary"]["from_cache"]
                        or row["summary"]["profile_spans"]
                    )
                    cells.append(
                        {
                            "topology": topology,
                            "n": n,
                            "concurrency": concurrency,
                            "repeats": repeats,
                            "queries": len(sink),
                            "wall_seconds": wall,
                            "throughput_qps": len(sink) / wall if wall else 0.0,
                            "p50_seconds": _percentile(latencies, 0.50),
                            "p99_seconds": _percentile(latencies, 0.99),
                            "checksum_ok": checksum_failures == 0,
                            "checksum_failures": checksum_failures,
                            "expected_checksum": expected,
                            "plan_cache_violations": cache_violations,
                            "capacity_rejects_retried": sum(
                                row["rejects"] for row in sink
                            ),
                        }
                    )
        stats = await control.stats()
        metrics_text = await control.metrics_text()
        return {
            "kind": "serve_load",
            "generated_unix": time.time(),
            "server": ping,
            "memory_mb": memory_mb,
            "cells": cells,
            "server_latency": stats.get("latency", {}),
            "plan_cache": stats.get("plan_cache", {}),
            "admission": stats.get("admission", {}),
            "metrics_text": metrics_text,
        }
    finally:
        await control.close()


def run_load(
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    *,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    scales: Sequence[int] = DEFAULT_SCALES,
    concurrency_levels: Sequence[int] = DEFAULT_CONCURRENCY,
    repeats: int = 3,
    memory_mb: float = 2.5,
    out: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the sweep against a running server; optionally write the report."""

    def connect() -> Any:
        return ServeClient.connect(host, port, unix_socket)

    report = asyncio.run(
        _run_matrix(
            connect,
            topologies,
            scales,
            concurrency_levels,
            repeats,
            memory_mb,
        )
    )
    report["ok"] = all(
        cell["checksum_ok"] and not cell["plan_cache_violations"]
        for cell in report["cells"]
    )
    if out is not None:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


__all__ = ["run_load"]
