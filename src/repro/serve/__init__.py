"""The always-on join service: ``repro serve`` and its load harness.

The subsystem turns the one-shot engine into a long-running server that
amortises the expensive parts across queries — datasets load (and pin
into shared memory) once, the worker pool spawns once, and plans cache
across requests.  See ``docs/serving.md`` for the protocol and the
operational story.

Layering (no cycles, blocking code never touches the event loop):

* :mod:`repro.serve.protocol` — wire format, checksums (pure functions);
* :mod:`repro.serve.executor` — the ``run_blocking`` seam (RPL007);
* :mod:`repro.serve.registry` — named datasets, shared-memory pinning;
* :mod:`repro.serve.admission` — slots, queue bound, cost budget;
* :mod:`repro.serve.engine` — persistent pool + shared planner cache;
* :mod:`repro.serve.server` — the asyncio server tying it together;
* :mod:`repro.serve.client` / :mod:`repro.serve.loadgen` — the consumer
  side: protocol client and the closed-loop load harness.
"""

from repro.serve.admission import AdmissionController, AdmissionReject
from repro.serve.client import ServeClient
from repro.serve.engine import EngineHost
from repro.serve.loadgen import run_load
from repro.serve.protocol import result_checksum
from repro.serve.registry import Dataset, DatasetRegistry
from repro.serve.server import JoinServer, start_server

__all__ = [
    "AdmissionController",
    "AdmissionReject",
    "Dataset",
    "DatasetRegistry",
    "EngineHost",
    "JoinServer",
    "ServeClient",
    "result_checksum",
    "run_load",
    "start_server",
]
