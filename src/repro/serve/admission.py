"""Admission control: bounded in-flight work, bounded queue, cost budget.

SOLAR (see PAPERS.md) motivates feeding cost estimates into admission
decisions: a service that accepts every query melts down on the first
expensive one.  The controller enforces three limits:

* **in-flight capacity** — at most ``max_inflight`` queries execute at
  once (an :class:`asyncio.Semaphore`);
* **queue depth** — at most ``max_queue`` more may wait for a slot;
  beyond that the query is *rejected immediately* instead of queued into
  an unbounded latency cliff;
* **cost budget** — a query whose planner estimate exceeds
  ``budget_seconds`` (simulated seconds, the cost model's currency) is
  rejected before it executes, however empty the server is.

Rejections raise :class:`AdmissionReject` with a machine-readable
``reason`` (``"capacity"`` or ``"budget"``) that the server maps onto
the ``repro_serve_admission_rejects_total`` counter.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Callable, Optional

from contextlib import asynccontextmanager


class AdmissionReject(Exception):
    """A query refused by admission control."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class AdmissionController:
    """Semaphore-backed slot manager with a reject-over-queue policy."""

    def __init__(
        self,
        max_inflight: int = 4,
        max_queue: int = 16,
        budget_seconds: Optional[float] = None,
        on_change: Optional[Callable[["AdmissionController"], None]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.budget_seconds = budget_seconds
        #: invoked after every inflight/queue-depth transition — the
        #: server's hook for keeping the Prometheus gauges current.
        self.on_change = on_change
        self._slots = asyncio.Semaphore(max_inflight)
        self._inflight = 0
        self._waiting = 0
        self.rejects_capacity = 0
        self.rejects_budget = 0

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change(self)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Queries currently executing."""
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Queries waiting for an execution slot."""
        return self._waiting

    # ------------------------------------------------------------------
    def check_budget(self, estimated_seconds: float) -> None:
        """Reject a planner estimate above the per-query cost budget."""
        budget = self.budget_seconds
        if budget is not None and estimated_seconds > budget:
            self.rejects_budget += 1
            raise AdmissionReject(
                "budget",
                f"estimated cost {estimated_seconds:.3f}s exceeds the "
                f"per-query budget of {budget:.3f}s",
            )

    @asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Hold one execution slot; reject instead of over-queueing."""
        if self._inflight >= self.max_inflight and self._waiting >= self.max_queue:
            self.rejects_capacity += 1
            raise AdmissionReject(
                "capacity",
                f"{self._inflight} queries in flight and {self._waiting} "
                f"queued (limits {self.max_inflight}/{self.max_queue})",
            )
        self._waiting += 1
        self._changed()
        try:
            await self._slots.acquire()
        finally:
            self._waiting -= 1
        self._inflight += 1
        self._changed()
        try:
            yield
        finally:
            self._inflight -= 1
            self._slots.release()
            self._changed()


__all__ = ["AdmissionController", "AdmissionReject"]
