"""The engine host: one persistent worker pool, one shared planner cache.

A one-shot join pays worker-pool spawn, dataset serialisation and plan
enumeration on every call; the whole point of ``repro serve`` is to pay
each of those once.  :class:`EngineHost` owns the amortised pieces:

* a **persistent** :class:`~concurrent.futures.ProcessPoolExecutor`,
  created at startup and handed to every
  :class:`~repro.pbsm.ParallelPBSM` fan-out via its ``pool=`` hook — no
  query ever spawns processes;
* the shared :class:`~repro.planner.PlannerCache` (thread-safe, LRU), so
  the second occurrence of any distinct query re-uses its plan with zero
  re-profiling;
* the plumbing that routes a chosen parallel plan through the **pinned**
  dataset segments of the registry (workers attach each pinned segment
  once and keep it mapped — see ``pbsm/parallel.py``).

``plan`` and ``execute`` are deliberately separate calls: the server
needs the plan's cost estimate *between* them to apply the admission
budget before any join work starts.  Both are blocking and must be
reached through :func:`~repro.serve.executor.run_blocking` from async
code (lint rule RPL007).
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from repro.io.costmodel import CostModel
from repro.pbsm import ParallelPBSM
from repro.pbsm.parallel import MAX_WORKERS_ENV, _worker_cap
from repro.planner import PlannerCache, plan_join
from repro.planner.plan import JoinPlan
from repro.serve.registry import Dataset


def _warm_worker(seconds: float) -> int:
    """Pool warm-up task: occupy a worker long enough to force spawning."""
    time.sleep(seconds)
    import os

    return os.getpid()


class EngineHost:
    """Blocking join engine wrapped for service use (pool + shared cache)."""

    def __init__(
        self,
        memory_bytes: int,
        workers: int = 1,
        *,
        cache: Optional[PlannerCache] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        cap = _worker_cap()
        if workers > cap:
            # Same clamp ParallelPBSM applies; surfacing it here keeps
            # the plan enumeration and the pool size consistent.
            workers = cap
        self.memory_bytes = memory_bytes
        self.workers = max(1, workers)
        self.cache = cache if cache is not None else PlannerCache()
        self.cost_model = cost_model or CostModel()
        self.pool: Optional[Any] = None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the persistent pool (idempotent; blocking)."""
        if self._started:
            return
        self._started = True
        if self.workers > 1:
            from concurrent.futures import ProcessPoolExecutor, wait

            # Make sure the parent's resource tracker exists *before* the
            # workers fork: workers forked first would each spawn their
            # own tracker, whose shared-memory registrations are never
            # matched by the parent's unlinks (spurious leak warnings).
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except (ImportError, AttributeError):
                pass  # platform without the tracker API; nothing to pre-start
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
            # Force every worker into existence now: the sleep outlasts
            # task dispatch, so no single worker can drain the batch.
            wait([self.pool.submit(_warm_worker, 0.05) for _ in range(self.workers)])

    def shutdown(self) -> None:
        """Tear the pool down (idempotent; blocking)."""
        pool = self.pool
        self.pool = None
        self._started = False
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # planning and execution (blocking; reach via run_blocking)
    # ------------------------------------------------------------------
    def plan(
        self,
        left: Dataset,
        right: Dataset,
        memory_bytes: Optional[int] = None,
        tracer: Optional[Any] = None,
    ) -> JoinPlan:
        """Plan a join through the shared cache (``method="auto"`` path)."""
        return plan_join(
            left.kpes,
            right.kpes,
            memory_bytes if memory_bytes is not None else self.memory_bytes,
            cache=self.cache,
            cost_model=self.cost_model,
            workers=self.workers,
            tracer=tracer,
        )

    def execute(
        self,
        plan: JoinPlan,
        left: Dataset,
        right: Dataset,
        tracer: Optional[Any] = None,
    ) -> Any:
        """Execute *plan*, routing parallel PBSM through the persistent pool.

        Sequential plans run through ``JoinPlan.execute`` unchanged.  A
        parallel *process* PBSM plan is rebuilt with ``pool=`` (no spawn)
        and — when the chosen transport is shared memory and both
        datasets are pinned — with ``pinned=`` manifests, so the
        per-query segment carries only CSR id arrays.  A *thread* plan
        runs in-host: its whole point is skipping the process boundary,
        so it takes neither the pool nor pinned manifests.
        """
        chosen = plan.chosen
        kwargs = dict(chosen.kwargs)
        if (
            chosen.method == "pbsm"
            and "workers" in kwargs
            and kwargs.get("executor", "process") == "process"
            and self.pool is not None
        ):
            workers = kwargs.pop("workers")
            kwargs.setdefault("executor", "process")
            pinned: Optional[Tuple[Any, Any]] = None
            if (
                kwargs.get("shared_memory")
                and left.manifest is not None
                and right.manifest is not None
            ):
                pinned = (left.manifest, right.manifest)
            driver = ParallelPBSM(
                plan.memory_bytes,
                workers,
                cost_model=plan.cost_model,
                tracer=tracer,
                pool=self.pool,
                pinned=pinned,
                **kwargs,
            )
            result = driver.run(left.kpes, right.kpes)
            plan.last_result = result
        else:
            result = plan.execute(left.kpes, right.kpes, tracer=tracer)
        result.plan = plan
        result.stats.planning_seconds = plan.planning_seconds
        return result


__all__ = ["EngineHost", "MAX_WORKERS_ENV"]
