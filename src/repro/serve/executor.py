"""The event-loop/engine seam: every blocking engine call goes through here.

The join engine is synchronous — profiling, planning and the join drivers
all hold the CPU (or block on a process pool) for whole milliseconds to
seconds at a time.  Calling any of them directly from an asyncio request
handler would freeze every other connection for the duration, which on a
server is an outage, not a slowdown.

:func:`run_blocking` is the one sanctioned bridge: it ships the call to a
worker thread via ``loop.run_in_executor`` and awaits the result, so the
event loop keeps accepting connections, streaming pages and serving the
metrics endpoint while a join runs.  repro-lint rule RPL007 enforces the
contract mechanically: an ``async def`` that calls a blocking engine
entry point (``spatial_join``, ``plan_join``, ...) without going through
this wrapper is a lint failure.

The thread pool is the interpreter's default executor; true concurrency
across queries comes from the *process* pool behind
:class:`~repro.serve.engine.EngineHost`, not from threads — the threads
here exist only to keep the loop responsive.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Any, Callable, TypeVar

T = TypeVar("T")


async def run_blocking(func: Callable[..., T], *args: Any, **kwargs: Any) -> T:
    """Await *func(*args, **kwargs)* on a worker thread.

    The only legal way for server request handlers to reach the
    blocking engine (see RPL007).  Exceptions propagate unchanged.
    """
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, functools.partial(func, *args, **kwargs)
    )


__all__ = ["run_blocking"]
