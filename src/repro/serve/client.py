"""Async client for the join service protocol.

A thin line-protocol wrapper: connect, send one-line JSON requests,
collect the responses (including a ``join``'s page stream).  This is
what the load harness and the tests speak; it has no engine dependency
at all, so it imports (and runs) on a numpy-free interpreter.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)


class ServeClient:
    """One connection to a running join server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
    ) -> "ServeClient":
        if unix_socket is not None:
            reader, writer = await asyncio.open_unix_connection(
                unix_socket, limit=MAX_LINE_BYTES
            )
        else:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass  # server already gone (e.g. after a shutdown op)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one op and return its single response."""
        self._writer.write(encode_message(message))
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> Dict[str, Any]:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def register(self, name: str, **spec: Any) -> Dict[str, Any]:
        return await self.request({"op": "register", "name": name, **spec})

    async def join(
        self,
        left: str,
        right: str,
        *,
        memory_mb: Optional[float] = None,
        include_pairs: bool = False,
        page_size: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], List[Tuple[int, int]]]:
        """Run a join; returns ``(summary, pairs)``.

        *pairs* is empty unless ``include_pairs=True``; the summary is
        the final message (or the error response, with ``ok=False``).
        """
        message: Dict[str, Any] = {
            "op": "join",
            "left": left,
            "right": right,
            "include_pairs": include_pairs,
        }
        if memory_mb is not None:
            message["memory_mb"] = memory_mb
        if page_size is not None:
            message["page_size"] = page_size
        self._writer.write(encode_message(message))
        await self._writer.drain()
        pairs: List[Tuple[int, int]] = []
        while True:
            response = await self._read_response()
            if not response.get("ok") or response.get("done"):
                return response, pairs
            page = response.get("pairs")
            if page is None:
                raise ProtocolError(
                    f"unexpected mid-join message: {sorted(response)}"
                )
            pairs.extend((int(a), int(b)) for a, b in page)

    async def metrics_text(self) -> str:
        response = await self.request({"op": "metrics"})
        if not response.get("ok"):
            raise ProtocolError(f"metrics scrape failed: {response}")
        return str(response["text"])

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"op": "stats"})

    async def trace(self, query_id: int) -> Dict[str, Any]:
        return await self.request({"op": "trace", "query_id": query_id})

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request({"op": "shutdown"})


__all__ = ["ServeClient"]
