"""Unified observability: span tracing, trace export, and metrics.

The subsystem has three parts (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — the span tracer.  Drivers open a ``run`` span
  per execution and a ``phase`` span per phase;
  ``JoinStats.wall_seconds_by_phase`` is read off those spans, so the
  trace and the statistics can never disagree.  Tracing defaults to
  :data:`NULL_TRACER`, whose spans still time themselves but retain
  nothing.
* :mod:`repro.obs.export` — the JSONL trace file format: schema
  validation, loading, and the ``repro trace`` summary.
* :mod:`repro.obs.metrics` — a labelled counter/gauge registry with a
  Prometheus-style text dump, fed from :class:`JoinStats` or from an
  exported trace.
"""

from repro.obs.export import (
    TraceValidationError,
    phase_totals,
    read_trace,
    summarize_trace,
    validate_span_dict,
    worker_busy,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    KIND_PHASE,
    KIND_PLAN,
    KIND_RUN,
    KIND_SECTION,
    KIND_TASK,
    KIND_WORKER,
    NULL_TRACER,
    NullTracer,
    SCHEMA_VERSION,
    SPAN_KINDS,
    Span,
    Tracer,
)

__all__ = [
    "KIND_PHASE",
    "KIND_PLAN",
    "KIND_RUN",
    "KIND_SECTION",
    "KIND_TASK",
    "KIND_WORKER",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "TraceValidationError",
    "phase_totals",
    "read_trace",
    "summarize_trace",
    "validate_span_dict",
    "worker_busy",
]
