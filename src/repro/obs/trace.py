"""Span-based wall-clock tracing for join execution.

The paper's headline claims are cost *decompositions* — which phase pays
for partitioning, which for duplicate handling — so the timing plumbing
has to attribute every wall-clock second to a named phase, consistently
across drivers, and survive a process boundary.  This module provides
that as a first-class subsystem instead of scattered ``perf_counter()``
pairs:

* a :class:`Span` is one timed region with a name, a kind (``run``,
  ``phase``, ``section``, ``task``, ``worker``, ``plan``), tags, and the
  counter *deltas* (CPU operation counts, simulated I/O units) observed
  while it was open;
* a :class:`Tracer` opens spans as context managers, nests them via an
  explicit stack (children know their parent), and retains every finished
  span for export (JSONL via :mod:`repro.obs.export`, Prometheus text via
  :mod:`repro.obs.metrics`);
* :data:`NULL_TRACER` is the always-on default: its spans still measure
  wall time — drivers derive ``JoinStats.wall_seconds_by_phase`` from the
  span they just closed, so the numbers exist with tracing off — but
  nothing is retained, no counters are snapshotted, and no tags are
  stored.  The cost of a disabled span is two ``perf_counter()`` calls
  and one small allocation per *phase* (never per record), which keeps
  the hot loops untouched.

Externally-timed spans (a worker process measured its own task; the
parent only learns the duration) enter through :meth:`Tracer.add_span`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Trace schema version stamped on every exported span.
SCHEMA_VERSION = 1

KIND_RUN = "run"
KIND_PHASE = "phase"
KIND_SECTION = "section"
KIND_TASK = "task"
KIND_WORKER = "worker"
KIND_PLAN = "plan"

#: Every kind a span may carry (the export validator enforces this).
SPAN_KINDS = (
    KIND_RUN,
    KIND_PHASE,
    KIND_SECTION,
    KIND_TASK,
    KIND_WORKER,
    KIND_PLAN,
)


@dataclass
class Span:
    """One finished timed region of a trace."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    #: seconds since the tracer's epoch (monotonic clock)
    t_start: float
    t_end: float
    tags: Dict[str, object] = field(default_factory=dict)
    #: counter deltas observed while the span was open (only non-zero ones)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """The JSONL export form (one line of the trace file)."""
        return {
            "schema": SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "wall_seconds": self.wall_seconds,
            "tags": self.tags,
            "counters": self.counters,
        }


class _ActiveSpan:
    """A span in progress: context manager plus the handle drivers keep.

    On exit it computes the wall time and the deltas of any attached
    :class:`~repro.core.stats.CpuCounters` / simulated-disk totals, then
    hands the finished :class:`Span` to the tracer.
    """

    __slots__ = (
        "_tracer",
        "span",
        "_cpu",
        "_cpu_before",
        "_disk",
        "_units_before",
        "_pages_before",
    )

    def __init__(
        self, tracer: "Tracer", span: Span, cpu: Any, disk: Any
    ) -> None:
        self._tracer = tracer
        self.span = span
        self._cpu = cpu
        self._cpu_before = None
        self._disk = disk
        self._units_before = 0.0
        self._pages_before = 0

    @property
    def wall_seconds(self) -> float:
        return self.span.wall_seconds

    @property
    def span_id(self) -> int:
        return self.span.span_id

    def set_tag(self, key: str, value: Any) -> None:
        self.span.tags[key] = value

    def add_counters(self, mapping: Dict[str, float]) -> None:
        counters = self.span.counters
        for key, value in mapping.items():
            if value:
                counters[key] = counters.get(key, 0) + value

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        tracer._stack.append(self.span.span_id)
        if self._cpu is not None:
            self._cpu_before = self._cpu.as_dict()
        if self._disk is not None:
            self._units_before = self._disk.total_units()
            total = self._disk.total_counters()
            self._pages_before = total.pages_read + total.pages_written
        self.span.t_start = tracer._now()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        tracer = self._tracer
        self.span.t_end = tracer._now()
        if self._cpu is not None:
            after = self._cpu.as_dict()
            before = self._cpu_before
            self.add_counters(
                {key: after[key] - before[key] for key in after}
            )
        if self._disk is not None:
            self.add_counters(
                {"io_units": self._disk.total_units() - self._units_before}
            )
            total = self._disk.total_counters()
            self.add_counters(
                {
                    "io_pages": (total.pages_read + total.pages_written)
                    - self._pages_before
                }
            )
        stack = tracer._stack
        if stack and stack[-1] == self.span.span_id:
            stack.pop()
        elif self.span.span_id in stack:  # pragma: no cover - defensive
            stack.remove(self.span.span_id)
        tracer.spans.append(self.span)


class _NullSpan:
    """The disabled span: wall clock only, everything else a no-op."""

    __slots__ = ("_t0", "wall_seconds")

    span = None
    span_id = None

    def __enter__(self) -> "_NullSpan":
        self.wall_seconds = 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.wall_seconds = time.perf_counter() - self._t0

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def add_counters(self, mapping: Dict[str, float]) -> None:
        pass


class Tracer:
    """Collects spans for one or more join executions.

    Spans nest through an explicit stack: a span opened while another is
    active becomes its child.  Time is recorded relative to the tracer's
    construction instant (monotonic), so a trace file is self-contained.
    """

    recording = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        *,
        kind: str = KIND_PHASE,
        cpu: Optional[Any] = None,
        disk: Optional[Any] = None,
        **tags: Any,
    ) -> _ActiveSpan:
        """Open a span as a context manager.

        ``cpu`` (a :class:`~repro.core.stats.CpuCounters`) and ``disk``
        (a :class:`~repro.io.disk.SimulatedDisk`) are snapshotted on
        entry; their deltas are attached to the span on exit.
        """
        span = Span(
            span_id=self._alloc_id(),
            parent_id=self.current_span_id,
            name=name,
            kind=kind,
            t_start=0.0,
            t_end=0.0,
            tags={k: v for k, v in tags.items() if v is not None},
        )
        return _ActiveSpan(self, span, cpu, disk)

    def add_span(
        self,
        name: str,
        wall_seconds: float,
        *,
        kind: str = KIND_TASK,
        parent_id: Optional[int] = None,
        counters: Optional[Dict[str, float]] = None,
        **tags: Any,
    ) -> Span:
        """Record an externally-timed span (e.g. measured in a worker).

        The span is placed ending "now" relative to the tracer's epoch;
        only its duration was measured remotely, not its absolute offset.
        """
        t_end = self._now()
        span = Span(
            span_id=self._alloc_id(),
            parent_id=parent_id if parent_id is not None else self.current_span_id,
            name=name,
            kind=kind,
            t_start=t_end - wall_seconds,
            t_end=t_end,
            tags={k: v for k, v in tags.items() if v is not None},
            counters={k: v for k, v in (counters or {}).items() if v},
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # aggregation & export
    # ------------------------------------------------------------------
    def wall_by_phase(self) -> Dict[str, float]:
        """Total wall seconds of ``phase`` spans, aggregated by name."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.kind == KIND_PHASE:
                totals[span.name] = totals.get(span.name, 0.0) + span.wall_seconds
        return totals

    def spans_of_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def to_jsonl(self) -> str:
        """The whole trace as JSON-lines text (one span per line)."""
        return "\n".join(json.dumps(span.to_dict()) for span in self.spans)

    def write(self, path: Union[str, Path]) -> int:
        """Write the trace as JSONL; returns the number of spans written."""
        with open(path, "w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()))
                handle.write("\n")
        return len(self.spans)


class NullTracer:
    """The tracing-off tracer: spans measure wall time, nothing persists."""

    recording = False
    spans: List[Span] = []  # always empty; shared on purpose

    def span(
        self,
        name: str,
        *,
        kind: str = KIND_PHASE,
        cpu: Optional[Any] = None,
        disk: Optional[Any] = None,
        **tags: Any,
    ) -> Any:
        return _NullSpan()

    def add_span(self, name: str, wall_seconds: float, **kwargs: Any) -> None:
        return None

    @property
    def current_span_id(self) -> Optional[int]:
        return None

    def wall_by_phase(self) -> Dict[str, float]:
        return {}

    def spans_of_kind(self, kind: str) -> List[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def write(self, path: Union[str, Path]) -> int:
        return 0


#: Shared do-nothing tracer; drivers default to it.
NULL_TRACER = NullTracer()
