"""Trace file I/O: JSONL schema validation, loading, and summaries.

A trace file is JSON-lines: one span object per line, in completion
order.  The schema (version :data:`~repro.obs.trace.SCHEMA_VERSION`) is
deliberately flat so any log pipeline can ingest it::

    {"schema": 1, "span_id": 3, "parent_id": 1, "name": "partition",
     "kind": "phase", "t_start": 0.01, "t_end": 0.52,
     "wall_seconds": 0.51, "tags": {...}, "counters": {...}}

``repro trace FILE`` uses :func:`read_trace` + :func:`summarize_trace`;
the CI smoke job uses :func:`read_trace` alone (validation is built in).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.trace import (
    KIND_PHASE,
    KIND_TASK,
    KIND_WORKER,
    SCHEMA_VERSION,
    SPAN_KINDS,
)

#: Field name -> accepted types, for every span line.
_FIELD_TYPES = {
    "schema": (int,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "name": (str,),
    "kind": (str,),
    "t_start": (int, float),
    "t_end": (int, float),
    "wall_seconds": (int, float),
    "tags": (dict,),
    "counters": (dict,),
}

#: |wall_seconds - (t_end - t_start)| tolerated in a valid span.
_WALL_TOLERANCE = 1e-6


class TraceValidationError(ValueError):
    """A trace line violates the span schema."""


def validate_span_dict(record: dict, line_no: Optional[int] = None) -> None:
    """Raise :class:`TraceValidationError` unless *record* is a valid span."""
    where = f"line {line_no}: " if line_no is not None else ""
    if not isinstance(record, dict):
        raise TraceValidationError(f"{where}span must be an object")
    for name, types in _FIELD_TYPES.items():
        if name not in record:
            raise TraceValidationError(f"{where}missing field {name!r}")
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, types):
            raise TraceValidationError(
                f"{where}field {name!r} has type {type(value).__name__}"
            )
    if record["schema"] != SCHEMA_VERSION:
        raise TraceValidationError(
            f"{where}unsupported schema version {record['schema']!r}"
        )
    if record["kind"] not in SPAN_KINDS:
        raise TraceValidationError(f"{where}unknown span kind {record['kind']!r}")
    if record["t_end"] < record["t_start"]:
        raise TraceValidationError(f"{where}t_end precedes t_start")
    measured = record["t_end"] - record["t_start"]
    if abs(record["wall_seconds"] - measured) > _WALL_TOLERANCE:
        raise TraceValidationError(
            f"{where}wall_seconds {record['wall_seconds']!r} disagrees with "
            f"t_end - t_start ({measured!r})"
        )


def read_trace(path: Union[str, Path]) -> List[dict]:
    """Load and validate a JSONL trace file; returns the span dicts."""
    spans: List[dict] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceValidationError(
                    f"line {line_no}: not valid JSON ({exc})"
                ) from exc
            validate_span_dict(record, line_no)
            spans.append(record)
    return spans


# ----------------------------------------------------------------------
# aggregation over span dicts (works on the export form, not Span objects)
# ----------------------------------------------------------------------
def phase_totals(spans: Sequence[dict]) -> Dict[str, float]:
    """Wall seconds of ``phase`` spans aggregated by phase name."""
    totals: Dict[str, float] = {}
    for span in spans:
        if span["kind"] == KIND_PHASE:
            totals[span["name"]] = (
                totals.get(span["name"], 0.0) + span["wall_seconds"]
            )
    return totals


def worker_busy(spans: Sequence[dict]) -> Dict[str, float]:
    """Busy seconds per worker, from ``worker`` spans (label -> seconds)."""
    busy: Dict[str, float] = {}
    for span in spans:
        if span["kind"] == KIND_WORKER:
            label = str(span["tags"].get("worker", span["span_id"]))
            busy[label] = busy.get(label, 0.0) + span["wall_seconds"]
    return busy


def summarize_trace(spans: Sequence[dict]) -> str:
    """Render a human-readable trace summary (the ``repro trace`` output)."""
    lines: List[str] = []
    by_kind: Dict[str, int] = {}
    for span in spans:
        by_kind[span["kind"]] = by_kind.get(span["kind"], 0) + 1
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
    lines.append(f"trace: {len(spans)} spans ({kinds})")

    roots = [s for s in spans if s["parent_id"] is None]
    for root in roots:
        tags = " ".join(f"{k}={v}" for k, v in sorted(root["tags"].items()))
        lines.append(
            f"run: {root['name']} {root['wall_seconds']:.3f}s"
            + (f"  [{tags}]" if tags else "")
        )

    phases = phase_totals(spans)
    if phases:
        total = sum(phases.values())
        lines.append("per-phase wall seconds:")
        for name, seconds in sorted(
            phases.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = seconds / total if total else 0.0
            lines.append(f"  {name:<14} {seconds:>9.3f}s  ({share:6.1%})")

    busy = worker_busy(spans)
    if busy:
        tasks = [s for s in spans if s["kind"] == KIND_TASK]
        task_busy = sum(s["wall_seconds"] for s in tasks)
        lines.append(
            f"workers: {len(busy)} worker spans, busy "
            f"{sum(busy.values()):.3f}s over {len(tasks)} tasks "
            f"({task_busy:.3f}s task wall)"
        )
        for label, seconds in sorted(busy.items()):
            lines.append(f"  worker {label:<12} busy {seconds:>9.3f}s")
    return "\n".join(lines)
