"""A small metrics registry with a Prometheus-style text exposition.

Counters and gauges with label sets, rendered in the Prometheus text
format (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
samples).  There is no HTTP endpoint — the registry renders to text so a
scrape shim, a file sink, or a test can consume it — and no external
dependency.

Two ingestion helpers map the repo's own observability objects onto
standard metric names:

* :meth:`MetricsRegistry.observe_join` — one executed join's
  :class:`~repro.core.result.JoinStats`;
* :meth:`MetricsRegistry.observe_trace` — exported span dicts (what
  :func:`repro.obs.export.read_trace` returns), so ``repro trace FILE
  --metrics OUT`` can turn any trace file into a scrapeable dump.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: Dict[_LabelKey, float] = {}


class MetricsRegistry:
    """Named counters and gauges with labels, exported as Prometheus text."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # registration & updates
    # ------------------------------------------------------------------
    def _declare(self, name: str, kind: str, help_text: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = _Metric(name, kind, help_text)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> None:
        """Declare a monotonically increasing counter."""
        self._declare(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> None:
        """Declare a gauge (set to the latest observed value)."""
        self._declare(name, "gauge", help_text)

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a counter (declared implicitly on first use)."""
        self.inc_labels(name, value, labels)

    def inc_labels(self, name: str, value: float, labels: Dict[str, object]) -> None:
        """Like :meth:`inc`, with the labels as a dict — required when a
        label is itself called ``name`` or ``value``."""
        metric = self._declare(name, "counter", "")
        key = _label_key(labels)
        metric.samples[key] = metric.samples.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge (declared implicitly on first use)."""
        metric = self._declare(name, "gauge", "")
        metric.samples[_label_key(labels)] = value

    def get(self, name: str, **labels: str) -> float:
        """Read back one sample (0.0 when never observed)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return metric.samples.get(_label_key(labels), 0.0)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe_join(self, stats: Any, **labels: str) -> None:
        """Record one executed join's :class:`JoinStats` into the registry."""
        base = dict(labels)
        base.setdefault("algorithm", stats.algorithm)
        self.counter("repro_join_runs_total", "Executed joins")
        self.inc("repro_join_runs_total", 1, **base)
        self.counter("repro_join_results_total", "Result pairs reported")
        self.inc("repro_join_results_total", stats.n_results, **base)
        self.counter(
            "repro_join_duplicates_suppressed_total",
            "Pairs suppressed online by the Reference Point Method",
        )
        self.inc(
            "repro_join_duplicates_suppressed_total",
            stats.duplicates_suppressed,
            **base,
        )
        self.counter("repro_join_io_units_total", "Simulated I/O units")
        self.inc("repro_join_io_units_total", stats.io_units, **base)
        self.counter(
            "repro_join_wall_seconds_total", "Wall seconds per phase"
        )
        for phase, seconds in stats.wall_seconds_by_phase.items():
            self.inc(
                "repro_join_wall_seconds_total", seconds, phase=phase, **base
            )
        if stats.join_busy_seconds:
            self.gauge(
                "repro_join_busy_seconds",
                "Sum of per-task wall seconds measured inside workers",
            )
            self.set("repro_join_busy_seconds", stats.join_busy_seconds, **base)
        if stats.join_makespan_seconds:
            self.gauge(
                "repro_join_makespan_seconds",
                "Parent-observed elapsed time of the parallel task fan-out",
            )
            self.set(
                "repro_join_makespan_seconds",
                stats.join_makespan_seconds,
                **base,
            )
        if stats.ipc_bytes_shipped:
            transport = "shm" if stats.shared_memory else "pickle"
            self.counter(
                "repro_join_ipc_bytes_total",
                "Bytes shipped across the process boundary per transport",
            )
            self.inc(
                "repro_join_ipc_bytes_total",
                stats.ipc_bytes_shipped,
                transport=transport,
                **base,
            )
            self.gauge(
                "repro_join_ipc_seconds",
                "Parent-side serialisation seconds of the last fan-out",
            )
            self.set(
                "repro_join_ipc_seconds",
                stats.ipc_seconds,
                transport=transport,
                **base,
            )

    def observe_trace(self, spans: Sequence[dict], **labels: str) -> None:
        """Record exported span dicts (see :func:`repro.obs.export.read_trace`)."""
        self.counter("repro_trace_spans_total", "Spans per kind")
        self.counter(
            "repro_trace_wall_seconds_total", "Wall seconds per span kind/name"
        )
        for span in spans:
            self.inc(
                "repro_trace_spans_total", 1, kind=span["kind"], **labels
            )
            # A label is literally called "name" here, which would collide
            # with inc()'s metric-name parameter — hence the dict form.
            self.inc_labels(
                "repro_trace_wall_seconds_total",
                span["wall_seconds"],
                {"kind": span["kind"], "name": span["name"], **labels},
            )

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key in sorted(metric.samples):
                value = metric.samples[key]
                if key:
                    rendered = ",".join(
                        f'{k}="{_escape(v)}"' for k, v in key
                    )
                    lines.append(f"{name}{{{rendered}}} {value:g}")
                else:
                    lines.append(f"{name} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
