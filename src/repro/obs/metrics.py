"""A small metrics registry with a Prometheus-style text exposition.

Counters and gauges with label sets, rendered in the Prometheus text
format (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
samples).  There is no HTTP endpoint — the registry renders to text so a
scrape shim, a file sink, or a test can consume it — and no external
dependency.

Two ingestion helpers map the repo's own observability objects onto
standard metric names:

* :meth:`MetricsRegistry.observe_join` — one executed join's
  :class:`~repro.core.result.JoinStats`;
* :meth:`MetricsRegistry.observe_trace` — exported span dicts (what
  :func:`repro.obs.export.read_trace` returns), so ``repro trace FILE
  --metrics OUT`` can turn any trace file into a scrapeable dump.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Sequence, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds) for :meth:`MetricsRegistry.observe`
#: — the classic Prometheus ladder, wide enough for both in-memory joins
#: and 100k x 100k service queries.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in key) + "}"


class _Metric:
    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: Dict[_LabelKey, float] = {}


class _HistogramState:
    """Per-labelset histogram accumulator (cumulative on render only)."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        #: raw (non-cumulative) counts; the last slot is the +Inf bucket.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0


class _Histogram:
    __slots__ = ("name", "kind", "help", "buckets", "samples")

    def __init__(
        self, name: str, help_text: str, buckets: Sequence[float]
    ) -> None:
        self.name = name
        self.kind = "histogram"
        self.help = help_text
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.samples: Dict[_LabelKey, _HistogramState] = {}

    def observe(self, value: float, key: _LabelKey) -> None:
        state = self.samples.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets))
            self.samples[key] = state
        state.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        state.sum += value
        state.count += 1

    def quantile(self, q: float, key: _LabelKey) -> float:
        """Estimated q-quantile from the bucket counts.

        Linear interpolation inside the containing bucket — the same
        estimate PromQL's ``histogram_quantile`` computes.  Always
        returns a finite value: mass in the +Inf bucket (explicit or
        the implicit overflow slot) clamps to the largest finite edge,
        ``q`` is clamped into ``[0, 1]``, an unobserved label set
        returns 0.0, and a histogram with no finite edges at all falls
        back to the observed mean (0.0 if even that overflowed) — so
        no ``inf``/``nan`` ever leaks into stats exports.
        """
        state = self.samples.get(key)
        if state is None or state.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        clamp = 0.0
        for edge in reversed(self.buckets):
            if math.isfinite(edge):
                clamp = edge
                break
        else:
            # No finite edge to interpolate on: every observation sits
            # in an infinite bucket, so the mean is the best estimate.
            mean = state.sum / state.count
            return mean if math.isfinite(mean) else 0.0
        rank = q * state.count
        seen = 0.0
        for idx, bucket_count in enumerate(state.bucket_counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if idx >= len(self.buckets) or not math.isfinite(
                    self.buckets[idx]
                ):
                    return clamp  # +Inf bucket
                lo = self.buckets[idx - 1] if idx > 0 else 0.0
                if not math.isfinite(lo):
                    lo = 0.0
                hi = self.buckets[idx]
                fraction = (rank - seen) / bucket_count
                return lo + (hi - lo) * fraction
            seen += bucket_count
        return clamp


class MetricsRegistry:
    """Named counters and gauges with labels, exported as Prometheus text."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # registration & updates
    # ------------------------------------------------------------------
    def _declare(self, name: str, kind: str, help_text: str) -> _Metric:
        if name in self._histograms:
            raise ValueError(f"metric {name!r} already registered as histogram")
        metric = self._metrics.get(name)
        if metric is None:
            metric = _Metric(name, kind, help_text)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _declare_histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
    ) -> _Histogram:
        if name in self._metrics:
            raise ValueError(
                f"metric {name!r} already registered as"
                f" {self._metrics[name].kind}"
            )
        hist = self._histograms.get(name)
        if hist is None:
            hist = _Histogram(name, help_text, buckets)
            self._histograms[name] = hist
        return hist

    def counter(self, name: str, help_text: str = "") -> None:
        """Declare a monotonically increasing counter."""
        self._declare(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> None:
        """Declare a gauge (set to the latest observed value)."""
        self._declare(name, "gauge", help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Declare a histogram (bucketed distribution of observations)."""
        self._declare_histogram(name, help_text, buckets)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into a histogram (declared implicitly
        with :data:`DEFAULT_BUCKETS` on first use)."""
        hist = self._declare_histogram(name, "", DEFAULT_BUCKETS)
        hist.observe(value, _label_key(labels))

    def quantile(self, name: str, q: float, **labels: str) -> float:
        """Estimated *q*-quantile of a histogram (0.0 when never observed)."""
        hist = self._histograms.get(name)
        if hist is None:
            return 0.0
        return hist.quantile(q, _label_key(labels))

    def histogram_count(self, name: str, **labels: str) -> int:
        """Total observations recorded into one histogram labelset."""
        hist = self._histograms.get(name)
        if hist is None:
            return 0
        state = hist.samples.get(_label_key(labels))
        return 0 if state is None else state.count

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a counter (declared implicitly on first use)."""
        self.inc_labels(name, value, labels)

    def inc_labels(self, name: str, value: float, labels: Dict[str, object]) -> None:
        """Like :meth:`inc`, with the labels as a dict — required when a
        label is itself called ``name`` or ``value``."""
        metric = self._declare(name, "counter", "")
        key = _label_key(labels)
        metric.samples[key] = metric.samples.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge (declared implicitly on first use)."""
        metric = self._declare(name, "gauge", "")
        metric.samples[_label_key(labels)] = value

    def get(self, name: str, **labels: str) -> float:
        """Read back one sample (0.0 when never observed)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return metric.samples.get(_label_key(labels), 0.0)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe_join(self, stats: Any, **labels: str) -> None:
        """Record one executed join's :class:`JoinStats` into the registry."""
        base = dict(labels)
        base.setdefault("algorithm", stats.algorithm)
        self.counter("repro_join_runs_total", "Executed joins")
        self.inc("repro_join_runs_total", 1, **base)
        self.counter("repro_join_results_total", "Result pairs reported")
        self.inc("repro_join_results_total", stats.n_results, **base)
        self.counter(
            "repro_join_duplicates_suppressed_total",
            "Pairs suppressed online by the Reference Point Method",
        )
        self.inc(
            "repro_join_duplicates_suppressed_total",
            stats.duplicates_suppressed,
            **base,
        )
        self.counter("repro_join_io_units_total", "Simulated I/O units")
        self.inc("repro_join_io_units_total", stats.io_units, **base)
        self.counter(
            "repro_join_wall_seconds_total", "Wall seconds per phase"
        )
        for phase, seconds in stats.wall_seconds_by_phase.items():
            self.inc(
                "repro_join_wall_seconds_total", seconds, phase=phase, **base
            )
        if stats.join_busy_seconds:
            self.gauge(
                "repro_join_busy_seconds",
                "Sum of per-task wall seconds measured inside workers",
            )
            self.set("repro_join_busy_seconds", stats.join_busy_seconds, **base)
        if stats.join_makespan_seconds:
            self.gauge(
                "repro_join_makespan_seconds",
                "Parent-observed elapsed time of the parallel task fan-out",
            )
            self.set(
                "repro_join_makespan_seconds",
                stats.join_makespan_seconds,
                **base,
            )
        if stats.n_workers > 1 and stats.join_makespan_seconds:
            scheduler = stats.scheduler or "static"
            self.gauge(
                "repro_join_worker_utilization",
                "Busy fraction of the paid worker-seconds "
                "(busy / (makespan x workers))",
            )
            self.set(
                "repro_join_worker_utilization",
                stats.worker_utilization,
                scheduler=scheduler,
                **base,
            )
            self.gauge(
                "repro_join_scheduler_idle_seconds",
                "Worker-seconds the fan-out paid for but did not fill",
            )
            self.set(
                "repro_join_scheduler_idle_seconds",
                stats.scheduler_idle_seconds,
                scheduler=scheduler,
                **base,
            )
            self.counter(
                "repro_join_tasks_stolen_total",
                "Dispatch units that ran on a different worker than "
                "static LPT packing planned",
            )
            self.inc(
                "repro_join_tasks_stolen_total",
                stats.tasks_stolen,
                scheduler=scheduler,
                **base,
            )
        if stats.ipc_bytes_shipped:
            transport = "shm" if stats.shared_memory else "pickle"
            self.counter(
                "repro_join_ipc_bytes_total",
                "Bytes shipped across the process boundary per transport",
            )
            self.inc(
                "repro_join_ipc_bytes_total",
                stats.ipc_bytes_shipped,
                transport=transport,
                **base,
            )
            self.gauge(
                "repro_join_ipc_seconds",
                "Parent-side serialisation seconds of the last fan-out",
            )
            self.set(
                "repro_join_ipc_seconds",
                stats.ipc_seconds,
                transport=transport,
                **base,
            )

    def observe_trace(self, spans: Sequence[dict], **labels: str) -> None:
        """Record exported span dicts (see :func:`repro.obs.export.read_trace`)."""
        self.counter("repro_trace_spans_total", "Spans per kind")
        self.counter(
            "repro_trace_wall_seconds_total", "Wall seconds per span kind/name"
        )
        for span in spans:
            self.inc(
                "repro_trace_spans_total", 1, kind=span["kind"], **labels
            )
            # A label is literally called "name" here, which would collide
            # with inc()'s metric-name parameter — hence the dict form.
            self.inc_labels(
                "repro_trace_wall_seconds_total",
                span["wall_seconds"],
                {"kind": span["kind"], "name": span["name"], **labels},
            )

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(set(self._metrics) | set(self._histograms)):
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for key in sorted(metric.samples):
                    value = metric.samples[key]
                    lines.append(f"{name}{_render_labels(key)} {value:g}")
                continue
            hist = self._histograms[name]
            if hist.help:
                lines.append(f"# HELP {name} {hist.help}")
            lines.append(f"# TYPE {name} histogram")
            for key in sorted(hist.samples):
                state = hist.samples[key]
                cumulative = 0
                for edge, count in zip(hist.buckets, state.bucket_counts):
                    cumulative += count
                    le_key = key + (("le", f"{edge:g}"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(le_key)} {cumulative}"
                    )
                inf_key = key + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_render_labels(inf_key)} {state.count}"
                )
                lines.append(f"{name}_sum{_render_labels(key)} {state.sum:g}")
                lines.append(f"{name}_count{_render_labels(key)} {state.count}")
        return "\n".join(lines) + ("\n" if lines else "")
