"""External merge sort over paged files, with charged I/O and CPU.

Used by two phases of the reproduced systems:

* the *sorting phase* of S3J (each level file is sorted by locational code;
  Section 4.2), and
* the *duplicate removal phase* of original PBSM (the candidate pairs are
  sorted so duplicates become adjacent; Section 3.1).

The implementation follows the textbook two-stage design: memory-sized runs
are generated with an in-memory sort, then merged with a bounded fan-in
(one input page buffer per run plus one output page).  Every transfer is
charged to the simulated disk; sort comparisons are charged as
``n * ceil(log2 n)`` (deterministic, since Python's timsort does not expose
its comparison count) and merge heap operations are counted exactly.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Callable, List, Optional, Sequence

from repro.core.stats import CpuCounters
from repro.io.pagefile import PageFile

#: The sweep algorithms' sort key (``kpe[1]``), shared module-wide so the
#: hot loops pay one C-level itemgetter instead of a per-call lambda.
BY_XL = operator.itemgetter(1)


class XlSorted(list):
    """A list of KPEs flagged as already sorted by ``xl``.

    Drivers that sort an input once (SSSJ's sorting phase, a columnar
    kernel handing records back) wrap the result in this type so the
    internal algorithms skip their own re-sort — and its comparison
    charge, which was already paid when the list was first sorted.
    """

    __slots__ = ()

    @property
    def sorted_by_xl(self) -> bool:
        return True


def ensure_sorted_by_xl(records: Sequence, counters: CpuCounters) -> Sequence:
    """*records* sorted by ``xl``, re-sorting (and charging) only if needed."""
    if getattr(records, "sorted_by_xl", False):
        return records
    return XlSorted(sort_in_memory(list(records), BY_XL, counters))


def _charge_sort_comparisons(counters: CpuCounters, n: int) -> None:
    if n > 1:
        counters.comparisons += n * max(1, math.ceil(math.log2(n)))


def sort_in_memory(
    records: List,
    key: Callable,
    counters: CpuCounters,
) -> List:
    """Sort a record list, charging ``n log n`` comparisons."""
    _charge_sort_comparisons(counters, len(records))
    return sorted(records, key=key)


def external_sort(
    source: PageFile,
    key: Callable,
    memory_bytes: int,
    counters: CpuCounters,
    output_name: str = "",
) -> PageFile:
    """Sort *source* into a new page file under a memory budget.

    If the file fits in memory, it is read with one contiguous request,
    sorted, and written back with one request (the paper's best case for
    S3J level files: each file read and written exactly once).  Otherwise
    runs are generated and merged, possibly over several passes when the
    number of runs exceeds the fan-in the memory budget allows.
    """
    disk = source.disk
    cost = disk.cost
    out = PageFile(disk, source.record_bytes, output_name or f"{source.name}.sorted")
    if source.n_records == 0:
        return out

    page_records = source.records_per_page()
    memory_pages = max(2, memory_bytes // cost.page_size)
    memory_records = memory_pages * page_records

    if source.n_records <= memory_records:
        data = source.read_all()
        data = sort_in_memory(data, key, counters)
        out.append_bulk(data, max_request_pages=memory_pages)
        return out

    # ------------------------------------------------------------------
    # run generation
    # ------------------------------------------------------------------
    runs: List[PageFile] = []
    for chunk in source.iter_chunks(memory_pages):
        run = PageFile(disk, source.record_bytes, f"{source.name}.run{len(runs)}")
        run.append_bulk(sort_in_memory(chunk, key, counters))
        runs.append(run)

    # ------------------------------------------------------------------
    # merge passes
    # ------------------------------------------------------------------
    fan_in = max(2, memory_pages - 1)
    while len(runs) > 1:
        next_runs: List[PageFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            merged = PageFile(
                disk, source.record_bytes, f"{source.name}.merge{len(next_runs)}"
            )
            _merge_runs(group, merged, key, counters)
            next_runs.append(merged)
        runs = next_runs
    final = runs[0]
    final.name = out.name
    return final


def _merge_runs(
    runs: List[PageFile],
    out: PageFile,
    key: Callable,
    counters: CpuCounters,
) -> None:
    """Merge sorted runs into *out* with one page buffer per run."""
    writer = out.writer(buffer_pages=1)
    heap = []
    iters = [run.iter_records(buffer_pages=1) for run in runs]
    for idx, it in enumerate(iters):
        record = next(it, None)
        if record is not None:
            heapq.heappush(heap, (key(record), idx, record))
            counters.heap_ops += 1
    while heap:
        _, idx, record = heapq.heappop(heap)
        counters.heap_ops += 1
        writer.write(record)
        nxt = next(iters[idx], None)
        if nxt is not None:
            heapq.heappush(heap, (key(nxt), idx, nxt))
            counters.heap_ops += 1
    writer.close()


def sorted_dedup(
    source: PageFile,
    counters: CpuCounters,
    sink: Optional[Callable] = None,
) -> int:
    """Scan a *sorted* file, dropping adjacent duplicates.

    Returns the number of unique records; each unique record is passed to
    *sink* when given.  The scan is charged as a sequential read.  One key
    comparison per record is charged (the adjacency test).
    """
    unique = 0
    previous = _SENTINEL
    for record in source.iter_records(buffer_pages=1):
        counters.comparisons += 1
        if record != previous:
            unique += 1
            if sink is not None:
                sink(record)
            previous = record
    return unique


_SENTINEL = object()
