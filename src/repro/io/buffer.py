"""A pin-aware LRU buffer manager over the simulated disk.

The drivers in this library manage their memory budgets directly (as the
paper's C++ implementations did), but a DBMS integration runs every page
access through a buffer manager.  This module provides that substrate:
fixed frame count, pin/unpin protocol, dirty tracking with write-back on
eviction, and hit/miss accounting charged to the simulated disk.

Used by tests and available to library consumers embedding the join
algorithms behind a buffered storage layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.io.disk import SimulatedDisk


class BufferFullError(RuntimeError):
    """All frames are pinned; nothing can be evicted."""


class BufferManager:
    """An LRU buffer of *n_frames* page frames."""

    def __init__(self, disk: SimulatedDisk, n_frames: int) -> None:
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        self.disk = disk
        self.n_frames = n_frames
        #: page_id -> (contents, pin_count, dirty); LRU order = insertion
        self._frames: "OrderedDict[Hashable, list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def pin(self, page_id: Hashable, loader: Optional[Any] = None) -> Any:
        """Pin a page, loading it (one charged read) on a miss.

        ``loader(page_id)`` supplies the page contents on a miss (default:
        an empty placeholder).  Returns the contents.  The page cannot be
        evicted until a matching :meth:`unpin`.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            frame[1] += 1
            self._frames.move_to_end(page_id)
            return frame[0]
        self.misses += 1
        self._make_room()
        self.disk.charge_read(1, requests=1)
        contents = loader(page_id) if loader is not None else bytearray()
        self._frames[page_id] = [contents, 1, False]
        return contents

    def unpin(self, page_id: Hashable, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page modified."""
        frame = self._frames.get(page_id)
        if frame is None or frame[1] == 0:
            raise ValueError(f"page {page_id!r} is not pinned")
        frame[1] -= 1
        if dirty:
            frame[2] = True

    def _make_room(self) -> None:
        if len(self._frames) < self.n_frames:
            return
        for page_id, frame in self._frames.items():
            if frame[1] == 0:
                if frame[2]:
                    self.disk.charge_write(1, requests=1)
                    self.writebacks += 1
                self.evictions += 1
                del self._frames[page_id]
                return
        raise BufferFullError(
            f"all {self.n_frames} frames pinned; cannot load another page"
        )

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write back every dirty unpinned page; returns pages written."""
        written = 0
        for frame in self._frames.values():
            if frame[2] and frame[1] == 0:
                frame[2] = False
                written += 1
        if written:
            self.disk.charge_write(written, requests=1)
            self.writebacks += written
        return written

    def pin_count(self, page_id: Hashable) -> int:
        frame = self._frames.get(page_id)
        return frame[1] if frame is not None else 0

    def resident(self, page_id: Hashable) -> bool:
        return page_id in self._frames

    @property
    def n_resident(self) -> int:
        return len(self._frames)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
