"""The paper's I/O cost model plus a CPU cost model for simulated runtime.

Section 2 of the paper: data moves in fixed-size pages; a request for ``n``
contiguous pages costs ``PT + n`` *page-transfer units*, where ``PT`` is the
ratio of disk-arm positioning time to single-page transfer time.  Reading the
join inputs and writing the join output are free of charge.

Because the original experiments ran C++ on a Sun SPARCstation 20, absolute
numbers are not reproducible in Python.  We therefore translate (a) counted
page-transfer units and (b) counted CPU operations into *simulated seconds*
with fixed constants, calibrated so that the smallest join of the paper (J1)
lands in the paper's order of magnitude.  All figures in EXPERIMENTS.md are
reported in these simulated seconds (plus wall clock for reference); the
*shape* of every curve depends only on the counts, not on the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rect import SIZEOF_KPE
from repro.core.stats import CpuCounters


@dataclass(frozen=True)
class CostModel:
    """Cost constants for the simulated disk and CPU.

    Attributes
    ----------
    page_size:
        Bytes per disk page.  8 KiB, a common mid-90s DBMS page size.
    pt_ratio:
        ``PT``: positioning time expressed in page-transfer units.  With a
        ~10 ms average seek and ~2 ms to transfer an 8 KiB page from a
        mid-90s disk, ``PT = 5``.
    page_transfer_seconds:
        Simulated seconds to transfer one page (the unit of ``PT + n``).
    kpe_bytes / result_bytes:
        Record sizes: a KPE is 20 bytes (4-byte id + four 4-byte floats);
        a result tuple is two ids (8 bytes).
    *_op_seconds:
        Simulated seconds per counted CPU operation.  Intersection tests,
        comparisons and structure operations get one constant; heap
        operations and Hilbert codes are more expensive; Z codes are cheap
        (two table lookups), which is exactly why Section 4.4.2 prefers the
        Peano curve.  ``batch_op_seconds`` prices one array *element*
        touched by the columnar kernels — orders of magnitude below the
        scalar constants, reflecting SIMD/C-loop execution.
    """

    page_size: int = 8192
    pt_ratio: float = 5.0
    page_transfer_seconds: float = 0.002
    kpe_bytes: int = SIZEOF_KPE
    result_bytes: int = 8
    test_op_seconds: float = 2.0e-6
    comparison_op_seconds: float = 1.0e-6
    heap_op_seconds: float = 3.0e-6
    structure_op_seconds: float = 1.5e-6
    refpoint_op_seconds: float = 3.0e-6
    batch_op_seconds: float = 5.0e-8
    zcode_op_seconds: float = 1.0e-6
    hilbert_code_op_seconds: float = 8.0e-6
    #: Simulated seconds per byte serialised across a process boundary
    #: (pickle encode + pipe + decode, ~500 MB/s end to end).  Prices the
    #: transport choice of the parallel executors: the planner charges
    #: pickled records per task under the legacy transport and only task
    #: tuples/manifests under the shared-memory transport.
    ipc_byte_seconds: float = 2.0e-9
    #: Simulated seconds of parent-side overhead per dispatch unit
    #: submitted to a pool (future bookkeeping, queue handoff).  Prices
    #: the scheduler's granularity: stealing dispatches more, smaller
    #: units than static chunking.
    dispatch_seconds: float = 5.0e-4
    #: Simulated seconds to spawn one pool worker process (fork/exec +
    #: interpreter warm-up).  Charged by the process executor when no
    #: persistent pool is available; the thread executor never pays it.
    pool_spawn_seconds: float = 1.5e-2
    #: Fraction of the vectorized join work that runs with the GIL
    #: released (inside numpy).  Bounds the thread executor's speedup by
    #: Amdahl: ``1 / ((1 - f) + f / workers)``.
    thread_parallel_fraction: float = 0.6
    #: Simulated seconds to open a memory-mapped ``.rcd`` dataset: a
    #: header read plus one mmap, independent of cardinality.  The
    #: flat-vs-linear contrast with :attr:`parse_record_seconds` is what
    #: makes EXPLAIN show the build-once/join-many amortization.
    mmap_open_seconds: float = 2.0e-3
    #: Simulated seconds to parse and validate one record when ingesting
    #: a non-mapped relation file (CSV field splitting / npy row
    #: conversion into KPE tuples).
    parse_record_seconds: float = 1.5e-6

    # ------------------------------------------------------------------
    # page arithmetic
    # ------------------------------------------------------------------
    def records_per_page(self, record_bytes: int) -> int:
        """Records fitting on one page (at least one)."""
        return max(1, self.page_size // record_bytes)

    def pages_for(self, n_records: int, record_bytes: int) -> int:
        """Pages needed to store *n_records* fixed-size records."""
        if n_records <= 0:
            return 0
        per_page = self.records_per_page(record_bytes)
        return -(-n_records // per_page)

    def bytes_for(self, n_records: int, record_bytes: int) -> int:
        """In-memory footprint charged against the memory budget."""
        return n_records * record_bytes

    # ------------------------------------------------------------------
    # cost translation
    # ------------------------------------------------------------------
    def request_units(self, n_pages: int) -> float:
        """Cost of one contiguous request of *n_pages* pages: ``PT + n``."""
        if n_pages <= 0:
            return 0.0
        return self.pt_ratio + n_pages

    def io_seconds(self, units: float) -> float:
        """Simulated seconds for a number of page-transfer units."""
        return units * self.page_transfer_seconds

    def ipc_seconds_for(self, n_bytes: float) -> float:
        """Simulated seconds to ship *n_bytes* between processes."""
        return n_bytes * self.ipc_byte_seconds

    def ingest_seconds(self, n_records: int, mapped: bool) -> float:
        """Simulated seconds to make *n_records* join-ready from a file.

        Mapped (``.rcd``) inputs pay a constant open; anything else pays
        a per-record parse.  EXPLAIN reports both so the amortization of
        ``repro build`` is visible per plan.
        """
        if mapped:
            return self.mmap_open_seconds
        return n_records * self.parse_record_seconds

    def cpu_seconds(self, counters: CpuCounters, hilbert: bool = False) -> float:
        """Simulated CPU seconds for a set of operation counts.

        ``hilbert`` selects the per-code cost; the caller knows which curve
        produced the ``code_computations`` count.
        """
        code_cost = (
            self.hilbert_code_op_seconds if hilbert else self.zcode_op_seconds
        )
        return (
            counters.intersection_tests * self.test_op_seconds
            + counters.comparisons * self.comparison_op_seconds
            + counters.heap_ops * self.heap_op_seconds
            + counters.structure_ops * self.structure_op_seconds
            + counters.refpoint_tests * self.refpoint_op_seconds
            + counters.batch_ops * self.batch_op_seconds
            + counters.code_computations * code_cost
        )

    def cpu_seconds_from_counts(
        self,
        *,
        intersection_tests: float = 0.0,
        comparisons: float = 0.0,
        heap_ops: float = 0.0,
        structure_ops: float = 0.0,
        refpoint_tests: float = 0.0,
        batch_ops: float = 0.0,
        code_computations: float = 0.0,
        hilbert: bool = False,
    ) -> float:
        """Simulated CPU seconds for *predicted* (fractional) counts.

        The planner's counterpart of :meth:`cpu_seconds`: estimated
        operation counts are real-valued expectations, not integer
        tallies, so this takes keywords instead of a :class:`CpuCounters`.
        Using the same per-operation constants keeps estimated and
        measured simulated seconds directly comparable in EXPLAIN output.
        """
        code_cost = (
            self.hilbert_code_op_seconds if hilbert else self.zcode_op_seconds
        )
        return (
            intersection_tests * self.test_op_seconds
            + comparisons * self.comparison_op_seconds
            + heap_ops * self.heap_op_seconds
            + structure_ops * self.structure_op_seconds
            + refpoint_tests * self.refpoint_op_seconds
            + batch_ops * self.batch_op_seconds
            + code_computations * code_cost
        )


DEFAULT_COST_MODEL = CostModel()


def mb(n: float) -> int:
    """Megabytes to bytes, for readable memory-budget literals."""
    return int(n * 1024 * 1024)
