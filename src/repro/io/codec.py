"""Record codecs and byte-packed page files.

The simulation keeps records as Python tuples for speed, but a
production-quality storage layer must demonstrate that the claimed record
sizes are real.  This module provides struct-based codecs matching the
cost model's record sizes exactly —

* :class:`KpeCodec` — 20 bytes: ``<i`` oid + four ``<f`` coordinates
  (the paper-era layout behind ``SIZEOF_KPE``),
* :class:`PairCodec` — 8 bytes: two ``<i`` oids (candidate/result pairs),
* :class:`LevelEntryCodec` — a level-file entry: a code whose width is
  ``ceil(2 * level / 8)`` bytes plus the 20-byte KPE, matching
  :func:`repro.s3j.levelfile.record_bytes_for_level` —

and a :class:`PackedPageFile` that stores real byte pages and charges the
same simulated I/O as :class:`~repro.io.pagefile.PageFile`.  The packed
path is exercised by tests and the serialization example; the drivers use
the tuple-based files for speed, with identical accounting.

Note the 32-bit float coordinates: like the original systems, the packed
format trades precision for size, so a decode(encode(x)) round trip is
exact only up to float32 — the tests pin that contract.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from repro.core.rect import KPE
from repro.io.disk import SimulatedDisk

_KPE_STRUCT = struct.Struct("<iffff")
_PAIR_STRUCT = struct.Struct("<ii")


class KpeCodec:
    """20-byte KPE records: 4-byte oid + four float32 coordinates."""

    record_bytes = _KPE_STRUCT.size  # 20

    @staticmethod
    def encode(kpe: Tuple) -> bytes:
        return _KPE_STRUCT.pack(kpe[0], kpe[1], kpe[2], kpe[3], kpe[4])

    @staticmethod
    def decode(blob: bytes) -> KPE:
        oid, xl, yl, xh, yh = _KPE_STRUCT.unpack(blob)
        return KPE(oid, xl, yl, xh, yh)


class PairCodec:
    """8-byte result/candidate pairs: two 4-byte oids."""

    record_bytes = _PAIR_STRUCT.size  # 8

    @staticmethod
    def encode(pair: Tuple[int, int]) -> bytes:
        return _PAIR_STRUCT.pack(pair[0], pair[1])

    @staticmethod
    def decode(blob: bytes) -> Tuple[int, int]:
        return _PAIR_STRUCT.unpack(blob)


class LevelEntryCodec:
    """Level-file entries: a 2*level-bit code (byte-rounded) + the KPE."""

    def __init__(self, level: int) -> None:
        if level < 0:
            raise ValueError("level must be non-negative")
        self.level = level
        self.code_bytes = 0 if level == 0 else max(1, -(-2 * level // 8))
        self.record_bytes = self.code_bytes + KpeCodec.record_bytes

    def encode(self, entry: Tuple[int, Tuple]) -> bytes:
        code, kpe = entry
        if code < 0 or (self.level and code >> (2 * self.level)):
            raise ValueError(
                f"code {code} out of range for level {self.level}"
            )
        prefix = code.to_bytes(self.code_bytes, "little") if self.code_bytes else b""
        return prefix + KpeCodec.encode(kpe)

    def decode(self, blob: bytes) -> Tuple[int, KPE]:
        code = (
            int.from_bytes(blob[: self.code_bytes], "little")
            if self.code_bytes
            else 0
        )
        return code, KpeCodec.decode(blob[self.code_bytes :])


class PackedPageFile:
    """A page file whose contents are genuine packed bytes.

    Pages are fixed-size bytearrays holding ``page_size // record_bytes``
    records each; I/O charging matches :class:`PageFile` (sequential bulk
    writes, chunked reads).
    """

    def __init__(self, disk: SimulatedDisk, codec: Any, name: str = "") -> None:
        self.disk = disk
        self.codec = codec
        self.name = name
        self.pages: List[bytearray] = []
        self._last_page_records = 0

    @property
    def records_per_page(self) -> int:
        return max(1, self.disk.cost.page_size // self.codec.record_bytes)

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def n_records(self) -> int:
        if not self.pages:
            return 0
        return (len(self.pages) - 1) * self.records_per_page + (
            self._last_page_records
        )

    def append_bulk(self, records: Sequence) -> None:
        """Pack and append records; one contiguous write request."""
        if not records:
            return
        per_page = self.records_per_page
        pages_before = len(self.pages)
        for record in records:
            blob = self.codec.encode(record)
            if not self.pages or self._last_page_records == per_page:
                self.pages.append(bytearray())
                self._last_page_records = 0
            self.pages[-1].extend(blob)
            self._last_page_records += 1
        self.disk.charge_write(len(self.pages) - pages_before or 1, requests=1)

    def read_all(self) -> List:
        """Decode the whole file; one contiguous read request."""
        self.disk.charge_read(len(self.pages), requests=1 if self.pages else 0)
        out = []
        record_bytes = self.codec.record_bytes
        for index, page in enumerate(self.pages):
            count = (
                self._last_page_records
                if index == len(self.pages) - 1
                else self.records_per_page
            )
            for slot in range(count):
                blob = bytes(page[slot * record_bytes : (slot + 1) * record_bytes])
                out.append(self.codec.decode(blob))
        return out

    @property
    def n_bytes(self) -> int:
        return sum(len(page) for page in self.pages)
