"""Simulated storage substrate: cost model, disk, paged files, external sort.

The paper's I/O model (Section 2): pages of fixed size; a request for ``n``
contiguous pages costs ``PT + n`` page-transfer units.  This package
implements that model as a deterministic simulation — see DESIGN.md for the
substitution rationale (original: Seagate 2 GB disk with direct I/O).
"""

from repro.io.buffer import BufferFullError, BufferManager
from repro.io.codec import KpeCodec, LevelEntryCodec, PackedPageFile, PairCodec
from repro.io.costmodel import CostModel, DEFAULT_COST_MODEL, mb
from repro.io.disk import IoCounters, SimulatedDisk
from repro.io.extsort import external_sort, sort_in_memory, sorted_dedup
from repro.io.pagefile import PageFile, PageWriter
from repro.io.rcd import (
    RCD_MAGIC,
    RCD_VERSION,
    RcdFormatError,
    RcdHeader,
    read_header,
    read_rcd_python,
    write_rcd_python,
)

__all__ = [
    "BufferFullError",
    "BufferManager",
    "CostModel",
    "KpeCodec",
    "LevelEntryCodec",
    "PackedPageFile",
    "PairCodec",
    "DEFAULT_COST_MODEL",
    "IoCounters",
    "PageFile",
    "PageWriter",
    "RCD_MAGIC",
    "RCD_VERSION",
    "RcdFormatError",
    "RcdHeader",
    "SimulatedDisk",
    "external_sort",
    "mb",
    "read_header",
    "read_rcd_python",
    "sort_in_memory",
    "sorted_dedup",
    "write_rcd_python",
]
