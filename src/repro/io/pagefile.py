"""Paged record files on the simulated disk.

A :class:`PageFile` stores fixed-size records (KPEs, result tuples, or any
tuple with an attached sort code).  Contents live in memory, but every
access is charged to the owning :class:`~repro.io.disk.SimulatedDisk` at the
granularity the real algorithm would use:

* partition writers flush one buffer at a time (a buffer that holds one page
  models PBSM's per-partition output buffers → one positioning per page),
* sequential bulk reads/writes issue one contiguous request for many pages,
* merge readers pull one page per request (random access across runs).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence

from repro.io.disk import SimulatedDisk


class PageFile:
    """A file of fixed-size records with charged page I/O."""

    __slots__ = ("disk", "record_bytes", "name", "records")

    def __init__(self, disk: SimulatedDisk, record_bytes: int, name: str = "") -> None:
        self.disk = disk
        self.record_bytes = record_bytes
        self.name = name
        self.records: List = []

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self.records)

    @property
    def n_pages(self) -> int:
        return self.disk.cost.pages_for(len(self.records), self.record_bytes)

    @property
    def n_bytes(self) -> int:
        """In-memory footprint if the whole file is loaded."""
        return len(self.records) * self.record_bytes

    def records_per_page(self) -> int:
        return self.disk.cost.records_per_page(self.record_bytes)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def writer(self, buffer_pages: int = 1) -> "PageWriter":
        """A buffered writer flushing whole buffers as single requests."""
        return PageWriter(self, buffer_pages)

    def append_bulk(self, records: Sequence, max_request_pages: int = 0) -> None:
        """Sequentially write *records* to the end of the file.

        The write is charged as one contiguous request (or several, when
        ``max_request_pages`` caps the request size — e.g. because only a
        bounded output buffer is available).
        """
        if not records:
            return
        pages = self.disk.cost.pages_for(len(records), self.record_bytes)
        if max_request_pages and max_request_pages < pages:
            full, rest = divmod(pages, max_request_pages)
            requests = full + (1 if rest else 0)
        else:
            requests = 1
        self.disk.charge_write(pages, requests)
        self.records.extend(records)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read_all(self) -> List:
        """Read the whole file as one contiguous request."""
        self.disk.charge_read(self.n_pages, requests=1 if self.records else 0)
        return list(self.records)

    def iter_chunks(self, buffer_pages: int) -> Iterator[List]:
        """Iterate the file in buffer-sized chunks, one request each."""
        if buffer_pages < 1:
            raise ValueError("buffer_pages must be >= 1")
        per_chunk = buffer_pages * self.records_per_page()
        for start in range(0, len(self.records), per_chunk):
            chunk = self.records[start : start + per_chunk]
            pages = self.disk.cost.pages_for(len(chunk), self.record_bytes)
            self.disk.charge_read(pages, requests=1)
            yield chunk

    def iter_records(self, buffer_pages: int = 1) -> Iterator:
        """Iterate records with a small read buffer (merge-style access)."""
        for chunk in self.iter_chunks(buffer_pages):
            for record in chunk:
                yield record

    def clear(self) -> None:
        """Drop the contents without charging I/O (deallocation is free)."""
        self.records.clear()


class PageWriter:
    """Accumulates records and flushes whole buffers as single requests.

    With ``buffer_pages=1`` this models the per-partition one-page output
    buffers of PBSM's partitioning phase: every flush pays one positioning
    plus one transfer.
    """

    __slots__ = ("_file", "_buffer_pages", "_buffer_records", "_pending", "_closed")

    def __init__(self, file: PageFile, buffer_pages: int) -> None:
        if buffer_pages < 1:
            raise ValueError("buffer_pages must be >= 1")
        self._file = file
        self._buffer_pages = buffer_pages
        self._buffer_records = buffer_pages * file.records_per_page()
        self._pending: List = []
        self._closed = False

    def write(self, record: Any) -> None:
        if self._closed:
            raise RuntimeError(f"writer for {self._file.name!r} is closed")
        self._pending.append(record)
        if len(self._pending) >= self._buffer_records:
            self._flush()

    def write_many(self, records: Iterable) -> None:
        for record in records:
            self.write(record)

    def _flush(self) -> None:
        if not self._pending:
            return
        pages = self._file.disk.cost.pages_for(
            len(self._pending), self._file.record_bytes
        )
        self._file.disk.charge_write(pages, requests=1)
        self._file.records.extend(self._pending)
        self._pending = []

    def close(self) -> None:
        """Flush the final partial buffer and seal the writer."""
        if not self._closed:
            self._flush()
            self._closed = True

    def __enter__(self) -> "PageWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
