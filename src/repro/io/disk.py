"""A simulated disk charging the paper's ``PT + n`` cost per request.

The simulation holds file contents in memory but routes every transfer
through :class:`SimulatedDisk`, which records, per named *phase*
(partitioning, sorting, join, duplicate removal, ...):

* the number of read/write requests (each paying the positioning cost PT),
* the number of pages read/written (each paying one transfer unit).

This reproduces the paper's I/O accounting deterministically, independent of
the host machine, while still executing the real data movement (records are
genuinely staged through the "files" and re-read by later phases).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.io.costmodel import CostModel, DEFAULT_COST_MODEL


@dataclass
class IoCounters:
    """Per-phase I/O tallies in requests and pages."""

    read_requests: int = 0
    pages_read: int = 0
    write_requests: int = 0
    pages_written: int = 0

    def units(self, cost: CostModel) -> float:
        """Page-transfer units: ``PT`` per request plus one per page."""
        requests = self.read_requests + self.write_requests
        pages = self.pages_read + self.pages_written
        return cost.pt_ratio * requests + pages

    def add(self, other: "IoCounters") -> None:
        self.read_requests += other.read_requests
        self.pages_read += other.pages_read
        self.write_requests += other.write_requests
        self.pages_written += other.pages_written


class SimulatedDisk:
    """Tracks simulated I/O per phase and owns the cost model.

    All page-level charging is funnelled through :meth:`charge_read` and
    :meth:`charge_write`; the paged-file layer decides what constitutes a
    contiguous request.
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost = cost_model or DEFAULT_COST_MODEL
        self._phase = "default"
        self.counters: Dict[str, IoCounters] = {}

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to phase *name*."""
        previous = self._phase
        self._phase = name
        try:
            yield
        finally:
            self._phase = previous

    def _phase_counters(self) -> IoCounters:
        counters = self.counters.get(self._phase)
        if counters is None:
            counters = IoCounters()
            self.counters[self._phase] = counters
        return counters

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge_read(self, n_pages: int, requests: int = 1) -> None:
        """Charge a read of *n_pages* pages in *requests* contiguous runs."""
        if n_pages <= 0:
            return
        counters = self._phase_counters()
        counters.read_requests += requests
        counters.pages_read += n_pages

    def charge_write(self, n_pages: int, requests: int = 1) -> None:
        """Charge a write of *n_pages* pages in *requests* contiguous runs."""
        if n_pages <= 0:
            return
        counters = self._phase_counters()
        counters.write_requests += requests
        counters.pages_written += n_pages

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def units_by_phase(self) -> Dict[str, float]:
        """Page-transfer units per phase."""
        return {
            phase: counters.units(self.cost)
            for phase, counters in self.counters.items()
        }

    def pages_by_phase(self) -> Dict[str, int]:
        """Pages moved (read + written) per phase, without positioning."""
        return {
            phase: counters.pages_read + counters.pages_written
            for phase, counters in self.counters.items()
        }

    def total_units(self) -> float:
        return sum(self.units_by_phase().values())

    def total_counters(self) -> IoCounters:
        total = IoCounters()
        for counters in self.counters.values():
            total.add(counters)
        return total

    def reset(self) -> None:
        self.counters.clear()
