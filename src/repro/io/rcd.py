"""The ``.rcd`` on-disk columnar dataset format (build once, join many).

Every join today re-parses its inputs (CSV field splitting, ``.npy``
row validation) and rebuilds columnar arrays from Python tuples — for
TIGER-scale relations (CAL_ST ≈ 1.9M MBRs) that ingest dominates
end-to-end time and has to be paid again by every process that touches
the data.  Both Tsitsigkos & Mamoulis ("Parallel In-Memory Evaluation
of Spatial Joins") and the two-layer partitioning line of work assume a
preprocessed binary format whose build cost is amortised across many
joins; ``.rcd`` ("repro columnar dataset") is that format here.

Layout (version 1, little-endian)::

    [ header: RCD_HEADER_BYTES, zero-padded ]
      magic            8s   b"REPRORCD"
      version          H    1
      flags            H    bit 0: rows are ascending in xl
      header_bytes     I    4096 (columns start page-aligned)
      n                q    row count
      extent           4d   dataset MBR (xl, yl, xh, yh); zeros when empty
      fingerprint      32s  hex content fingerprint (planner cache key)
      n_columns        H    5
      column table     5 x (name 4s, dtype 4s, offset q, nbytes q)
    [ oid  int64[n]   ]
    [ xl   float64[n] ]
    [ yl   float64[n] ]
    [ xh   float64[n] ]
    [ yh   float64[n] ]

The column payload is the exact ``oid:int64 / xl,yl,xh,yh:float64``
structure-of-arrays layout every kernel consumes
(:class:`~repro.kernels.columnar.ColumnarRelation`), so an open is a
header read plus memory mapping — O(ms) regardless of cardinality — and
the mapped columns feed the join kernels without a single Python tuple
being built (see :mod:`repro.kernels.mmapstore`).

This module is deliberately numpy-free at import time: the header codec
and the struct-based reader/writer below are the pure-Python fallback
that keeps the format round-tripping when the columnar backend is
disabled (``REPRO_DISABLE_NUMPY`` or numpy absent).  The vectorized
writer/mapper lives in :mod:`repro.kernels.mmapstore`; both sides
produce and accept byte-identical files.

Row order is preserved exactly as given to the builder, which is what
makes joins from a mapped store byte-identical to joins over the
original in-memory sequence.  The ``sorted_by_xl`` flag is *detected*,
never enforced, so pre-sorted datasets additionally skip the kernels'
x-sorts on open.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.rect import KPE, valid_kpe

PathLike = Union[str, Path]

#: File magic: any mismatch means "not an .rcd file at all".
RCD_MAGIC = b"REPRORCD"

#: Format version this build of the library reads and writes.
RCD_VERSION = 1

#: Fixed header size; columns start at this (page-aligned) offset.
RCD_HEADER_BYTES = 4096

#: Header flag bit: rows are in ascending ``xl`` order.
FLAG_SORTED_BY_XL = 1

#: The version-1 column schema: name and numpy-style dtype code, in
#: on-disk order.  ``<i8``/``<f8`` are little-endian 8-byte integers and
#: floats — exactly the in-memory dtypes of ``ColumnarRelation``.
RCD_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("oid", "<i8"),
    ("xl", "<f8"),
    ("yl", "<f8"),
    ("xh", "<f8"),
    ("yh", "<f8"),
)

_FIXED_HEADER = struct.Struct("<8sHHIq4d32sH")
_COLUMN_ENTRY = struct.Struct("<4s4sqq")

#: Records converted per struct batch by the pure-Python codec (bounds
#: the transient ``struct.pack``/``unpack`` argument tuples).
_STRUCT_CHUNK = 65536


class RcdFormatError(ValueError):
    """A file is not a readable ``.rcd`` dataset (and why, precisely)."""


class RcdHeader:
    """The decoded fixed header of an ``.rcd`` file."""

    __slots__ = (
        "version",
        "flags",
        "header_bytes",
        "n",
        "extent",
        "fingerprint",
        "columns",
    )

    def __init__(
        self,
        version: int,
        flags: int,
        header_bytes: int,
        n: int,
        extent: Tuple[float, float, float, float],
        fingerprint: str,
        columns: Tuple[Tuple[str, str, int, int], ...],
    ) -> None:
        self.version = version
        self.flags = flags
        self.header_bytes = header_bytes
        self.n = n
        self.extent = extent
        self.fingerprint = fingerprint
        #: ``(name, dtype, byte_offset, nbytes)`` per column, file order.
        self.columns = columns

    @property
    def sorted_by_xl(self) -> bool:
        return bool(self.flags & FLAG_SORTED_BY_XL)

    @property
    def data_bytes(self) -> int:
        """Total column payload bytes following the header."""
        return sum(nbytes for _, _, _, nbytes in self.columns)

    def column(self, name: str) -> Tuple[str, str, int, int]:
        for entry in self.columns:
            if entry[0] == name:
                return entry
        raise KeyError(name)


def _column_layout(n: int) -> Tuple[Tuple[str, str, int, int], ...]:
    """The version-1 column table for *n* rows."""
    entries: List[Tuple[str, str, int, int]] = []
    offset = RCD_HEADER_BYTES
    for name, dtype in RCD_COLUMNS:
        nbytes = 8 * n
        entries.append((name, dtype, offset, nbytes))
        offset += nbytes
    return tuple(entries)


def pack_header(
    n: int,
    extent: Tuple[float, float, float, float],
    fingerprint: str,
    sorted_by_xl: bool,
) -> bytes:
    """Encode the fixed header (exactly :data:`RCD_HEADER_BYTES` long)."""
    if len(fingerprint) != 32:
        raise ValueError(
            f"fingerprint must be 32 hex chars, got {len(fingerprint)}"
        )
    flags = FLAG_SORTED_BY_XL if sorted_by_xl else 0
    head = _FIXED_HEADER.pack(
        RCD_MAGIC,
        RCD_VERSION,
        flags,
        RCD_HEADER_BYTES,
        n,
        extent[0],
        extent[1],
        extent[2],
        extent[3],
        fingerprint.encode("ascii"),
        len(RCD_COLUMNS),
    )
    table = b"".join(
        _COLUMN_ENTRY.pack(
            name.encode("ascii"), dtype.encode("ascii"), offset, nbytes
        )
        for name, dtype, offset, nbytes in _column_layout(n)
    )
    blob = head + table
    return blob + b"\x00" * (RCD_HEADER_BYTES - len(blob))


def parse_header(blob: bytes, path: PathLike = "<bytes>") -> RcdHeader:
    """Decode and validate a header *blob* (raises :class:`RcdFormatError`)."""
    if len(blob) < _FIXED_HEADER.size:
        raise RcdFormatError(
            f"{path}: truncated header ({len(blob)} bytes, need at least "
            f"{_FIXED_HEADER.size}) — not a complete .rcd file"
        )
    (
        magic,
        version,
        flags,
        header_bytes,
        n,
        xl,
        yl,
        xh,
        yh,
        fingerprint_raw,
        n_columns,
    ) = _FIXED_HEADER.unpack_from(blob)
    if magic != RCD_MAGIC:
        raise RcdFormatError(
            f"{path}: bad magic {magic!r} (expected {RCD_MAGIC!r}) — "
            "not an .rcd dataset"
        )
    if version != RCD_VERSION:
        raise RcdFormatError(
            f"{path}: format version {version} is not supported by this "
            f"build (reads version {RCD_VERSION}); rebuild the dataset "
            "with `repro build`"
        )
    if header_bytes != RCD_HEADER_BYTES:
        raise RcdFormatError(
            f"{path}: header size {header_bytes} != {RCD_HEADER_BYTES}"
        )
    if n < 0:
        raise RcdFormatError(f"{path}: negative row count {n}")
    if n_columns != len(RCD_COLUMNS):
        raise RcdFormatError(
            f"{path}: {n_columns} columns (version {RCD_VERSION} has "
            f"exactly {len(RCD_COLUMNS)})"
        )
    if len(blob) < _FIXED_HEADER.size + n_columns * _COLUMN_ENTRY.size:
        raise RcdFormatError(
            f"{path}: truncated column table — not a complete .rcd file"
        )
    columns: List[Tuple[str, str, int, int]] = []
    for index in range(n_columns):
        name_raw, dtype_raw, offset, nbytes = _COLUMN_ENTRY.unpack_from(
            blob, _FIXED_HEADER.size + index * _COLUMN_ENTRY.size
        )
        name = name_raw.rstrip(b"\x00").decode("ascii")
        dtype = dtype_raw.rstrip(b"\x00").decode("ascii")
        expected_name, expected_dtype = RCD_COLUMNS[index]
        if name != expected_name or dtype != expected_dtype:
            raise RcdFormatError(
                f"{path}: column {index} is {name}:{dtype}, expected "
                f"{expected_name}:{expected_dtype}"
            )
        if offset < RCD_HEADER_BYTES or nbytes != 8 * n:
            raise RcdFormatError(
                f"{path}: column {name} layout (offset {offset}, "
                f"{nbytes} bytes) disagrees with row count {n}"
            )
        columns.append((name, dtype, offset, nbytes))
    try:
        fingerprint = fingerprint_raw.decode("ascii")
        int(fingerprint, 16)
    except (UnicodeDecodeError, ValueError) as exc:
        raise RcdFormatError(
            f"{path}: corrupt content fingerprint {fingerprint_raw!r}"
        ) from exc
    return RcdHeader(
        version, flags, header_bytes, n, (xl, yl, xh, yh), fingerprint, columns
    )


def read_header(path: PathLike) -> RcdHeader:
    """Read and validate the header of *path*, including the body length."""
    with open(path, "rb") as handle:
        blob = handle.read(RCD_HEADER_BYTES)
        header = parse_header(blob, path)
        handle.seek(0, 2)
        size = handle.tell()
    expected = RCD_HEADER_BYTES + header.data_bytes
    if size < expected:
        raise RcdFormatError(
            f"{path}: truncated column data ({size} bytes on disk, header "
            f"promises {expected}) — the build was interrupted; re-run "
            "`repro build`"
        )
    return header


def dataset_fingerprint(kpes: Sequence[Tuple]) -> str:
    """The content fingerprint stored in the header.

    This is *the planner's* relation fingerprint
    (:func:`repro.planner.stats.relation_fingerprint`), computed once at
    build time: a mapped open then returns the stored value, so profile
    and plan caches hit across in-memory and mapped representations of
    the same records without re-sampling.  (Function-local import: the
    planner package is heavyweight and this module loads at CLI start.)
    """
    from repro.planner.stats import relation_fingerprint

    return relation_fingerprint(kpes)


def _extent_of(kpes: Sequence[Tuple]) -> Tuple[float, float, float, float]:
    if not len(kpes):
        return (0.0, 0.0, 0.0, 0.0)
    first = kpes[0]
    xl, yl, xh, yh = first[1], first[2], first[3], first[4]
    for k in kpes:
        if k[1] < xl:
            xl = k[1]
        if k[2] < yl:
            yl = k[2]
        if k[3] > xh:
            xh = k[3]
        if k[4] > yh:
            yh = k[4]
    return (xl, yl, xh, yh)


def _chunks(n: int) -> Iterator[Tuple[int, int]]:
    for start in range(0, n, _STRUCT_CHUNK):
        yield start, min(start + _STRUCT_CHUNK, n)


def write_rcd_python(
    kpes: Sequence[Tuple],
    path: PathLike,
    fingerprint: Optional[str] = None,
) -> RcdHeader:
    """Write *kpes* as an ``.rcd`` file with :mod:`struct` only.

    The pure-Python builder: byte-identical output to the vectorized
    writer in :mod:`repro.kernels.mmapstore` (the parity tests pin this
    down), so a dataset built without numpy is mapped zero-copy by any
    numpy-enabled process later.  Validates every record on the way in —
    the read side trusts the file.
    """
    n = len(kpes)
    for k in kpes:
        if not valid_kpe(k):
            raise ValueError(f"invalid MBR {tuple(k)} cannot be built")
    if fingerprint is None:
        fingerprint = dataset_fingerprint(kpes)
    sorted_by_xl = all(
        kpes[i][1] <= kpes[i + 1][1] for i in range(n - 1)
    )
    header_blob = pack_header(n, _extent_of(kpes), fingerprint, sorted_by_xl)
    with open(path, "wb") as handle:
        handle.write(header_blob)
        for lo, hi in _chunks(n):
            m = hi - lo
            handle.write(
                struct.pack(f"<{m}q", *(int(kpes[i][0]) for i in range(lo, hi)))
            )
        for field in (1, 2, 3, 4):
            for lo, hi in _chunks(n):
                m = hi - lo
                handle.write(
                    struct.pack(
                        f"<{m}d",
                        *(float(kpes[i][field]) for i in range(lo, hi)),
                    )
                )
    return parse_header(header_blob, path)


def read_rcd_python(path: PathLike) -> List[KPE]:
    """Read an ``.rcd`` file into KPE tuples with :mod:`struct` only.

    The no-numpy fallback reader: same records, same order as the mapped
    open.  Loads the full columns (there is nothing to map them with),
    so it pays O(n) — the format still round-trips, it just cannot be
    O(ms) without the mapping machinery.
    """
    header = read_header(path)
    n = header.n
    columns: List[List[float]] = []
    with open(path, "rb") as handle:
        for name, _dtype, offset, nbytes in header.columns:
            handle.seek(offset)
            blob = handle.read(nbytes)
            if len(blob) != nbytes:
                raise RcdFormatError(
                    f"{path}: column {name} truncated mid-read"
                )
            code = "q" if name == "oid" else "d"
            values: List[float] = []
            for lo, hi in _chunks(n):
                values.extend(
                    struct.unpack_from(f"<{hi - lo}{code}", blob, 8 * lo)
                )
            columns.append(values)
    oid, xl, yl, xh, yh = columns
    return [
        KPE(int(oid[i]), xl[i], yl[i], xh[i], yh[i]) for i in range(n)
    ]


__all__ = [
    "FLAG_SORTED_BY_XL",
    "RCD_COLUMNS",
    "RCD_HEADER_BYTES",
    "RCD_MAGIC",
    "RCD_VERSION",
    "RcdFormatError",
    "RcdHeader",
    "dataset_fingerprint",
    "pack_header",
    "parse_header",
    "read_header",
    "read_rcd_python",
    "write_rcd_python",
]
