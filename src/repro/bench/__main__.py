"""CLI runner: ``python -m repro.bench [experiment ...]``.

Runs the named experiments (default: all) and prints each result table;
with ``--out DIR`` the tables are additionally written to per-experiment
text files, which is how the EXPERIMENTS.md record was produced.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.render import ascii_chart


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment names (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-experiment .txt files into",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render sweep experiments as ASCII charts",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in names:
        started = time.perf_counter()
        result = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - started
        text = result.to_text()
        if args.chart and len(result.rows) >= 4:
            numeric = [
                i
                for i in range(1, len(result.columns))
                if all(isinstance(row[i], (int, float)) for row in result.rows)
            ]
            x_ok = all(
                isinstance(row[0], (int, float)) for row in result.rows
            )
            if x_ok and numeric:
                series = {
                    result.columns[i]: [
                        (float(row[0]), float(row[i])) for row in result.rows
                    ]
                    for i in numeric[:4]
                }
                text += "\n" + ascii_chart(
                    series, x_label=result.columns[0], y_label="value"
                )
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s wall]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
