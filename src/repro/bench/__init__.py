"""Experiment harness: regenerates every table and figure of the paper."""

from repro.bench.experiments import EXPERIMENTS
from repro.bench.render import ExperimentResult, ascii_chart, format_table
from repro.bench.workloads import (
    EXTENDED_MEMORY_FRACTIONS,
    LA_MEMORY_FRACTION,
    MEMORY_FRACTIONS,
    REDUCED_MEMORY_FRACTIONS,
    input_bytes,
    j5_inputs,
    la_join,
    la_memory,
    la_p_sweep,
    memory_for_fraction,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "EXTENDED_MEMORY_FRACTIONS",
    "LA_MEMORY_FRACTION",
    "MEMORY_FRACTIONS",
    "REDUCED_MEMORY_FRACTIONS",
    "ascii_chart",
    "format_table",
    "input_bytes",
    "j5_inputs",
    "la_join",
    "la_memory",
    "la_p_sweep",
    "memory_for_fraction",
]
