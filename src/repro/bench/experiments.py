"""The experiment harness: one function per table/figure of the paper.

Every function materialises the workload at the configured reproduction
scale, executes the relevant algorithm configurations, and returns an
:class:`~repro.bench.render.ExperimentResult` whose rows mirror what the
paper's table or figure reports.  Absolute numbers differ (synthetic data,
simulated cost model, reduced scale); the *shape* — who wins, by what
factor, where the crossovers sit — is the reproduction target.  The
measured-vs-paper record lives in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bench.render import ExperimentResult
from repro.bench.workloads import (
    EXTENDED_MEMORY_FRACTIONS,
    MEMORY_FRACTIONS,
    PLANNER_MEMORY_FRACTIONS,
    REDUCED_MEMORY_FRACTIONS,
    j5_inputs,
    la_join,
    la_memory,
    la_p_sweep,
    memory_for_fraction,
    planner_sweep,
)
from repro.core.phases import (
    PHASE_DEDUP,
    PHASE_JOIN,
    PHASE_PARTITION,
    PHASE_REPARTITION,
    PHASE_SORT,
)
from repro.core.stats import CpuCounters
from repro.datasets import (
    PAPER_COVERAGE,
    PAPER_JOIN_RESULTS,
    dataset,
    la_pair,
    selectivity,
    summarize,
)
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.pbsm import PBSM
from repro.s3j import S3J

_COST = CostModel()


# ----------------------------------------------------------------------
# Table 1 / Table 2: datasets and joins
# ----------------------------------------------------------------------
def run_table1() -> ExperimentResult:
    """Dataset inventory: cardinality and coverage (Table 1)."""
    rows = []
    for name in ("LA_RR", "LA_ST", "CAL_ST"):
        s = summarize(name, dataset(name))
        rows.append((name, s.n_mbrs, round(s.coverage, 3), PAPER_COVERAGE[name]))
    for p in (2, 3):
        rr, st = la_pair(float(p))
        s_rr = summarize(f"LA_RR({p})", rr)
        s_st = summarize(f"LA_ST({p})", st)
        rows.append(
            (s_rr.name, s_rr.n_mbrs, round(s_rr.coverage, 3), PAPER_COVERAGE["LA_RR"] * p * p)
        )
        rows.append(
            (s_st.name, s_st.n_mbrs, round(s_st.coverage, 3), PAPER_COVERAGE["LA_ST"] * p * p)
        )
    return ExperimentResult(
        exp_id="Table 1",
        title="Datasets used in the experiments",
        columns=["dataset", "n_mbrs", "coverage", "paper_coverage"],
        rows=rows,
        paper_claim="LA_RR cov 0.22, LA_ST cov 0.03, CAL_ST cov 0.12; (p) scales coverage by p^2",
        notes=["cardinalities are the paper's scaled by REPRO_SCALE (see DESIGN.md)"],
    )


def run_table2() -> ExperimentResult:
    """Join inventory: result counts and selectivities (Table 2)."""
    rows = []
    for name in ("J1", "J2", "J3", "J4", "J5"):
        left, right = la_join(name) if name != "J5" else j5_inputs()
        memory = memory_for_fraction(left, right, 0.5)
        res = PBSM(memory, internal="sweep_trie", dedup="rpm").run(left, right)
        rows.append(
            (
                name,
                len(left),
                len(right),
                res.stats.n_results,
                res.stats.selectivity(),
                PAPER_JOIN_RESULTS[name],
            )
        )
    return ExperimentResult(
        exp_id="Table 2",
        title="The spatial joins of the experiments",
        columns=["join", "|R|", "|S|", "results", "selectivity", "paper_results"],
        rows=rows,
        paper_claim="J1..J4 grow from 86k to 1.2M results; J5 has 9.78M",
        notes=[
            "result counts scale with REPRO_SCALE^2; selectivity ordering "
            "J1 < J2 < J3 < J4 must match the paper"
        ],
    )


# ----------------------------------------------------------------------
# Figure 3: PBSM duplicate removal — PD (sort) vs RPM
# ----------------------------------------------------------------------
def run_fig3() -> ExperimentResult:
    """I/O and total runtime of PBSM with sort-dedup vs RPM (Fig 3a/3b)."""
    rows = []
    for name in ("J1", "J2", "J3", "J4"):
        left, right = la_join(name)
        memory = la_memory(left, right)
        pd = PBSM(memory, internal="sweep_list", dedup="sort").run(left, right)
        rp = PBSM(memory, internal="sweep_list", dedup="rpm").run(left, right)
        io_base = sum(
            units
            for phase, units in pd.stats.io_units_by_phase.items()
            if phase != PHASE_DEDUP
        )
        io_dedup = pd.stats.io_units_by_phase.get(PHASE_DEDUP, 0.0)
        rows.append(
            (
                name,
                round(io_base),
                round(io_dedup),
                round(rp.stats.io_units),
                round(pd.stats.sim_seconds, 2),
                round(rp.stats.sim_seconds, 2),
                pd.stats.n_results,
            )
        )
    return ExperimentResult(
        exp_id="Figure 3",
        title="PBSM: I/O cost and runtime, original (PD) vs reference points (RP)",
        columns=[
            "join",
            "PD_io_base",
            "PD_io_dedup",
            "RP_io",
            "PD_runtime",
            "RP_runtime",
            "results",
        ],
        rows=rows,
        paper_claim=(
            "the dedup-sort I/O overhead grows with the result set; "
            "PBSM+RPM avoids it entirely and is considerably faster"
        ),
    )


# ----------------------------------------------------------------------
# Figure 4: internal plane-sweep algorithms in main memory
# ----------------------------------------------------------------------
def run_fig4(include_j5: bool = True) -> ExperimentResult:
    """In-memory joins of the full datasets: list vs trie sweep (Fig 4)."""
    rows = []
    joins = ["J1", "J2", "J3", "J4"] + (["J5"] if include_j5 else [])
    for name in joins:
        left, right = la_join(name) if name != "J5" else j5_inputs()
        per_algo = {}
        for algo_name in ("sweep_list", "sweep_trie"):
            counters = CpuCounters()
            algo = internal_algorithm(algo_name)
            n = [0]

            def emit(r, s):
                n[0] += 1

            algo(left, right, emit, counters)
            per_algo[algo_name] = (_COST.cpu_seconds(counters), counters, n[0])
        list_s, list_c, n_results = per_algo["sweep_list"]
        trie_s, trie_c, _ = per_algo["sweep_trie"]
        rows.append(
            (
                name,
                round(list_s, 2),
                round(trie_s, 2),
                list_c.intersection_tests,
                trie_c.intersection_tests,
                n_results,
            )
        )
    return ExperimentResult(
        exp_id="Figure 4",
        title="Internal join algorithms on the whole datasets in memory",
        columns=["join", "list_sec", "trie_sec", "list_tests", "trie_tests", "results"],
        rows=rows,
        paper_claim=(
            "trie superior for all joins; its advantage grows with "
            "selectivity; J5: trie 236s vs list 768s (>3x)"
        ),
    )


# ----------------------------------------------------------------------
# Figure 5 / Figure 6: PBSM vs memory (J5)
# ----------------------------------------------------------------------
def run_fig5(fractions=EXTENDED_MEMORY_FRACTIONS) -> ExperimentResult:
    """PBSM(list) vs PBSM(trie) total runtime as memory grows (Fig 5)."""
    left, right = j5_inputs()
    rows = []
    for fraction in fractions:
        memory = memory_for_fraction(left, right, fraction)
        res_list = PBSM(memory, internal="sweep_list").run(left, right)
        res_trie = PBSM(memory, internal="sweep_trie").run(left, right)
        rows.append(
            (
                round(fraction * 100),
                round(res_list.stats.sim_seconds, 2),
                round(res_trie.stats.sim_seconds, 2),
                res_list.stats.n_partitions,
            )
        )
    return ExperimentResult(
        exp_id="Figure 5",
        title="PBSM list vs trie, runtime over memory (J5)",
        columns=["mem_%input", "list_sec", "trie_sec", "P"],
        rows=rows,
        paper_claim=(
            "list is slightly better below ~30% of input size; trie wins "
            "beyond; list runtime *increases* with more memory"
        ),
    )


def run_fig6(fractions=MEMORY_FRACTIONS) -> ExperimentResult:
    """Fraction of PBSM runtime spent repartitioning (Fig 6)."""
    left, right = j5_inputs()
    rows = []
    for fraction in fractions:
        memory = memory_for_fraction(left, right, fraction)
        res = PBSM(memory, internal="sweep_list", t_factor=1.0).run(left, right)
        st = res.stats
        repart = st.sim_seconds_by_phase.get(PHASE_REPARTITION, 0.0)
        share = repart / st.sim_seconds if st.sim_seconds else 0.0
        rows.append(
            (
                round(fraction * 100),
                round(share * 100, 1),
                st.repartition_events,
                round(st.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Figure 6",
        title="Share of PBSM runtime spent repartitioning (J5)",
        columns=["mem_%input", "repart_%runtime", "events", "runtime_sec"],
        rows=rows,
        paper_claim=(
            "~20% of runtime at small memories, diminishing to ~0 as "
            "memory grows"
        ),
    )


# ----------------------------------------------------------------------
# Figure 11 / Figure 12: S3J variants (J5)
# ----------------------------------------------------------------------
def run_fig11(fractions=REDUCED_MEMORY_FRACTIONS) -> ExperimentResult:
    """S3J original vs replicated: CPU and total runtime (Fig 11)."""
    left, right = j5_inputs()
    rows = []
    for fraction in fractions:
        memory = memory_for_fraction(left, right, fraction)
        orig = S3J(memory, replicate=False).run(left, right)
        repl = S3J(memory, replicate=True).run(left, right)
        rows.append(
            (
                round(fraction * 100),
                round(orig.stats.sim_cpu_seconds, 2),
                round(repl.stats.sim_cpu_seconds, 2),
                round(orig.stats.sim_seconds, 2),
                round(repl.stats.sim_seconds, 2),
                round(repl.stats.replication_rate, 2),
            )
        )
    return ExperimentResult(
        exp_id="Figure 11",
        title="S3J original vs replicated, CPU and total runtime (J5)",
        columns=[
            "mem_%input",
            "orig_cpu",
            "repl_cpu",
            "orig_total",
            "repl_total",
            "repl_rate",
        ],
        rows=rows,
        paper_claim=(
            "replication: CPU an order of magnitude lower, total runtime "
            "2.5x-4x lower"
        ),
    )


def run_fig12(fractions=REDUCED_MEMORY_FRACTIONS, include_trie: bool = True) -> ExperimentResult:
    """S3J internal algorithms: nested loops vs plane sweeps (Fig 12)."""
    left, right = j5_inputs()
    rows = []
    internals = ["nested_loops", "sweep_list"] + (
        ["sweep_trie"] if include_trie else []
    )
    for fraction in fractions:
        memory = memory_for_fraction(left, right, fraction)
        row = [round(fraction * 100)]
        for internal in internals:
            res = S3J(memory, internal=internal).run(left, right)
            row.append(round(res.stats.sim_seconds, 2))
        rows.append(tuple(row))
    return ExperimentResult(
        exp_id="Figure 12",
        title="S3J with different internal join algorithms (J5)",
        columns=["mem_%input"] + [f"{i}_sec" for i in internals],
        rows=rows,
        paper_claim=(
            "plane sweep only slightly faster than nested loops; the "
            "trie-based sweep is far slower (omitted from the paper's plot)"
        ),
    )


# ----------------------------------------------------------------------
# Figure 13 / Figure 14: the head-to-head comparisons
# ----------------------------------------------------------------------
def run_fig13(p_values=range(1, 11)) -> ExperimentResult:
    """S3J vs PBSM(list) vs PBSM(trie) over coverage scaling p (Fig 13)."""
    rows = []
    for p, left, right in la_p_sweep(p_values):
        memory = la_memory(left, right)
        s3j = S3J(memory).run(left, right)
        pbsm_list = PBSM(memory, internal="sweep_list").run(left, right)
        pbsm_trie = PBSM(memory, internal="sweep_trie").run(left, right)
        rows.append(
            (
                int(p),
                round(s3j.stats.sim_seconds, 2),
                round(pbsm_list.stats.sim_seconds, 2),
                round(pbsm_trie.stats.sim_seconds, 2),
                round(pbsm_list.stats.replication_rate, 2),
                s3j.stats.n_results,
            )
        )
    return ExperimentResult(
        exp_id="Figure 13",
        title="S3J vs PBSM(list) vs PBSM(trie) joining LA_RR(p) x LA_ST(p)",
        columns=["p", "s3j_sec", "pbsm_list_sec", "pbsm_trie_sec", "pbsm_repl", "results"],
        rows=rows,
        paper_claim=(
            "small p: PBSM variants similar, S3J substantially slower; "
            "large p: S3J catches PBSM(list), PBSM(trie) stays the clear winner"
        ),
    )


def run_fig14(fractions=EXTENDED_MEMORY_FRACTIONS) -> ExperimentResult:
    """S3J vs PBSM(list) vs PBSM(trie) over memory for J5 (Fig 14)."""
    left, right = j5_inputs()
    rows = []
    for fraction in fractions:
        memory = memory_for_fraction(left, right, fraction)
        s3j = S3J(memory).run(left, right)
        pbsm_list = PBSM(memory, internal="sweep_list").run(left, right)
        pbsm_trie = PBSM(memory, internal="sweep_trie").run(left, right)
        rows.append(
            (
                round(fraction * 100),
                round(s3j.stats.sim_seconds, 2),
                round(pbsm_list.stats.sim_seconds, 2),
                round(pbsm_trie.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Figure 14",
        title="S3J vs PBSM(list) vs PBSM(trie) over memory (J5)",
        columns=["mem_%input", "s3j_sec", "pbsm_list_sec", "pbsm_trie_sec"],
        rows=rows,
        paper_claim=(
            "S3J best for small memories, PBSM(list) for medium, "
            "PBSM(trie) for large"
        ),
    )


# ----------------------------------------------------------------------
# Table 3: minimum I/O passes per phase
# ----------------------------------------------------------------------
def run_table3() -> ExperimentResult:
    """Measured data passes per phase for PBSM and S3J (Table 3)."""
    left, right = la_join("J1")
    memory = la_memory(left, right)
    data_pages = _COST.pages_for(len(left) + len(right), _COST.kpe_bytes)

    pbsm = PBSM(memory, internal="sweep_list").run(left, right)
    s3j = S3J(memory).run(left, right)

    def passes(result, phase):
        pages = result.stats.io_pages_by_phase.get(phase, 0)
        return pages / data_pages

    rows = [
        (
            "partition (write)",
            round(passes(pbsm, PHASE_PARTITION), 2),
            round(passes(s3j, PHASE_PARTITION), 2),
        ),
        (
            "repartition/sort",
            round(passes(pbsm, PHASE_REPARTITION), 2),
            round(passes(s3j, PHASE_SORT), 2),
        ),
        ("join (read)", round(passes(pbsm, PHASE_JOIN), 2), round(passes(s3j, PHASE_JOIN), 2)),
    ]
    return ExperimentResult(
        exp_id="Table 3",
        title="I/O passes over the data per phase (measured, J1)",
        columns=["phase", "PBSM_passes", "S3J_passes"],
        rows=rows,
        paper_claim=(
            "minimum passes: partitioning 1/1, repartitioning occasional "
            "(+) vs sorting 2+, join 1/1"
        ),
        notes=[
            "a pass = pages moved / pages of the joint input; replication "
            "makes writes exceed 1; S3J's sort reads+writes every level "
            "file (2 passes when they fit in memory, more if external)"
        ],
    )


# ----------------------------------------------------------------------
# Ablations beyond the paper's figures
# ----------------------------------------------------------------------
def run_ablation_t_factor() -> ExperimentResult:
    """Formula (1) safety factor t: repartitioning vs partition count."""
    left, right = la_join("J2")
    memory = la_memory(left, right)
    rows = []
    for t in (1.0, 1.1, 1.2, 1.5, 2.0):
        res = PBSM(memory, t_factor=t).run(left, right)
        rows.append(
            (
                t,
                res.stats.n_partitions,
                res.stats.repartition_events,
                round(res.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A1",
        title="PBSM formula-(1) safety factor t (J2)",
        columns=["t", "P", "repartition_events", "runtime_sec"],
        rows=rows,
        paper_claim="t > 1 avoids repartitioning cliffs near borderline P (Sec 3.2.3)",
    )


def run_ablation_sfc() -> ExperimentResult:
    """Peano vs Hilbert locational codes: CPU cost of the S3J phases."""
    left, right = la_join("J1")
    memory = la_memory(left, right)
    rows = []
    for curve in ("peano", "hilbert"):
        res = S3J(memory, curve=curve).run(left, right)
        rows.append(
            (
                curve,
                res.stats.cpu_by_phase[PHASE_PARTITION]["code_computations"],
                round(res.stats.sim_cpu_seconds, 3),
                round(res.stats.sim_seconds, 2),
                res.stats.n_results,
            )
        )
    return ExperimentResult(
        exp_id="Ablation A2",
        title="S3J locational-code curve: Peano vs Hilbert (J1)",
        columns=["curve", "codes", "cpu_sec", "total_sec", "results"],
        rows=rows,
        paper_claim=(
            "the curve changes neither I/O nor intersection tests, so the "
            "cheapest-to-compute curve (Peano) wins (Sec 4.4.2)"
        ),
    )


def run_ablation_ntiles() -> ExperimentResult:
    """Tiles-per-partition: skew resistance vs replication overhead."""
    left, right = la_join("J1")
    memory = la_memory(left, right)
    rows = []
    for tiles in (1, 2, 4, 8, 16):
        res = PBSM(memory, tiles_per_partition=tiles).run(left, right)
        sizes = res.stats
        rows.append(
            (
                tiles,
                round(sizes.replication_rate, 3),
                sizes.repartition_events,
                round(sizes.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A3",
        title="PBSM tiles per partition (J1)",
        columns=["tiles_per_P", "replication", "repartition_events", "runtime_sec"],
        rows=rows,
        paper_claim=(
            "more tiles per partition spread skew more evenly (Patel & "
            "DeWitt) at a replication cost"
        ),
    )


def run_ablation_max_level() -> ExperimentResult:
    """S3J hierarchy depth: replication and test counts vs max_level."""
    left, right = la_join("J1")
    memory = la_memory(left, right)
    rows = []
    for max_level in (4, 6, 8, 10, 12):
        res = S3J(memory, max_level=max_level).run(left, right)
        rows.append(
            (
                max_level,
                round(res.stats.replication_rate, 3),
                res.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"],
                round(res.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A4",
        title="S3J hierarchy depth (J1)",
        columns=["max_level", "replication", "tests", "runtime_sec"],
        rows=rows,
        paper_claim=(
            "deeper hierarchies separate sizes more sharply (fewer tests) "
            "but replicate boundary rectangles deeper"
        ),
    )


def run_ablation_s3j_strategy() -> ExperimentResult:
    """S3J assignment strategies: original vs hybrid vs full size
    separation (the family Section 4.3 alludes to)."""
    left, right = la_join("J1")
    memory = la_memory(left, right)
    rows = []
    for strategy in ("original", "hybrid", "size"):
        res = S3J(memory, strategy=strategy).run(left, right)
        rows.append(
            (
                strategy,
                round(res.stats.replication_rate, 3),
                res.stats.cpu_by_phase[PHASE_JOIN]["intersection_tests"],
                round(res.stats.sim_cpu_seconds, 2),
                round(res.stats.sim_seconds, 2),
            )
        )
    return ExperimentResult(
        exp_id="Ablation A8",
        title="S3J assignment strategies (J1)",
        columns=["strategy", "replication", "tests", "cpu_sec", "total_sec"],
        rows=rows,
        paper_claim=(
            "Section 4.3 evaluated several replication strategies; size "
            "separation was among the most efficient"
        ),
    )


# ----------------------------------------------------------------------
# Planner: method="auto" vs every fixed method
# ----------------------------------------------------------------------
def run_planner_sweep(
    n: int = 2000, fractions=PLANNER_MEMORY_FRACTIONS
) -> ExperimentResult:
    """The cost-based planner against every fixed method.

    The Fig. 4/12-style grid (dataset shape x memory budget) on which no
    fixed plan wins everywhere; ``method="auto"`` must track the best
    fixed method within 1.25x on every point, and the second planning of
    each workload must come from the plan cache in ~zero time.
    """
    from repro import JOIN_METHODS, spatial_join
    from repro.planner import PlannerCache, plan_join

    cache = PlannerCache()
    rows = []
    for label, left, right, memory in planner_sweep(n, fractions):
        plan = plan_join(left, right, memory, cache=cache)
        cold_ms = plan.planning_seconds * 1e3
        auto_sec = plan.execute(left, right).stats.sim_seconds
        replanned = plan_join(left, right, memory, cache=cache)
        warm_ms = replanned.planning_seconds * 1e3
        fixed = {
            method: spatial_join(left, right, memory, method=method).stats.sim_seconds
            for method in JOIN_METHODS
        }
        best_method = min(fixed, key=fixed.get)
        best_sec = fixed[best_method]
        rows.append(
            (
                label,
                plan.chosen.describe(),
                round(auto_sec, 3),
                best_method,
                round(best_sec, 3),
                round(auto_sec / best_sec, 3) if best_sec else 1.0,
                round(cold_ms, 2),
                round(warm_ms, 3),
                int(replanned.from_cache),
            )
        )
    return ExperimentResult(
        exp_id="Planner",
        title=f"method='auto' vs fixed methods (n={n} per side)",
        columns=[
            "workload",
            "auto_plan",
            "auto_sec",
            "best_fixed",
            "best_sec",
            "ratio",
            "plan_ms",
            "replan_ms",
            "cached",
        ],
        rows=rows,
        notes=[
            "fixed baselines run each method with its default knobs",
            "replan_ms is the second plan_join over the same inputs/budget",
        ],
        paper_claim=(
            "no single configuration wins across dataset shape and memory "
            "(Figs. 4, 12); a cost model must choose per join"
        ),
    )


#: Registry used by the CLI runner and the benches.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "table3": run_table3,
    "ablation_t_factor": run_ablation_t_factor,
    "ablation_sfc": run_ablation_sfc,
    "ablation_ntiles": run_ablation_ntiles,
    "ablation_max_level": run_ablation_max_level,
    "ablation_s3j_strategy": run_ablation_s3j_strategy,
    "planner": run_planner_sweep,
}
