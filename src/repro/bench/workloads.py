"""Workload helpers shared by the experiment harness and the benches.

All experiments use the Table 1 datasets from :mod:`repro.datasets.catalog`
at the process-wide reproduction scale (``REPRO_SCALE``).  Memory budgets
are expressed as *fractions of the total input size* so every figure's
x-axis is scale-invariant: the paper's 2.5 MB against the 5.2 MB LA inputs
is ~48% of input, and its J5 sweeps (5..70 MB against 75.5 MB of CAL_ST
data) span ~7%..93%.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.rect import SIZEOF_KPE
from repro.datasets import clustered_rects, join_inputs, la_pair, uniform_rects
from repro.datasets.patterns import mixed_scale

#: Memory fractions used by the J5 sweeps (Figures 6, 11, 12).
MEMORY_FRACTIONS = (0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00)

#: Reduced grid for the figures that run the expensive original-S3J /
#: trie-in-S3J configurations at every point (Figures 11 and 12); five
#: points suffice for the shape.
REDUCED_MEMORY_FRACTIONS = (0.05, 0.10, 0.20, 0.50, 1.00)

#: Extended grid for the figures whose point is behaviour at *large*
#: memory (Figures 5 and 14): beyond 100% of input the partition count
#: reaches 1 and the list sweep's degradation becomes visible.
EXTENDED_MEMORY_FRACTIONS = MEMORY_FRACTIONS + (1.50, 2.00)

#: The fraction equivalent to the paper's fixed 2.5 MB for the LA joins.
LA_MEMORY_FRACTION = 2.5 * 2**20 / ((128_971 + 131_461) * SIZEOF_KPE)


def input_bytes(left: Sequence, right: Sequence) -> int:
    """Total KPE bytes of a join's inputs."""
    return (len(left) + len(right)) * SIZEOF_KPE


def memory_for_fraction(left: Sequence, right: Sequence, fraction: float) -> int:
    """A memory budget of *fraction* of the input size (>= 4 KPEs)."""
    return max(4 * SIZEOF_KPE, int(input_bytes(left, right) * fraction))


def la_join(join_name: str) -> Tuple[List, List]:
    """Inputs of one of the LA joins J1..J4."""
    return join_inputs(join_name)


def j5_inputs() -> Tuple[List, List]:
    """Inputs of the J5 self join (CAL_ST x CAL_ST)."""
    return join_inputs("J5")


def la_memory(left: Sequence, right: Sequence) -> int:
    """The 2.5 MB-equivalent budget for the LA joins."""
    return memory_for_fraction(left, right, LA_MEMORY_FRACTION)


def la_p_sweep(p_values=range(1, 11)) -> List[Tuple[float, List, List]]:
    """The Figure 13 workload family: (p, LA_RR(p), LA_ST(p))."""
    return [(float(p), *la_pair(float(p))) for p in p_values]


# ----------------------------------------------------------------------
# planner sweep (Fig. 4 / Fig. 12 style, over dataset shape x memory)
# ----------------------------------------------------------------------

#: Dataset shapes the planner sweep covers: the three regimes in which
#: different fixed plans win (PBSM on uniform, SHJ on clustered, and a
#: memory-dependent choice on mixed-scale).
PLANNER_PATTERNS = ("uniform", "clustered", "mixed")

#: Memory fractions for the planner sweep: tight, comfortable, all-fits.
PLANNER_MEMORY_FRACTIONS = (0.15, 0.5, 1.0)

_PLANNER_GENERATORS = {
    "uniform": uniform_rects,
    "clustered": clustered_rects,
    "mixed": mixed_scale,
}


def planner_pair(pattern: str, n: int, seeds=(3, 4)) -> Tuple[List, List]:
    """A synthetic relation pair of one planner-sweep *pattern*."""
    generator = _PLANNER_GENERATORS[pattern]
    return (
        generator(n, seed=seeds[0]),
        generator(n, seed=seeds[1], start_oid=1_000_000),
    )


def planner_sweep(
    n: int = 2000,
    fractions: Sequence[float] = PLANNER_MEMORY_FRACTIONS,
) -> List[Tuple[str, List, List, int]]:
    """The planner bench workload family.

    Yields ``(label, left, right, memory_bytes)`` for every pattern and
    memory fraction — the grid on which ``method="auto"`` must stay
    within 1.25x of the best fixed plan.
    """
    workloads = []
    for pattern in PLANNER_PATTERNS:
        left, right = planner_pair(pattern, n)
        for fraction in fractions:
            workloads.append(
                (
                    f"{pattern}/m={fraction:.2f}",
                    left,
                    right,
                    memory_for_fraction(left, right, fraction),
                )
            )
    return workloads
