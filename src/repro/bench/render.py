"""Plain-text rendering of experiment results: tables and ASCII charts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Tuple]
    notes: List[str] = field(default_factory=list)
    paper_claim: str = ""

    def to_text(self) -> str:
        """Render the result as an aligned text table plus notes."""
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        lines.append(format_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """The result as a JSON-ready dict (rows become lists)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, **extra) -> str:
        """JSON rendering; *extra* keys (workload, backend, ...) ride along."""
        import json

        payload = self.as_dict()
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True, default=str)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Tuple]) -> str:
    """Align columns of a small result table."""
    table = [list(map(str, columns))] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(columns))]
    out = []
    for idx, row in enumerate(table):
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A crude scatter/line chart for eyeballing figure shapes in text."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            cx = int((x - x_lo) / x_span * (width - 1))
            cy = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = mark
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f"x: {x_label} in [{_fmt(x_lo)}, {_fmt(x_hi)}]   "
        f"y: {y_label} in [{_fmt(y_lo)}, {_fmt(y_hi)}]"
    )
    lines.append("   ".join(legend))
    return "\n".join(lines)
