"""Scalable Sweeping-Based Spatial Join (comparison baseline)."""

from repro.sssj.join import SSSJ, sssj_join

__all__ = ["SSSJ", "sssj_join"]
