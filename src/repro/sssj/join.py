"""Scalable Sweeping-Based Spatial Join (SSSJ) — comparison baseline.

[APR+ 98]: sort both relations by their left edge, then run one global
plane sweep, keeping the sweep-line status in memory.  No partitioning, no
replication, no duplicates — but, as the paper's related-work discussion
stresses, *both* inputs must be completely sorted before the first output
tuple can be produced, which blocks pipelined processing in an operator
tree.  We implement it as a baseline so the comparison benches can place
PBSM and S3J against the best sort-based contender.

I/O model: reading the (unsorted) inputs is free, as for every other
algorithm; when an input exceeds the memory budget, sorted runs are
written and merged with charged I/O.  The sweep consumes the two sorted
streams through one-page buffers.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN, PHASE_SORT
from repro.core.result import JoinResult, JoinStats
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.extsort import BY_XL, XlSorted, sort_in_memory
from repro.io.pagefile import PageFile
from repro.kernels.backend import active_backend
from repro.obs.trace import KIND_RUN, NULL_TRACER


class SSSJ:
    """Sweeping-based spatial join over externally sorted inputs."""

    def __init__(
        self,
        memory_bytes: int,
        *,
        internal: str = "sweep_list",
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if internal not in ("sweep_list", "sweep_trie", "sweep_tree", "sweep_numpy"):
            raise ValueError(
                "SSSJ needs a sweep-based internal algorithm, got "
                f"{internal!r}"
            )
        self.memory_bytes = memory_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.cost_model = cost_model or CostModel()

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        stats = JoinStats(
            algorithm=f"SSSJ({self.internal_name})",
            backend=(
                active_backend() if self.internal_name == "sweep_numpy" else ""
            ),
            n_left=len(left),
            n_right=len(right),
        )
        pairs = list(self.iter_pairs(left, right, stats))
        stats.n_results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)

    def iter_pairs(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        stats: Optional[JoinStats] = None,
    ) -> Iterator[Tuple[int, int]]:
        """Yield result pairs; nothing is available before sorting ends."""
        own = stats if stats is not None else JoinStats(algorithm="SSSJ")
        disk = SimulatedDisk(self.cost_model)
        cpu = {PHASE_SORT: CpuCounters(), PHASE_JOIN: CpuCounters()}
        if left and right:
            tracer = self.tracer
            with tracer.span(
                "sssj", kind=KIND_RUN, internal=self.internal_name
            ):
                with tracer.span(
                    PHASE_SORT, cpu=cpu[PHASE_SORT], disk=disk
                ) as sp:
                    with disk.phase(PHASE_SORT):
                        sorted_left = self._external_sort_input(
                            left, disk, cpu[PHASE_SORT]
                        )
                        sorted_right = self._external_sort_input(
                            right, disk, cpu[PHASE_SORT]
                        )
                own.wall_seconds_by_phase[PHASE_SORT] = sp.wall_seconds

                results: List[Tuple[int, int]] = []
                with tracer.span(
                    PHASE_JOIN, cpu=cpu[PHASE_JOIN], disk=disk
                ) as sp:
                    with disk.phase(PHASE_JOIN):
                        self.internal(
                            sorted_left,
                            sorted_right,
                            lambda r, s: results.append((r[0], s[0])),
                            cpu[PHASE_JOIN],
                        )
                own.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds
            own.peak_memory_bytes = (
                len(left) + len(right)
            ) * self.cost_model.kpe_bytes
            yield from results
        self._finalize(own, disk, cpu)

    def _external_sort_input(
        self, records: Sequence[Tuple], disk: SimulatedDisk, counters: CpuCounters
    ) -> List[Tuple]:
        """Sort an input relation; the initial read is free of charge."""
        cost = self.cost_model
        memory_records = max(8, self.memory_bytes // cost.kpe_bytes)
        if len(records) <= memory_records:
            return XlSorted(sort_in_memory(list(records), BY_XL, counters))
        # run generation: input chunks are free to read, runs are written
        runs: List[PageFile] = []
        for start in range(0, len(records), memory_records):
            chunk = sort_in_memory(
                list(records[start : start + memory_records]), BY_XL, counters
            )
            run = PageFile(disk, cost.kpe_bytes, f"sssj.run{len(runs)}")
            run.append_bulk(chunk)
            runs.append(run)
        # single merge pass with one page buffer per run
        merged: List[Tuple] = XlSorted()
        heap = []
        iters = [run.iter_records(buffer_pages=1) for run in runs]
        for idx, it in enumerate(iters):
            first = next(it, None)
            if first is not None:
                heapq.heappush(heap, (first[1], first[0], idx, first))
                counters.heap_ops += 1
        while heap:
            _, _, idx, record = heapq.heappop(heap)
            counters.heap_ops += 1
            merged.append(record)
            nxt = next(iters[idx], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[1], nxt[0], idx, nxt))
                counters.heap_ops += 1
        return merged

    def _finalize(self, stats: JoinStats, disk: SimulatedDisk, cpu) -> None:
        cost = self.cost_model
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.cpu_by_phase = {p: c.as_dict() for p, c in cpu.items()}
        stats.sim_io_seconds = cost.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = sum(cost.cpu_seconds(c) for c in cpu.values())
        units = stats.io_units_by_phase
        stats.sim_seconds_by_phase = {
            phase: cost.cpu_seconds(counters)
            + cost.io_seconds(units.get(phase, 0.0))
            for phase, counters in cpu.items()
        }


def sssj_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    **kwargs,
) -> JoinResult:
    """Convenience one-call SSSJ join."""
    return SSSJ(memory_bytes, **kwargs).run(left, right)
