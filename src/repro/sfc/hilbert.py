"""Hilbert curve encoding.

The curve originally suggested for S3J's sorting phase [KS 97].  The
iterative rotate-and-accumulate algorithm below is the standard one; it is
noticeably more expensive per code than the table-driven Z encoding, which
is exactly the observation that makes the paper switch to the Peano curve
(Section 4.4.2).  The cost model charges Hilbert codes accordingly.

Like the Z curve, the Hilbert curve is self-similar quadrant by quadrant:
the level-k index of a cell equals the top ``2k`` bits of the level-L index
of any of its descendants.  S3J's ancestor/descendant logic relies on this
prefix property, which holds for both curves and is verified by property
tests.
"""

from __future__ import annotations

from typing import Tuple


def hilbert_encode(ix: int, iy: int, bits: int) -> int:
    """Map *bits*-bit cell coordinates to their Hilbert curve index."""
    if ix < 0 or iy < 0 or ix >> bits or iy >> bits:
        raise ValueError(f"coordinates ({ix}, {iy}) out of range for {bits} bits")
    rx = 0
    ry = 0
    d = 0
    s = 1 << (bits - 1) if bits > 0 else 0
    x = ix
    y = iy
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate the quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_decode(code: int, bits: int) -> Tuple[int, int]:
    """Invert :func:`hilbert_encode` back to cell coordinates."""
    if code < 0 or code >> (2 * bits):
        raise ValueError(f"code {code} out of range for {bits} bits")
    x = 0
    y = 0
    t = code
    s = 1
    while s < (1 << bits):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y
