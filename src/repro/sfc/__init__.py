"""Space-filling curves and locational codes (S3J's grid mathematics)."""

from repro.sfc.analysis import curve_cost_ops, locality_report, mean_window_clusters, neighbor_code_gap
from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.sfc.locational import (
    CURVES,
    DEFAULT_MAX_LEVEL,
    cell_of_rect,
    cells_for_rect,
    curve_encoder,
    is_ancestor_code,
    mxcif_level,
    point_cell,
    preorder_key,
    size_level,
)
from repro.sfc.zorder import z_decode, z_encode

__all__ = [
    "CURVES",
    "curve_cost_ops",
    "locality_report",
    "mean_window_clusters",
    "neighbor_code_gap",
    "DEFAULT_MAX_LEVEL",
    "cell_of_rect",
    "cells_for_rect",
    "curve_encoder",
    "hilbert_decode",
    "hilbert_encode",
    "is_ancestor_code",
    "mxcif_level",
    "point_cell",
    "preorder_key",
    "size_level",
    "z_decode",
    "z_encode",
]
