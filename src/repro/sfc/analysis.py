"""Locality analysis of space-filling curves.

Section 4.4.2 argues the curve choice affects neither S3J's I/O nor its
intersection-test count — only the code computation cost — so the cheap
Peano curve wins.  The classical counter-argument for Hilbert is its
better *locality* (adjacent cells get nearer codes).  This module
quantifies both properties so the trade-off is inspectable:

* :func:`mean_window_clusters` — the standard locality metric: the mean
  number of contiguous code runs ("clusters") needed to cover a square
  query window.  Hilbert wins (famously ~k clusters for a k x k window
  vs more for Z) — this is what makes it attractive for range queries;
* :func:`neighbor_code_gap` — mean |code difference| between 4-adjacent
  cells.  Perhaps surprisingly, Z wins this one: Hilbert trades a few
  huge jumps for many step-1 moves, and the *mean* gap ends up larger;
* :func:`curve_cost_ops` — abstract operation count of one code
  computation (Z is far cheaper).

The S3J experiments confirm the paper: neither locality metric matters
for the synchronized scan (which consumes whole sorted files), so
computation cost decides.
"""

from __future__ import annotations

from typing import Dict

from repro.sfc.locational import curve_encoder


def neighbor_code_gap(curve: str, level: int) -> float:
    """Mean absolute code difference over all 4-adjacent cell pairs."""
    if level < 1:
        raise ValueError("level must be >= 1")
    encode = curve_encoder(curve)
    n = 1 << level
    codes = [[encode(x, y, level) for y in range(n)] for x in range(n)]
    total = 0
    count = 0
    for x in range(n):
        for y in range(n):
            if x + 1 < n:
                total += abs(codes[x][y] - codes[x + 1][y])
                count += 1
            if y + 1 < n:
                total += abs(codes[x][y] - codes[x][y + 1])
                count += 1
    return total / count if count else 0.0


def mean_window_clusters(curve: str, level: int, window: int = 4) -> float:
    """Mean number of contiguous code runs covering a window x window
    query, over all window positions."""
    if level < 1:
        raise ValueError("level must be >= 1")
    n = 1 << level
    if window > n:
        raise ValueError("window larger than the grid")
    encode = curve_encoder(curve)
    total_clusters = 0
    positions = 0
    for x0 in range(n - window + 1):
        for y0 in range(n - window + 1):
            codes = sorted(
                encode(x0 + dx, y0 + dy, level)
                for dx in range(window)
                for dy in range(window)
            )
            clusters = 1
            for previous, current in zip(codes, codes[1:]):
                if current != previous + 1:
                    clusters += 1
            total_clusters += clusters
            positions += 1
    return total_clusters / positions


def curve_cost_ops(curve: str, level: int) -> int:
    """Abstract per-code operation count.

    Z interleaving is table-driven: one lookup-and-or per byte of input
    per axis.  The Hilbert transform iterates once per bit with a
    rotation step.  These mirror the cost-model constants.
    """
    if level < 1:
        raise ValueError("level must be >= 1")
    if curve in ("peano", "z", "morton"):
        bytes_per_axis = -(-level // 8)
        return 2 * bytes_per_axis
    if curve == "hilbert":
        return 4 * level  # compare/rotate/accumulate per bit
    raise ValueError(f"unknown curve {curve!r}")


def locality_report(level: int = 5) -> Dict[str, Dict[str, float]]:
    """Locality vs cost for both curves at one level (example/CLI use)."""
    return {
        curve: {
            "neighbor_gap": neighbor_code_gap(curve, level),
            "window_clusters": mean_window_clusters(curve, level),
            "ops_per_code": float(curve_cost_ops(curve, level)),
        }
        for curve in ("peano", "hilbert")
    }
