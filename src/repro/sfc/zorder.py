"""Peano/Z-curve (Morton order) encoding.

Section 4.4.2 of the paper argues that, because the choice of space-filling
curve affects neither the I/O behaviour nor the number of intersection
tests of S3J, the curve with the cheapest code computation should be used —
and picks the Peano curve (also called z-curve or Morton ordering) over the
Hilbert curve.  The implementation here uses 8-bit interleave tables, the
classic constant-time-per-byte technique.
"""

from __future__ import annotations

from typing import Tuple

# _SPREAD[b] has the bits of byte b spread to even positions: abcdefgh ->
# 0a0b0c0d0e0f0g0h.
_SPREAD = [0] * 256
for _b in range(256):
    _v = 0
    for _i in range(8):
        if _b & (1 << _i):
            _v |= 1 << (2 * _i)
    _SPREAD[_b] = _v

# _COMPACT[v] inverts _SPREAD for 16-bit inputs whose odd bits are ignored.
_COMPACT = {}
for _b in range(256):
    _COMPACT[_SPREAD[_b]] = _b


def z_encode(ix: int, iy: int, bits: int) -> int:
    """Interleave *bits*-bit cell coordinates into a Z code.

    Bit ``2k`` of the result is bit ``k`` of ``ix`` and bit ``2k+1`` is bit
    ``k`` of ``iy``; the resulting integer orders cells along the Z curve.
    """
    if ix < 0 or iy < 0 or ix >> bits or iy >> bits:
        raise ValueError(f"coordinates ({ix}, {iy}) out of range for {bits} bits")
    code = 0
    shift = 0
    while ix or iy:
        code |= (_SPREAD[ix & 0xFF] | (_SPREAD[iy & 0xFF] << 1)) << shift
        ix >>= 8
        iy >>= 8
        shift += 16
    return code


def z_decode(code: int, bits: int) -> Tuple[int, int]:
    """Invert :func:`z_encode` back to cell coordinates."""
    if code < 0 or code >> (2 * bits):
        raise ValueError(f"code {code} out of range for {bits} bits")
    ix = 0
    iy = 0
    shift = 0
    while code:
        chunk = code & 0xFFFF
        ix |= _COMPACT[chunk & 0x5555] << shift
        iy |= _COMPACT[(chunk >> 1) & 0x5555] << shift
        code >>= 16
        shift += 8
    return ix, iy
