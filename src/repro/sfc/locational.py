"""Locational codes, MX-CIF levels, and size-separation levels.

This module holds all of S3J's grid mathematics:

* the hierarchy of equidistant grids: level ``k`` subdivides the data space
  into ``2^k x 2^k`` cells (``4^k`` nodes of the MX-CIF quadtree);
* the **original level function** of [KS 97]: a rectangle belongs to the
  deepest level at which a single cell covers it (its MX-CIF node);
* the paper's **size-separation level function** (Section 4.3):
  ``level(r) = max{k | xh-xl <= 2^-k  and  yh-yl <= 2^-k}``, after which the
  rectangle is replicated into every cell of that level it overlaps — at
  most four copies;
* locational codes: the index of a cell along a space-filling curve, 2 bits
  per level, used as the sort key of the level files.  Codes computed with
  either curve are *hierarchical*: the code of an ancestor cell is a prefix
  of the code of its descendants (shifted by two bits per level), which is
  what the synchronized scan's ancestor tests rely on.

Point membership uses half-open cells (a point on a shared edge belongs to
the higher-index cell, clamped at the far border of the space), so every
point owns exactly one cell per level — the property the Reference Point
Method requires.  Cell *overlap* enumeration is consistent with that point
map: a cell is listed for a rectangle iff some point of the rectangle maps
to it.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

from repro.core.space import Space
from repro.sfc.hilbert import hilbert_decode, hilbert_encode
from repro.sfc.zorder import z_decode, z_encode

#: Default deepest grid level (2^10 x 2^10 cells), matching the resolution
#: regimes of the paper's TIGER data.
DEFAULT_MAX_LEVEL = 10

#: Curve registry: name -> encoder(ix, iy, bits).
CURVES: dict = {
    "peano": z_encode,
    "z": z_encode,
    "morton": z_encode,
    "hilbert": hilbert_encode,
}


#: Curve registry: name -> decoder(code, bits).
CURVE_DECODERS: dict = {
    "peano": z_decode,
    "z": z_decode,
    "morton": z_decode,
    "hilbert": hilbert_decode,
}


def curve_encoder(name: str) -> Callable[[int, int, int], int]:
    """Look up a locational-code encoder by curve name."""
    try:
        return CURVES[name]
    except KeyError:
        raise ValueError(
            f"unknown space-filling curve {name!r}; choose from {sorted(CURVES)}"
        ) from None


def curve_decoder(name: str) -> Callable[[int, int], Tuple[int, int]]:
    """Look up the matching locational-code decoder by curve name."""
    try:
        return CURVE_DECODERS[name]
    except KeyError:
        raise ValueError(
            f"unknown space-filling curve {name!r}; choose from "
            f"{sorted(CURVE_DECODERS)}"
        ) from None


def point_cell(space: Space, x: float, y: float, level: int) -> Tuple[int, int]:
    """The unique cell of the level-*level* grid owning point ``(x, y)``.

    Cells are half-open; points on the far border of the space are clamped
    into the last cell so the map stays total on the closed space.
    """
    n = 1 << level
    ix = int(space.norm_x(x) * n)
    iy = int(space.norm_y(y) * n)
    if ix >= n:
        ix = n - 1
    elif ix < 0:
        ix = 0
    if iy >= n:
        iy = n - 1
    elif iy < 0:
        iy = 0
    return ix, iy


def mxcif_level(space: Space, kpe: Tuple, max_level: int) -> int:
    """Original S3J level: the deepest grid whose single cell covers *kpe*.

    Computed via the common-prefix trick the paper describes: the level is
    the number of leading bit pairs shared by the locational coordinates of
    the lower-left and upper-right corners.
    """
    ixl, iyl = point_cell(space, kpe[1], kpe[2], max_level)
    ixh, iyh = point_cell(space, kpe[3], kpe[4], max_level)
    level_x = max_level - (ixl ^ ixh).bit_length()
    level_y = max_level - (iyl ^ iyh).bit_length()
    level = level_x if level_x < level_y else level_y
    return level if level > 0 else 0


def size_level(space: Space, kpe: Tuple, max_level: int) -> int:
    """Size-separation level of the paper's replication strategy.

    ``max{k | width <= 2^-k and height <= 2^-k}`` on space-normalised edge
    lengths, clamped to ``[0, max_level]``.  Degenerate (zero-extent) edges
    behave like arbitrarily small ones.
    """
    w = space.norm_x(kpe[3]) - space.norm_x(kpe[1])
    h = space.norm_y(kpe[4]) - space.norm_y(kpe[2])
    return min(_max_fitting_level(w, max_level), _max_fitting_level(h, max_level))


def _max_fitting_level(extent: float, max_level: int) -> int:
    """Largest k with ``extent <= 2^-k`` (clamped to ``[0, max_level]``)."""
    if extent <= 0.0:
        return max_level
    if extent >= 1.0:
        return 0
    mantissa, exponent = math.frexp(extent)  # extent = mantissa * 2**exponent
    level = 1 - exponent if mantissa == 0.5 else -exponent
    if level < 0:
        return 0
    return min(level, max_level)


def cells_for_rect(space: Space, kpe: Tuple, level: int) -> List[Tuple[int, int]]:
    """All level-*level* cells some point of *kpe* maps to.

    For a rectangle at its size-separation level this is at most a 2x2
    block — the paper's "replicated at most four times" bound.
    """
    ixl, iyl = point_cell(space, kpe[1], kpe[2], level)
    ixh, iyh = point_cell(space, kpe[3], kpe[4], level)
    return [
        (ix, iy)
        for iy in range(iyl, iyh + 1)
        for ix in range(ixl, ixh + 1)
    ]


def cell_of_rect(space: Space, kpe: Tuple, level: int) -> Tuple[int, int]:
    """The single covering cell of *kpe* at its MX-CIF level.

    Callers must pass ``level = mxcif_level(...)``; the lower-left corner's
    cell is then guaranteed to cover the whole rectangle.
    """
    return point_cell(space, kpe[1], kpe[2], level)


def preorder_key(code: int, level: int, max_level: int) -> int:
    """Sort key realising a pre-order traversal of the cell hierarchy.

    Left-aligning every code to ``2 * max_level`` bits makes an ancestor
    sort immediately before its first descendant, which is the order the
    synchronized scan of the level files consumes.
    """
    return code << (2 * (max_level - level))


def is_ancestor_code(
    code_shallow: int, level_shallow: int, code_deep: int, level_deep: int
) -> bool:
    """True iff the shallow cell is an ancestor of (or equal to) the deep one."""
    if level_shallow > level_deep:
        return False
    return (code_deep >> (2 * (level_deep - level_shallow))) == code_shallow
