"""Internal (in-memory) join algorithms and their registry.

Every algorithm shares one calling convention::

    algorithm(left, right, emit, counters)

where ``left``/``right`` are sequences of KPE tuples, ``emit(r, s)`` is
called once per detected intersecting pair (``r`` from ``left``), and
``counters`` accumulates the CPU operations the cost model charges.  The
drivers (PBSM, S3J, SSSJ) plug these in by name, which is how the paper's
internal-algorithm experiments (Figures 4, 5, 12) are expressed.
"""

from typing import Callable, Dict

from repro.internal.brute import brute_force_pairs
from repro.internal.interval_trie import IntervalTrie
from repro.internal.nested_loops import nested_loops_join
from repro.internal.sweep_list import sweep_list_join
from repro.internal.sweep_tree import IntervalTree, sweep_tree_join
from repro.internal.sweep_trie import sweep_trie_join
from repro.kernels.sweep import sweep_numpy_join

#: name -> algorithm; the keys are the names used throughout benchmarks,
#: figures and EXPERIMENTS.md.  ``sweep_numpy`` is the columnar
#: forward-scan kernel; without numpy it transparently runs its
#: pure-Python fallback with identical results.
INTERNAL_ALGORITHMS: Dict[str, Callable] = {
    "nested_loops": nested_loops_join,
    "sweep_list": sweep_list_join,
    "sweep_trie": sweep_trie_join,
    "sweep_tree": sweep_tree_join,
    "sweep_numpy": sweep_numpy_join,
}


def internal_algorithm(name: str) -> Callable:
    """Look up an internal join algorithm by registry name."""
    try:
        return INTERNAL_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown internal algorithm {name!r}; "
            f"choose from {sorted(INTERNAL_ALGORITHMS)}"
        ) from None


__all__ = [
    "INTERNAL_ALGORITHMS",
    "IntervalTree",
    "IntervalTrie",
    "brute_force_pairs",
    "internal_algorithm",
    "nested_loops_join",
    "sweep_list_join",
    "sweep_numpy_join",
    "sweep_tree_join",
    "sweep_trie_join",
]
