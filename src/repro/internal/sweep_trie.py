"""Plane sweep with the sweep-line status organised in interval tries.

The paper's replacement internal algorithm for PBSM with large partitions
(Section 3.2.2): identical sweep skeleton to the list variant, but the
active sets are interval tries over the y-axis, so a probe visits only the
trie nodes whose segment overlaps the probe's y-interval instead of the
whole active set.  Superior for large partitions / high selectivity;
its setup and per-node overhead make it inferior for S3J's tiny
partitions (Section 4.4.1) — both effects are reproduced by the benchmarks.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.internal.interval_trie import DEFAULT_MAX_DEPTH, IntervalTrie
from repro.io.extsort import ensure_sorted_by_xl


def sweep_trie_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> None:
    """Join two KPE sets with the trie-based plane sweep."""
    if not left or not right:
        return
    # The tries subdivide the joint y-extent of both inputs.
    y_lo = min(min(k[2] for k in left), min(k[2] for k in right))
    y_hi = max(max(k[4] for k in left), max(k[4] for k in right))
    trie_left = IntervalTrie(y_lo, y_hi, max_depth)
    trie_right = IntervalTrie(y_lo, y_hi, max_depth)

    sorted_left = ensure_sorted_by_xl(left, counters)
    sorted_right = ensure_sorted_by_xl(right, counters)

    tests_out = [0]
    i = 0
    j = 0
    n_left = len(sorted_left)
    n_right = len(sorted_right)
    while i < n_left or j < n_right:
        take_left = j >= n_right or (
            i < n_left and sorted_left[i][1] <= sorted_right[j][1]
        )
        if take_left:
            r = sorted_left[i]
            i += 1
            trie_right.query(
                r[2], r[4], r[1], lambda s, _r=r: emit(_r, s), tests_out
            )
            if j < n_right:  # no point keeping status once probes ended
                trie_left.insert(r[2], r[4], r[3], r)
        else:
            s = sorted_right[j]
            j += 1
            trie_left.query(
                s[2], s[4], s[1], lambda r, _s=s: emit(r, _s), tests_out
            )
            if i < n_left:
                trie_right.insert(s[2], s[4], s[3], s)
    counters.intersection_tests += tests_out[0]
    counters.structure_ops += trie_left.ops + trie_right.ops
