"""Plane sweep with a CLR-style interval tree sweep-line status.

[APR+ 98] organised the sweep-line status in dynamic interval trees
[CLR 90]; the paper rejects them for PBSM because of the "expensive dynamic
reorganization of nodes" and uses interval tries instead.  To make that
design choice measurable, this module provides the interval-tree variant as
a comparison point: fixed midpoints (as in the trie) but with each node's
entries kept *sorted by interval start* so queries can stop scanning early.
The price is a shifted insertion (``bisect.insort``) per arriving
rectangle — the reorganisation cost the paper's argument is about, in its
mildest form.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.io.extsort import ensure_sorted_by_xl

_MAX_DEPTH = 20


class _TreeNode:
    __slots__ = ("lo", "hi", "mid", "left", "right", "entries")

    def __init__(self, lo: float, hi: float):
        self.lo = lo
        self.hi = hi
        self.mid = (lo + hi) / 2.0
        self.left: Optional["_TreeNode"] = None
        self.right: Optional["_TreeNode"] = None
        #: entries sorted ascending by interval start: (lo, hi, expire_x, payload)
        self.entries: List[Tuple] = []


class IntervalTree:
    """Interval tree with start-sorted node lists and early-exit queries."""

    __slots__ = ("root", "max_depth", "ops", "size")

    def __init__(self, lo: float, hi: float, max_depth: int = _MAX_DEPTH):
        if lo == hi:
            hi = lo + 1.0
        self.root = _TreeNode(lo, hi)
        self.max_depth = max_depth
        self.ops = 0
        self.size = 0

    def insert(self, lo: float, hi: float, expire_x: float, payload) -> None:
        node = self.root
        ops = 1
        depth = 0
        while depth < self.max_depth:
            if hi < node.mid:
                if node.left is None:
                    node.left = _TreeNode(node.lo, node.mid)
                node = node.left
            elif lo > node.mid:
                if node.right is None:
                    node.right = _TreeNode(node.mid, node.hi)
                node = node.right
            else:
                break
            ops += 1
            depth += 1
        # The sorted insert is the "dynamic reorganisation" cost: charge the
        # shift as one structure op per displaced entry.
        entries = node.entries
        before = len(entries)
        insort(entries, (lo, hi, expire_x, payload))
        position = entries.index((lo, hi, expire_x, payload))
        ops += (before - position) + 1
        self.ops += ops
        self.size += 1

    def query(
        self,
        qlo: float,
        qhi: float,
        sweep_x: float,
        on_hit: Callable[[object], None],
        tests_out: List[int],
    ) -> None:
        """Report live entries overlapping ``[qlo, qhi]``; early exit on
        the sorted start coordinate once entry.lo > qhi."""
        ops = 0
        tests = tests_out[0]
        stack = [self.root]
        while stack:
            node = stack.pop()
            ops += 1
            entries = node.entries
            if entries:
                keep = 0
                stop = len(entries)
                for idx, entry in enumerate(entries):
                    if entry[0] > qhi:
                        stop = idx
                        break
                for entry in entries[:stop]:
                    if entry[2] < sweep_x:
                        self.size -= 1
                        continue
                    entries[keep] = entry
                    keep += 1
                    tests += 1
                    if qlo <= entry[1]:
                        on_hit(entry[3])
                # keep the (unexamined, still sorted) tail
                tail = entries[stop:]
                del entries[keep:]
                entries.extend(tail)
            if node.left is not None and qlo < node.mid:
                stack.append(node.left)
            if node.right is not None and qhi > node.mid:
                stack.append(node.right)
        tests_out[0] = tests
        self.ops += ops


def sweep_tree_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
) -> None:
    """Join two KPE sets with the interval-tree plane sweep."""
    if not left or not right:
        return
    y_lo = min(min(k[2] for k in left), min(k[2] for k in right))
    y_hi = max(max(k[4] for k in left), max(k[4] for k in right))
    tree_left = IntervalTree(y_lo, y_hi)
    tree_right = IntervalTree(y_lo, y_hi)

    sorted_left = ensure_sorted_by_xl(left, counters)
    sorted_right = ensure_sorted_by_xl(right, counters)

    tests_out = [0]
    i = 0
    j = 0
    n_left = len(sorted_left)
    n_right = len(sorted_right)
    while i < n_left or j < n_right:
        take_left = j >= n_right or (
            i < n_left and sorted_left[i][1] <= sorted_right[j][1]
        )
        if take_left:
            r = sorted_left[i]
            i += 1
            tree_right.query(
                r[2], r[4], r[1], lambda s, _r=r: emit(_r, s), tests_out
            )
            if j < n_right:
                tree_left.insert(r[2], r[4], r[3], r)
        else:
            s = sorted_right[j]
            j += 1
            tree_left.query(
                s[2], s[4], s[1], lambda r, _s=s: emit(r, _s), tests_out
            )
            if i < n_left:
                tree_right.insert(s[2], s[4], s[3], s)
    counters.intersection_tests += tests_out[0]
    counters.structure_ops += tree_left.ops + tree_right.ops
