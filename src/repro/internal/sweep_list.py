"""Plane Sweep Intersection Test with a list-organised sweep-line status.

This is the internal algorithm PBSM adopted from [BKS 93]: both inputs are
sorted by their left edge, a vertical sweep line moves left to right, and
the rectangles currently straddling the sweep line ("active") are kept in a
plain list per relation.  When a rectangle enters the sweep, expired
entries of the *other* relation's active list are discarded in passing and
the survivors are tested for y-overlap.

The paper's analysis (Section 3.2.2): with ``O(sqrt(n))`` rectangles on the
sweep line the algorithm runs in ``O(n * sqrt(n))`` — fine for PBSM's
partition-sized inputs, poor when applied to a whole dataset in one go, and
(counter-intuitively) *worse* the more main memory PBSM gets, because
larger partitions mean longer active lists.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.stats import CpuCounters
from repro.io.extsort import ensure_sorted_by_xl


def sweep_list_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
) -> None:
    """Join two KPE sets with the list-based plane sweep of [BKS 93]."""
    if not left or not right:
        return
    sorted_left = ensure_sorted_by_xl(left, counters)
    sorted_right = ensure_sorted_by_xl(right, counters)

    tests = 0
    structure_ops = 0
    active_left: List[Tuple] = []
    active_right: List[Tuple] = []
    i = 0
    j = 0
    n_left = len(sorted_left)
    n_right = len(sorted_right)
    while i < n_left and j < n_right:
        r = sorted_left[i]
        s = sorted_right[j]
        if r[1] <= s[1]:
            tests, structure_ops = _step(
                r, active_right, emit, False, tests, structure_ops
            )
            active_left.append(r)
            structure_ops += 1
            i += 1
        else:
            tests, structure_ops = _step(
                s, active_left, emit, True, tests, structure_ops
            )
            active_right.append(s)
            structure_ops += 1
            j += 1
    # One input exhausted: the rest only probes the other active list.
    while i < n_left:
        tests, structure_ops = _step(
            sorted_left[i], active_right, emit, False, tests, structure_ops
        )
        i += 1
    while j < n_right:
        tests, structure_ops = _step(
            sorted_right[j], active_left, emit, True, tests, structure_ops
        )
        j += 1
    counters.intersection_tests += tests
    counters.structure_ops += structure_ops


def _step(
    rect: Tuple,
    other_active: List[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    rect_is_right: bool,
    tests: int,
    structure_ops: int,
) -> Tuple[int, int]:
    """Probe *rect* against the other relation's active list.

    Entries whose right edge lies left of the sweep position (``rect.xl``)
    have left the sweep line and are compacted out in the same pass — the
    "implicit" status maintenance of the original formulation.
    """
    xl = rect[1]
    yl = rect[2]
    yh = rect[4]
    keep = 0
    for other in other_active:
        structure_ops += 1
        if other[3] < xl:
            continue  # expired: drop by not keeping
        other_active[keep] = other
        keep += 1
        tests += 1
        if other[2] <= yh and yl <= other[4]:
            if rect_is_right:
                emit(other, rect)
            else:
                emit(rect, other)
    del other_active[keep:]
    return tests, structure_ops
