"""Brute-force reference join: ground truth for every test in the suite.

Quadratic, simple, obviously correct — used only to validate the real
algorithms on small inputs and never by the benchmark harness.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def brute_force_pairs(left: Sequence[Tuple], right: Sequence[Tuple]) -> List[Tuple[int, int]]:
    """All ``(left_oid, right_oid)`` pairs with intersecting MBRs."""
    pairs = []
    for r in left:
        rxl = r[1]
        ryl = r[2]
        rxh = r[3]
        ryh = r[4]
        for s in right:
            if rxl <= s[3] and s[1] <= rxh and ryl <= s[4] and s[2] <= ryh:
                pairs.append((r[0], s[0]))
    return pairs
