"""Interval tries: the sweep-line status structure of PBSM (trie).

Section 3.2.2: for large partitions or high join selectivity the list-based
sweep status degrades, and [APR+ 98] suggested dynamic interval trees.  The
paper instead organises the sweep-line status in an *interval trie*
[Knu 70]: an interval tree whose node midpoints are fixed by recursive
binary subdivision of the data space, so no dynamic reorganisation of nodes
is ever needed — the property the paper cites as the trie's advantage.

An interval ``[lo, hi]`` is stored at the first node (walking from the
root) whose midpoint it straddles; intervals entirely inside one half
descend into that half.  A query for ``[qlo, qhi]`` visits the nodes whose
segment intersects the query and tests their stored entries.

Sweep-line expiry is *lazy*: each entry carries the x-coordinate at which
its rectangle leaves the sweep line, and queries compact expired entries
out of the node lists in passing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

#: Deeper than this the segments are narrower than any realistic rectangle;
#: bounding the depth also bounds the cost of degenerate inputs.
DEFAULT_MAX_DEPTH = 20


class _TrieNode:
    """One node of the interval trie: a fixed segment plus stored entries."""

    __slots__ = ("lo", "hi", "mid", "left", "right", "entries")

    def __init__(self, lo: float, hi: float):
        self.lo = lo
        self.hi = hi
        self.mid = (lo + hi) / 2.0
        self.left: Optional[_TrieNode] = None
        self.right: Optional[_TrieNode] = None
        #: entries are tuples ``(lo, hi, expire_x, payload)``
        self.entries: List[Tuple] = []


class IntervalTrie:
    """A fixed-subdivision interval tree over ``[lo, hi]``.

    Entries are y-intervals of active rectangles, tagged with the sweep
    x-coordinate past which they expire.  ``ops`` counts structure
    operations (node visits and entry scans) for the CPU cost model.
    """

    __slots__ = ("root", "max_depth", "ops", "size")

    def __init__(self, lo: float, hi: float, max_depth: int = DEFAULT_MAX_DEPTH):
        if not lo <= hi:
            raise ValueError(f"invalid trie range [{lo}, {hi}]")
        if lo == hi:
            hi = lo + 1.0  # degenerate data space: one segment suffices
        self.root = _TrieNode(lo, hi)
        self.max_depth = max_depth
        self.ops = 0
        self.size = 0

    def insert(self, lo: float, hi: float, expire_x: float, payload) -> None:
        """Insert interval ``[lo, hi]`` expiring once the sweep passes
        ``expire_x``."""
        node = self.root
        ops = 1
        depth = 0
        while depth < self.max_depth:
            if hi < node.mid:
                child = node.left
                if child is None:
                    child = _TrieNode(node.lo, node.mid)
                    node.left = child
                node = child
            elif lo > node.mid:
                child = node.right
                if child is None:
                    child = _TrieNode(node.mid, node.hi)
                    node.right = child
                node = child
            else:
                break
            ops += 1
            depth += 1
        node.entries.append((lo, hi, expire_x, payload))
        self.ops += ops
        self.size += 1

    def query(
        self,
        qlo: float,
        qhi: float,
        sweep_x: float,
        on_hit: Callable[[object], None],
        tests_out: List[int],
    ) -> None:
        """Report payloads of live entries overlapping ``[qlo, qhi]``.

        ``sweep_x`` is the current sweep position: entries with
        ``expire_x < sweep_x`` are compacted out of the visited nodes.
        ``tests_out[0]`` is incremented per interval-overlap test so the
        caller can charge intersection tests exactly like the other
        algorithms do.
        """
        ops = 0
        tests = tests_out[0]
        stack = [self.root]
        while stack:
            node = stack.pop()
            ops += 1
            entries = node.entries
            if entries:
                keep = 0
                for entry in entries:
                    if entry[2] < sweep_x:
                        self.size -= 1
                        continue
                    entries[keep] = entry
                    keep += 1
                    tests += 1
                    if entry[0] <= qhi and qlo <= entry[1]:
                        on_hit(entry[3])
                del entries[keep:]
            left = node.left
            if left is not None and qlo < node.mid:
                stack.append(left)
            right = node.right
            if right is not None and qhi > node.mid:
                stack.append(right)
        tests_out[0] = tests
        self.ops += ops

    def live_entries(self, sweep_x: float) -> List[Tuple]:
        """All non-expired entries (diagnostics and tests only)."""
        found = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            found.extend(e for e in node.entries if e[2] >= sweep_x)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return found

    def node_count(self) -> int:
        """Number of materialised trie nodes (diagnostics and tests only)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count
