"""Nested-loops internal join.

The simplest internal algorithm.  Section 4.4.1 of the paper shows that for
S3J — whose partitions are tiny — nested loops is essentially as fast as the
list-based plane sweep and clearly faster than the trie sweep, whose setup
overhead dominates at these sizes.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.core.stats import CpuCounters


def nested_loops_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    emit: Callable[[Tuple, Tuple], None],
    counters: CpuCounters,
) -> None:
    """Test every pair; call ``emit(r, s)`` for each intersecting one."""
    if not left or not right:
        return
    for r in left:
        rxl = r[1]
        ryl = r[2]
        rxh = r[3]
        ryh = r[4]
        for s in right:
            if rxl <= s[3] and s[1] <= rxh and ryl <= s[4] and s[2] <= ryh:
                emit(r, s)
    counters.intersection_tests += len(left) * len(right)
