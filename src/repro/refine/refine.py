"""The refinement step: exact tests over filter-step candidates.

Implements the two refinement strategies the paper's Section 3.1 weighs
against each other:

* ``clustered=True`` — the *original PBSM* style: the candidate set is
  complete (and was sorted anyway for duplicate removal), so fetches are
  ordered by physical address and I/O is nearly sequential;
* ``clustered=False`` — the *pipelined RPM* style: candidates arrive one
  by one during the join phase and are refined immediately, at the cost
  of random geometry fetches (softened by the store's page buffer).

Kernel (inner) approximations [BKSS 94] are applied when available: if
the kernels of both objects intersect, the pair is an answer without any
exact geometry test — the optimisation the paper notes original PBSM
*cannot* exploit (its answers only become final after the dedup sort),
while RPM can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.stats import CpuCounters
from repro.refine.store import GeometryStore


@dataclass
class RefinementStats:
    """What the refinement step did and what it cost."""

    candidates: int = 0
    confirmed: int = 0
    kernel_hits: int = 0
    exact_tests: int = 0
    io_units: float = 0.0
    page_misses: int = 0

    @property
    def false_positive_rate(self) -> float:
        if self.candidates == 0:
            return 0.0
        return 1.0 - self.confirmed / self.candidates


@dataclass
class RefinementResult:
    pairs: List[Tuple[int, int]]
    stats: RefinementStats = field(default_factory=RefinementStats)


def _kernels_intersect(kernel_a, kernel_b) -> bool:
    return (
        kernel_a[0] <= kernel_b[2]
        and kernel_b[0] <= kernel_a[2]
        and kernel_a[1] <= kernel_b[3]
        and kernel_b[1] <= kernel_a[3]
    )


def refine(
    candidates: Iterable[Tuple[int, int]],
    store_left: GeometryStore,
    store_right: GeometryStore,
    *,
    clustered: bool = False,
    use_kernels: bool = True,
    counters: Optional[CpuCounters] = None,
) -> RefinementResult:
    """Run the refinement step over filter-step candidate pairs."""
    stats = RefinementStats()
    result: List[Tuple[int, int]] = []
    disk = store_left.disk
    units_before = disk.total_units()
    misses_before = store_left.page_misses + store_right.page_misses

    pair_list = list(candidates)
    stats.candidates = len(pair_list)

    if clustered:
        # Original-PBSM style: fetch all geometry in address order first.
        left_geoms = dict(
            zip(
                (oid for oid, _ in pair_list),
                store_left.fetch_clustered([oid for oid, _ in pair_list]),
            )
        )
        right_geoms = dict(
            zip(
                (oid for _, oid in pair_list),
                store_right.fetch_clustered([oid for _, oid in pair_list]),
            )
        )

        def get(oid_left: int, oid_right: int):
            return left_geoms[oid_left], right_geoms[oid_right]

    else:

        def get(oid_left: int, oid_right: int):
            return store_left.fetch(oid_left), store_right.fetch(oid_right)

    kernel_cache: Dict[Tuple[int, int], object] = {}

    def kernel_of(side: int, oid: int, geometry):
        key = (side, oid)
        if key not in kernel_cache:
            kernel_cache[key] = geometry.kernel()
        return kernel_cache[key]

    for oid_left, oid_right in pair_list:
        geom_left, geom_right = get(oid_left, oid_right)
        if use_kernels:
            kernel_left = kernel_of(0, oid_left, geom_left)
            kernel_right = kernel_of(1, oid_right, geom_right)
            if (
                kernel_left is not None
                and kernel_right is not None
                and _kernels_intersect(kernel_left, kernel_right)
            ):
                stats.kernel_hits += 1
                result.append((oid_left, oid_right))
                continue
        stats.exact_tests += 1
        if geom_left.intersects(geom_right):
            result.append((oid_left, oid_right))

    stats.confirmed = len(result)
    stats.io_units = disk.total_units() - units_before
    stats.page_misses = (
        store_left.page_misses + store_right.page_misses - misses_before
    )
    if counters is not None:
        counters.intersection_tests += stats.exact_tests
    return RefinementResult(pairs=result, stats=stats)
