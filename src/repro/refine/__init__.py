"""The refinement step: exact geometry, kernels, page-addressed store."""

from repro.refine.geometry import (
    ConvexPolygon,
    Polyline,
    clip_convex,
    orientation,
    point_segment_distance,
    polygon_area,
    polyline_distance,
    regular_polygon,
    segment_distance,
    segments_intersect,
)
from repro.refine.refine import RefinementResult, RefinementStats, refine
from repro.refine.store import GeometryStore

__all__ = [
    "ConvexPolygon",
    "clip_convex",
    "GeometryStore",
    "Polyline",
    "RefinementResult",
    "RefinementStats",
    "orientation",
    "point_segment_distance",
    "polygon_area",
    "polyline_distance",
    "refine",
    "segment_distance",
    "regular_polygon",
    "segments_intersect",
]
