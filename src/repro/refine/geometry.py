"""Exact geometries for the refinement step.

The paper's model (Section 1, after [Ore 86]): the filter step joins MBRs
and produces candidates; the refinement step tests candidates on their
*exact geometry*.  This module provides the exact geometry kinds the
TIGER-like workloads need — polylines (streets, rivers, railways) and
convex polygons — plus the conservative *kernel* (inner) approximations of
[BKSS 94]: a rectangle guaranteed to lie inside the object, so two
intersecting kernels prove a hit without any exact computation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

Point = Tuple[float, float]


def orientation(p: Point, q: Point, r: Point) -> int:
    """Sign of the cross product (q-p) x (r-p): 1 ccw, -1 cw, 0 collinear."""
    value = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if value > 1e-18:
        return 1
    if value < -1e-18:
        return -1
    return 0


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Is collinear point r on segment pq?"""
    return (
        min(p[0], q[0]) <= r[0] <= max(p[0], q[0])
        and min(p[1], q[1]) <= r[1] <= max(p[1], q[1])
    )


def segments_intersect(p1: Point, q1: Point, p2: Point, q2: Point) -> bool:
    """Exact closed-segment intersection test."""
    o1 = orientation(p1, q1, p2)
    o2 = orientation(p1, q1, q2)
    o3 = orientation(p2, q2, p1)
    o4 = orientation(p2, q2, q1)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, q1, p2):
        return True
    if o2 == 0 and _on_segment(p1, q1, q2):
        return True
    if o3 == 0 and _on_segment(p2, q2, p1):
        return True
    if o4 == 0 and _on_segment(p2, q2, q1):
        return True
    return False


class Polyline:
    """An open polyline: the exact geometry of a street/river segment
    chain."""

    __slots__ = ("points",)

    def __init__(self, points: Sequence[Point]):
        if len(points) < 2:
            raise ValueError("a polyline needs at least two points")
        self.points = [(float(x), float(y)) for x, y in points]

    def mbr(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))

    def segments(self) -> List[Tuple[Point, Point]]:
        return list(zip(self.points, self.points[1:]))

    def intersects(self, other: "Polyline") -> bool:
        """Exact polyline intersection (with per-segment MBR prefilter)."""
        for a, b in self.segments():
            s_xl = a[0] if a[0] < b[0] else b[0]
            s_xh = a[0] if a[0] > b[0] else b[0]
            s_yl = a[1] if a[1] < b[1] else b[1]
            s_yh = a[1] if a[1] > b[1] else b[1]
            for c, d in other.segments():
                if (
                    s_xl > (c[0] if c[0] > d[0] else d[0])
                    or (c[0] if c[0] < d[0] else d[0]) > s_xh
                    or s_yl > (c[1] if c[1] > d[1] else d[1])
                    or (c[1] if c[1] < d[1] else d[1]) > s_yh
                ):
                    continue
                if segments_intersect(a, b, c, d):
                    return True
        return False

    def kernel(self) -> Optional[Tuple[float, float, float, float]]:
        """Polylines have no interior: no kernel approximation exists."""
        return None


class ConvexPolygon:
    """A convex polygon (counter-clockwise vertices)."""

    __slots__ = ("points",)

    def __init__(self, points: Sequence[Point]):
        if len(points) < 3:
            raise ValueError("a polygon needs at least three points")
        self.points = [(float(x), float(y)) for x, y in points]

    def mbr(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))

    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment via same-side tests (convexity assumed)."""
        sign = 0
        n = len(self.points)
        for i in range(n):
            o = orientation(self.points[i], self.points[(i + 1) % n], (x, y))
            if o == 0:
                continue
            if sign == 0:
                sign = o
            elif o != sign:
                return False
        return True

    def intersects(self, other: "ConvexPolygon") -> bool:
        """Exact convex-convex intersection: edge crossings or containment."""
        mine = self.points
        theirs = other.points
        n, m = len(mine), len(theirs)
        for i in range(n):
            a, b = mine[i], mine[(i + 1) % n]
            for j in range(m):
                c, d = theirs[j], theirs[(j + 1) % m]
                if segments_intersect(a, b, c, d):
                    return True
        return self.contains_point(*theirs[0]) or other.contains_point(*mine[0])

    def kernel(self) -> Optional[Tuple[float, float, float, float]]:
        """A conservative inner rectangle, centred on the centroid.

        The MBR shape is shrunk about the centroid until all four corners
        lie inside the polygon (binary search on the scale) — simple, and
        guaranteed conservative, which is all [BKSS 94] requires.
        """
        cx = sum(p[0] for p in self.points) / len(self.points)
        cy = sum(p[1] for p in self.points) / len(self.points)
        xl, yl, xh, yh = self.mbr()
        hx = max(xh - cx, cx - xl)
        hy = max(yh - cy, cy - yl)
        if hx <= 0 or hy <= 0:
            return None
        lo, hi = 0.0, 1.0
        for _ in range(20):
            mid = (lo + hi) / 2.0
            corners_inside = all(
                self.contains_point(cx + sx * mid * hx, cy + sy * mid * hy)
                for sx in (-1.0, 1.0)
                for sy in (-1.0, 1.0)
            )
            if corners_inside:
                lo = mid
            else:
                hi = mid
        if lo <= 0.0:
            return None
        return (cx - lo * hx, cy - lo * hy, cx + lo * hx, cy + lo * hy)


def segment_distance(p1: Point, q1: Point, p2: Point, q2: Point) -> float:
    """Exact minimum distance between two closed segments."""
    if segments_intersect(p1, q1, p2, q2):
        return 0.0
    return min(
        point_segment_distance(p1, p2, q2),
        point_segment_distance(q1, p2, q2),
        point_segment_distance(p2, p1, q1),
        point_segment_distance(q2, p1, q1),
    )


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point *p* to segment *ab*."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def polyline_distance(a: "Polyline", b: "Polyline") -> float:
    """Exact minimum distance between two polylines.

    The refinement criterion of an epsilon-distance join over polyline
    data (the paper's future-work direction, Section 6).
    """
    best = math.inf
    for sa in a.segments():
        for sb in b.segments():
            distance = segment_distance(sa[0], sa[1], sb[0], sb[1])
            if distance < best:
                best = distance
                if best == 0.0:
                    return 0.0
    return best


def polygon_area(points: Sequence[Point]) -> float:
    """Signed shoelace area (positive for counter-clockwise rings)."""
    total = 0.0
    n = len(points)
    for i in range(n):
        x1, y1 = points[i]
        x2, y2 = points[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def clip_convex(subject: "ConvexPolygon", clip: "ConvexPolygon") -> Optional["ConvexPolygon"]:
    """Sutherland-Hodgman intersection of two convex polygons.

    Returns the intersection polygon or None when it is empty or
    degenerate.  Used by refinement consumers that need the overlap
    *region*, not just the predicate.
    """
    output = list(subject.points)
    clip_pts = clip.points
    # Ensure counter-clockwise clip ring so "inside" is to the left.
    if polygon_area(clip_pts) < 0:
        clip_pts = list(reversed(clip_pts))
    n = len(clip_pts)
    for i in range(n):
        a = clip_pts[i]
        b = clip_pts[(i + 1) % n]
        if not output:
            return None
        inputs = output
        output = []
        for j, current in enumerate(inputs):
            previous = inputs[j - 1]
            current_in = orientation(a, b, current) >= 0
            previous_in = orientation(a, b, previous) >= 0
            if current_in:
                if not previous_in:
                    crossing = _line_intersection(previous, current, a, b)
                    if crossing is not None:
                        output.append(crossing)
                output.append(current)
            elif previous_in:
                crossing = _line_intersection(previous, current, a, b)
                if crossing is not None:
                    output.append(crossing)
    if len(output) < 3 or abs(polygon_area(output)) < 1e-18:
        return None
    return ConvexPolygon(output)


def _line_intersection(p1: Point, p2: Point, p3: Point, p4: Point) -> Optional[Point]:
    """Intersection of line p1p2 with line p3p4 (None when parallel)."""
    x1, y1 = p1
    x2, y2 = p2
    x3, y3 = p3
    x4, y4 = p4
    denominator = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
    if abs(denominator) < 1e-18:
        return None
    det1 = x1 * y2 - y1 * x2
    det2 = x3 * y4 - y3 * x4
    return (
        (det1 * (x3 - x4) - (x1 - x2) * det2) / denominator,
        (det1 * (y3 - y4) - (y1 - y2) * det2) / denominator,
    )


def regular_polygon(cx: float, cy: float, radius: float, sides: int = 8) -> ConvexPolygon:
    """A regular convex polygon — handy for tests and synthetic stores."""
    points = [
        (
            cx + radius * math.cos(2 * math.pi * i / sides),
            cy + radius * math.sin(2 * math.pi * i / sides),
        )
        for i in range(sides)
    ]
    return ConvexPolygon(points)
