"""A page-addressed geometry store for the refinement step.

Section 3.1 explains why original PBSM delays duplicate removal to a
final sort: once the candidates are sorted "w.r.t. the physical position
of the objects", the refinement step's random disk accesses collapse into
(nearly) sequential ones.  To make that trade-off measurable, this store
gives every object a *page address* and charges fetches through the
simulated disk:

* unordered fetches pay one positioning per page miss;
* address-ordered fetches of the same set coalesce adjacent pages into
  contiguous requests (`PT + n`).

A small LRU page buffer models the refinement operator's working memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.io.disk import SimulatedDisk


class GeometryStore:
    """Maps oid -> exact geometry, laid out on simulated pages."""

    def __init__(
        self,
        disk: SimulatedDisk,
        objects_per_page: int = 16,
        buffer_pages: int = 32,
    ):
        if objects_per_page < 1:
            raise ValueError("objects_per_page must be >= 1")
        self.disk = disk
        self.objects_per_page = objects_per_page
        self.buffer_pages = buffer_pages
        self._geometries: Dict[int, object] = {}
        self._page_of: Dict[int, int] = {}
        self._next_slot = 0
        self._buffer: "OrderedDict[int, None]" = OrderedDict()
        self.fetches = 0
        self.page_misses = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def add(self, oid: int, geometry) -> None:
        """Append an object; objects are laid out in insertion order."""
        if oid in self._geometries:
            raise ValueError(f"oid {oid} already stored")
        self._geometries[oid] = geometry
        self._page_of[oid] = self._next_slot // self.objects_per_page
        self._next_slot += 1

    def add_all(self, items: Iterable[Tuple[int, object]]) -> None:
        for oid, geometry in items:
            self.add(oid, geometry)

    def __len__(self) -> int:
        return len(self._geometries)

    def page_of(self, oid: int) -> int:
        return self._page_of[oid]

    @property
    def n_pages(self) -> int:
        return -(-self._next_slot // self.objects_per_page)

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def fetch(self, oid: int):
        """Fetch one object, charging a page read on a buffer miss."""
        self.fetches += 1
        page = self._page_of[oid]
        if page in self._buffer:
            self._buffer.move_to_end(page)
        else:
            self.page_misses += 1
            self.disk.charge_read(1, requests=1)
            self._buffer[page] = None
            while len(self._buffer) > self.buffer_pages:
                self._buffer.popitem(last=False)
        return self._geometries[oid]

    def fetch_clustered(self, oids: Sequence[int]) -> List:
        """Fetch objects after sorting by page address.

        Consecutive needed pages are read as one contiguous request —
        the access pattern the sorted candidate set of original PBSM
        enables.  Returns geometries in the *requested* order.
        """
        self.fetches += len(oids)
        needed = sorted({self._page_of[oid] for oid in oids} - set(self._buffer))
        run_start: Optional[int] = None
        previous: Optional[int] = None
        for page in needed + [None]:
            if run_start is None:
                run_start = page
            elif page is None or page != previous + 1:
                self.page_misses += previous - run_start + 1
                self.disk.charge_read(previous - run_start + 1, requests=1)
                run_start = page
            previous = page
        for page in needed:
            self._buffer[page] = None
        while len(self._buffer) > self.buffer_pages:
            self._buffer.popitem(last=False)
        return [self._geometries[oid] for oid in oids]

    def reset_buffer(self) -> None:
        """Drop the page buffer and counters (between experiment runs)."""
        self._buffer.clear()
        self.fetches = 0
        self.page_misses = 0
