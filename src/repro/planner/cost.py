"""Analytic cost estimates for every join method the planner considers.

Each estimator mirrors the phase structure of its driver (partition /
sort / join / dedup), predicts the *operation counts* those phases charge
to :class:`~repro.core.stats.CpuCounters` and the simulated disk, and
translates them into simulated seconds through the very same
:class:`~repro.io.costmodel.CostModel` constants the drivers use.  That
shared currency is what makes EXPLAIN's "estimated vs. actual" columns
directly comparable.

The formulas encode the paper's findings rather than curve-fits:

* formula (1) + ``t`` gives PBSM's partition count (clamped, Sec. 3.2.3),
  and a low ``t`` is charged an expected-repartitioning penalty;
* the list-vs-trie crossover of Fig. 4 emerges from the sweep-line
  active-set model: the list sweep pays ``O(active)`` per step, the trie
  pays ``O(depth)`` — so the trie wins once partitions are large or
  selective, and loses on small/sparse partitions;
* S3J's original assignment pays the deep-sink penalty of Sec. 4.3
  (boundary-straddling rectangles join against entire root paths), which
  replication removes at the price of up-to-four copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.phases import (
    PHASE_BUILD,
    PHASE_DEDUP,
    PHASE_JOIN,
    PHASE_PARTITION,
    PHASE_REPARTITION,
    PHASE_SORT,
)
from repro.internal.interval_trie import DEFAULT_MAX_DEPTH
from repro.io.costmodel import CostModel
from repro.kernels.backend import numpy_enabled
from repro.kernels.rpm import BATCH_OPS_PER_RPM_TEST
from repro.kernels.sweep import BATCH_OPS_PER_CANDIDATE
from repro.kernels.twolayer import (
    CLASSIFY_BATCH_OPS_PER_RECORD,
    CLASSIFY_BATCH_OPS_PER_REPLICA,
)
from repro.pbsm.estimator import estimate_partitions
from repro.pbsm.twolayer import CLASSIFY_OPS_PER_REPLICA, CLASSIFY_OPS_PER_VISIT
from repro.planner.stats import JoinProfile
from repro.sfc.locational import DEFAULT_MAX_LEVEL

#: Sweep bookkeeping charged per record beyond the probe loop (enter/expire).
_SWEEP_OVERHEAD = 2.0
#: Fraction of active-list visits that survive expiry and pay a y-test.
_LIST_TEST_FRACTION = 0.8
#: Per-record trie bookkeeping: insert path + probe path (node visits).
_TRIE_NODE_FACTOR = 2.0
#: Interval-tree extra: sorted insertion into node entry lists.
_TREE_INSERT_FACTOR = 1.4
#: Mild residual skew after hashing tiles_per_partition tiles per partition.
_SKEW_DAMPING = 0.5

#: Measured pickle sizes for the legacy process transport: one KPE tuple
#: inside a record list, and one (rid, sid) pair inside a result list.
PICKLED_KPE_BYTES = 46.0
PICKLED_PAIR_BYTES = 12.0
#: Shared-memory transport per-task pipe traffic: a five-integer task
#: tuple out, its share of per-chunk metadata and manifest back.
SHM_TASK_BYTES = 64.0
SHM_CHUNK_OVERHEAD_BYTES = 512.0


def _lg(x: float) -> float:
    return math.log2(x) if x > 2.0 else 1.0


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one candidate plan, in simulated seconds.

    ``predicted`` carries the headline quantities EXPLAIN compares against
    the executed :class:`~repro.core.result.JoinStats` (partition count,
    detected pairs, replication, io units, ...).
    """

    io_units: float
    cpu_seconds: float
    io_seconds: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    predicted: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds


def _estimate(
    cost: CostModel,
    io_units: float,
    cpu_seconds: float,
    breakdown: Dict[str, float],
    predicted: Dict[str, float],
) -> CostEstimate:
    return CostEstimate(
        io_units=io_units,
        cpu_seconds=cpu_seconds,
        io_seconds=cost.io_seconds(io_units),
        breakdown=breakdown,
        predicted=predicted,
    )


# ----------------------------------------------------------------------
# shared sub-models
# ----------------------------------------------------------------------
def _sweep_cpu(
    cost: CostModel,
    a: float,
    b: float,
    active_a: float,
    active_b: float,
    detected: float,
    internal: str,
    clustering: float = 1.0,
) -> float:
    """CPU seconds of one in-memory sweep join over ``a`` x ``b`` records.

    ``active_*`` are the expected sweep-line set sizes of each side; the
    internal algorithms differ only in what a probe against the active set
    costs (Sec. 3.2.2).  ``clustering`` scales the list sweep's probe
    traffic: arrivals concentrate where the active sets are longest, a
    correlation the constant-density model misses.
    """
    n = a + b
    comparisons = a * _lg(a) + b * _lg(b)  # the two sorts
    if internal == "sweep_list":
        visits = (a * active_b + b * active_a) * clustering + n * _SWEEP_OVERHEAD
        structure = visits
        tests = _LIST_TEST_FRACTION * visits + detected
    elif internal == "sweep_trie":
        depth = min(DEFAULT_MAX_DEPTH, _lg(max(active_a + active_b, 2.0)) + 2.0)
        structure = n * depth * _TRIE_NODE_FACTOR + detected
        tests = detected * 2.0 + n
    elif internal == "sweep_tree":
        depth = min(DEFAULT_MAX_DEPTH, _lg(max(active_a + active_b, 2.0)) + 2.0)
        node_len = max(1.0, (active_a + active_b) / max(depth, 1.0))
        structure = n * depth * _TRIE_NODE_FACTOR * _TREE_INSERT_FACTOR + detected
        comparisons += n * _lg(node_len) + detected
        tests = detected * 2.0 + n
    elif internal == "nested_loops":
        structure = n
        tests = a * b
    elif internal == "sweep_numpy":
        # Forward-scan kernel: the candidate volume is the x-overlap pair
        # count — same arrival/active-set model as the list sweep, but
        # each candidate costs a batch-level array op, not a scalar test.
        candidates = (a * active_b + b * active_a) * clustering
        if numpy_enabled():
            batch = (
                a * _lg(a)
                + b * _lg(b)  # vectorized argsorts
                + 2.0 * n  # the four searchsorted sweeps
                + BATCH_OPS_PER_CANDIDATE * candidates
            )
            return cost.cpu_seconds_from_counts(batch_ops=batch)
        # numpy off: the python forward scan runs per element.
        return cost.cpu_seconds_from_counts(
            intersection_tests=candidates + detected,
            comparisons=comparisons,
            structure_ops=n * _SWEEP_OVERHEAD,
        )
    else:
        raise ValueError(f"no cost model for internal algorithm {internal!r}")
    return cost.cpu_seconds_from_counts(
        intersection_tests=tests,
        comparisons=comparisons,
        structure_ops=structure,
    )


def _grid_replication(
    profile: "JoinProfile", width: float, height: float, tiles: int
) -> float:
    """Expected copies of one of *profile*'s rectangles on a ``tiles``² grid.

    ``1 + E[w]/W·s + E[h]/H·s + E[w·h]/(W·H)·s²`` — the cross term uses
    the true mean area, not ``E[w]·E[h]``: on heavy-tailed extents
    (mixed-scale data) the few huge rectangles generate most of the
    copies, and the product of the means misses them (Jensen's gap).
    """
    if width <= 0 or height <= 0:
        return 1.0
    return (
        1.0
        + profile.avg_width / width * tiles
        + profile.avg_height / height * tiles
        + profile.avg_area / (width * height) * tiles * tiles
    )


def _sampled_dup_factor(jp: JoinProfile, side: int, n_partitions: int) -> float:
    """Mean detections per result pair on a hashed ``side``² tile grid.

    A pair is detected in every partition holding copies of both
    rectangles: once per shared tile, plus hash collisions among the
    remaining ``k_r × k_s`` tile-copy combinations spread over P
    partitions.  Evaluated pair-by-pair on the profile's sampled
    intersecting pairs, because on heavy-tailed extents ``E[k_r·k_s]``
    is dominated by the few huge rectangles that mean-based formulas
    cannot see.  Returns ``None`` when no pairs were sampled.
    """
    pairs = jp.sample_pairs
    if not pairs:
        return None
    xl0, yl0, xh0, yh0 = jp.space
    width = (xh0 - xl0) or 1.0
    height = (yh0 - yl0) or 1.0
    last = side - 1
    total = 0.0
    for r, s in pairs:
        rxl = min(last, max(0, int((r[1] - xl0) / width * side)))
        rxh = min(last, max(0, int((r[3] - xl0) / width * side)))
        ryl = min(last, max(0, int((r[2] - yl0) / height * side)))
        ryh = min(last, max(0, int((r[4] - yl0) / height * side)))
        sxl = min(last, max(0, int((s[1] - xl0) / width * side)))
        sxh = min(last, max(0, int((s[3] - xl0) / width * side)))
        syl = min(last, max(0, int((s[2] - yl0) / height * side)))
        syh = min(last, max(0, int((s[4] - yl0) / height * side)))
        k_r = (rxh - rxl + 1) * (ryh - ryl + 1)
        k_s = (sxh - sxl + 1) * (syh - syl + 1)
        shared = (min(rxh, sxh) - max(rxl, sxl) + 1) * (
            min(ryh, syh) - max(ryl, syl) + 1
        )
        total += shared + (k_r - shared) * (k_s - shared) / n_partitions
    return total / len(pairs)


def _bucket_occupancy(jp: JoinProfile, side: int) -> Tuple[float, float]:
    """SHJ bucket occupancy from the joint-space histograms.

    Returns ``(occupied, co_occupied, retention)`` for a ``side``² grid:

    * ``occupied`` — buckets holding at least one build record.  Empty
      buckets cost SHJ nothing: no file, no request, no probe test (the
      probe loop skips extent-less buckets).
    * ``co_occupied`` — buckets whose *probe* file is also non-empty;
      only these are read back and swept in the join phase.
    * ``retention`` — fraction of probe records overlapping any build
      bucket extent; the rest are dropped outright (they can produce no
      result).  A probe record survives if the build side occupies its
      histogram cell or one of the 8 neighbours (the dilation stands in
      for bucket extents overhanging their occupied cells).

    On clustered inputs all three collapse well below the uniform
    assumption, which is what makes SHJ the planner's best answer there.
    """
    hl, hr = jp.hist_left, jp.hist_right
    if hl is None or hr is None or hl.n == 0 or hr.n == 0:
        return side * side, side * side, 1.0
    res = hl.resolution
    build_buckets = set()
    co_buckets = set()
    retained = 0.0
    for iy in range(res):
        for ix in range(res):
            bucket = (
                min(side - 1, iy * side // res),
                min(side - 1, ix * side // res),
            )
            if hl.counts[iy * res + ix]:
                build_buckets.add(bucket)
            count = hr.counts[iy * res + ix]
            if not count:
                continue
            hit = any(
                hl.counts[yy * res + xx]
                for yy in range(max(0, iy - 1), min(res, iy + 2))
                for xx in range(max(0, ix - 1), min(res, ix + 2))
            )
            if hit:
                retained += count
                co_buckets.add(bucket)
    return max(1, len(build_buckets)), max(1, len(co_buckets)), retained / hr.n


# ----------------------------------------------------------------------
# PBSM
# ----------------------------------------------------------------------
def estimate_pbsm(
    jp: JoinProfile,
    memory_bytes: int,
    cost: CostModel,
    internal: str = "sweep_trie",
    t_factor: float = 1.2,
    dedup: str = "rpm",
    tiles_per_partition: int = 4,
    workers: int = 1,
    shared_memory: bool = False,
    executor: str = "process",
    scheduler: str = "stealing",
) -> CostEstimate:
    """Cost of ``PBSM(internal, dedup)`` under formula (1) with *t_factor*.

    With ``workers > 1`` the estimate models ``ParallelPBSM``: the
    partition phase stays sequential (the Amdahl term), the in-memory
    joins and RPM tests shrink to the *makespan fraction* — the larger of
    the ideal ``1/speedup`` and the biggest task's share of the join work
    (skew: one mega-partition bounds the makespan no matter how the rest
    is packed) — and an ``ipc`` term charges the transport: pickled
    records and pair lists for the legacy transport, task tuples plus
    manifests when ``shared_memory`` is on.

    ``executor`` and ``scheduler`` refine the model: the thread executor
    pays no spawn and no IPC but its speedup is Amdahl-bounded by
    ``cost.thread_parallel_fraction`` (the GIL-released share); the
    stealing scheduler stripe-splits the dominant task (shrinking the
    skew share, at a small duplicated-layout overhead) and pays per-unit
    dispatch through ``cost.dispatch_seconds`` (a ``schedule`` breakdown
    entry).
    """
    nl, nr = jp.n_left, jp.n_right
    kb = cost.kpe_bytes
    width = jp.space[2] - jp.space[0] or 1.0
    height = jp.space[3] - jp.space[1] or 1.0

    n_partitions = estimate_partitions(nl, nr, kb, memory_bytes, t_factor)
    if workers > 1:
        # ParallelPBSM guarantees at least one task per worker.
        n_partitions = max(n_partitions, workers)
    side = max(1, math.ceil(math.sqrt(n_partitions * tiles_per_partition)))

    copies_l = min(
        float(n_partitions), _grid_replication(jp.left, width, height, side)
    )
    copies_r = min(
        float(n_partitions), _grid_replication(jp.right, width, height, side)
    )
    nl_part = nl * copies_l
    nr_part = nr * copies_r
    pages_l = cost.pages_for(int(nl_part), kb)
    pages_r = cost.pages_for(int(nr_part), kb)
    pages = pages_l + pages_r

    # Partition phase: one-page writers flush one request per page, plus a
    # final partial flush per (non-empty) partition file of both inputs.
    partial_flushes = min(2 * n_partitions, nl + nr)
    io_partition = pages * (1.0 + cost.pt_ratio) + partial_flushes * cost.pt_ratio
    cpu_partition = cost.cpu_seconds_from_counts(
        structure_ops=nl_part + nr_part + nl + nr
    )

    # Join phase: each partition file is read back in one request.
    io_join = pages + 2 * n_partitions * cost.pt_ratio

    # Expected repartitioning (the t-factor's raison d'etre): the fraction
    # of partition pairs whose joint size exceeds M, with residual skew
    # after tile hashing.  Overflowing partitions are split, re-written
    # and re-read recursively.
    mean_pair_bytes = (nl_part + nr_part) * kb / n_partitions
    skew = max(jp.left.skew, jp.right.skew)
    residual_skew = 1.0 + (skew - 1.0) * _SKEW_DAMPING / tiles_per_partition
    overflow = (mean_pair_bytes * residual_skew / memory_bytes - 0.8) / 0.4
    overflow = min(1.0, max(0.0, overflow))
    io_repartition = overflow * (pages * 3.0 + 2 * n_partitions * cost.pt_ratio)
    cpu_repartition = cost.cpu_seconds_from_counts(
        structure_ops=overflow * 1.5 * (nl_part + nr_part)
    )

    # Internal joins: per-partition sweep with expected active-set sizes.
    # A record is active while the sweep line crosses its own x-extent, so
    # the expected set size is density times average width; tile hashing
    # flattens skew across partitions, the residual shows up as probe
    # arrivals correlating with long active sets (``clustering``).
    a = nl_part / n_partitions
    b = nr_part / n_partitions
    active_a = min(a, a * jp.left.avg_width / width + 1.0)
    active_b = min(b, b * jp.right.avg_width / width + 1.0)
    # Detections (results + duplicates): replayed on the sampled pairs
    # where possible, since on heavy-tailed extents the duplicate volume
    # dwarfs the result count and mean-based formulas cannot see it.
    dup_factor = _sampled_dup_factor(jp, side, n_partitions)
    if dup_factor is not None:
        detected = jp.est_results * dup_factor
    elif jp.hist_left is not None and jp.hist_right is not None:
        detected = jp.hist_left.estimate_detected_pairs(jp.hist_right, side)
    else:
        detected = jp.est_results * (copies_l + copies_r) / 2.0
    cpu_internal = n_partitions * _sweep_cpu(
        cost,
        a,
        b,
        active_a,
        active_b,
        detected / n_partitions,
        internal,
        clustering=residual_skew,
    )

    io_dedup = 0.0
    cpu_dedup = 0.0
    if dedup == "rpm":
        if internal == "sweep_numpy" and numpy_enabled():
            # The kernel path tests whole candidate batches at once.
            cpu_dedup = cost.cpu_seconds_from_counts(
                batch_ops=BATCH_OPS_PER_RPM_TEST * detected
            )
        else:
            cpu_dedup = cost.cpu_seconds_from_counts(refpoint_tests=detected)
    elif dedup == "twolayer":
        # Corner-class avoidance pays nothing per pair — the whole dedup
        # charge is the per-replica classification (two comparisons, and
        # on the kernel path a (tile, class) argsort), so at matched
        # grids it undercuts RPM whenever detected pairs outnumber
        # replicas, which replication-bounded grids guarantee.
        replicas = nl_part + nr_part
        if internal == "sweep_numpy" and numpy_enabled():
            cpu_dedup = cost.cpu_seconds_from_counts(
                batch_ops=CLASSIFY_BATCH_OPS_PER_RECORD * (nl + nr)
                + CLASSIFY_BATCH_OPS_PER_REPLICA * replicas
                + replicas * _lg(replicas)
            )
        else:
            cpu_dedup = cost.cpu_seconds_from_counts(
                structure_ops=(CLASSIFY_OPS_PER_VISIT + CLASSIFY_OPS_PER_REPLICA)
                * replicas
            )
    elif dedup == "sort":
        result_pages = cost.pages_for(int(detected), cost.result_bytes)
        # write candidates (one-page buffers), then a sort pass (read,
        # write runs, read runs).
        io_dedup = result_pages * (1.0 + cost.pt_ratio) + 3.0 * result_pages
        cpu_dedup = cost.cpu_seconds_from_counts(
            comparisons=detected * _lg(detected)
        )

    ipc_seconds = 0.0
    ipc_bytes = 0.0
    schedule_seconds = 0.0
    if workers > 1:
        # ParallelPBSM does not repartition (it records overruns), and the
        # join/dedup work shrinks to the makespan fraction; the
        # sequential partition phase is left untouched (Amdahl).
        io_repartition = 0.0
        cpu_repartition = 0.0
        speedup = float(min(workers, n_partitions))
        if executor == "thread":
            # GIL-released fraction bounds the thread speedup (Amdahl).
            f = cost.thread_parallel_fraction
            speedup = 1.0 / ((1.0 - f) + f / speedup)
        # The dominant task's share of the join work: residual skew
        # concentrates roughly that multiple of the mean in one
        # partition, and that task alone bounds the static makespan.
        share = min(1.0, residual_skew / n_partitions)
        n_units = float(min(n_partitions, workers * 4))
        can_split = (
            scheduler == "stealing"
            and internal == "sweep_numpy"
            and numpy_enabled()
        )
        if can_split:
            # Stripe splitting divides the mega task; the parts add a
            # duplicated stripe-layout pass each (O(records), charged as
            # batch ops) and more dispatch units.
            n_slices = min(16.0, max(1.0, share * n_partitions * workers))
            share /= n_slices
            n_units += n_slices
            cpu_internal += cost.cpu_seconds_from_counts(
                batch_ops=(n_slices - 1.0) * 8.0 * (a + b)
            )
        makespan_fraction = max(1.0 / speedup, share)
        cpu_internal *= makespan_fraction
        cpu_dedup *= makespan_fraction
        schedule_seconds = cost.dispatch_seconds * n_units
        if executor != "thread":
            # One-shot pools fork a worker per slot; persistent pools
            # (serve) amortise this, but the planner prices the cold run.
            schedule_seconds += cost.pool_spawn_seconds * workers
        if executor == "thread":
            ipc_bytes = 0.0
        elif shared_memory:
            n_chunks = min(n_partitions, workers * 4)
            ipc_bytes = (
                SHM_TASK_BYTES * n_partitions
                + SHM_CHUNK_OVERHEAD_BYTES * n_chunks
            )
        else:
            ipc_bytes = (nl_part + nr_part) * PICKLED_KPE_BYTES + (
                jp.est_results * PICKLED_PAIR_BYTES
            )
        ipc_seconds = cost.ipc_seconds_for(ipc_bytes)

    io_units = io_partition + io_join + io_repartition + io_dedup
    cpu_seconds = (
        cpu_partition
        + cpu_internal
        + cpu_repartition
        + cpu_dedup
        + ipc_seconds
        + schedule_seconds
    )
    breakdown = {
        PHASE_PARTITION: cost.io_seconds(io_partition) + cpu_partition,
        PHASE_REPARTITION: cost.io_seconds(io_repartition) + cpu_repartition,
        PHASE_JOIN: cost.io_seconds(io_join) + cpu_internal,
        PHASE_DEDUP: cost.io_seconds(io_dedup) + cpu_dedup,
    }
    if workers > 1:
        breakdown["ipc"] = ipc_seconds
        breakdown["schedule"] = schedule_seconds
    predicted = {
        "n_partitions": float(n_partitions),
        "est_results": jp.est_results,
        "detected_pairs": detected,
        "replication_rate": (nl_part + nr_part) / max(1, nl + nr),
        "overflow_fraction": overflow,
    }
    if workers > 1:
        predicted["ipc_bytes"] = ipc_bytes
    return _estimate(cost, io_units, cpu_seconds, breakdown, predicted)


# ----------------------------------------------------------------------
# S3J
# ----------------------------------------------------------------------
def estimate_s3j(
    jp: JoinProfile,
    memory_bytes: int,
    cost: CostModel,
    strategy: str = "size",
    max_level: int = DEFAULT_MAX_LEVEL,
    io_buffer_pages: int = 4,
) -> CostEstimate:
    """Cost of S3J under an assignment strategy ("size"/"original"/"hybrid")."""
    nl, nr = jp.n_left, jp.n_right
    n = nl + nr
    kb = cost.kpe_bytes
    width = jp.space[2] - jp.space[0] or 1.0
    height = jp.space[3] - jp.space[1] or 1.0

    # Size level of an average rectangle: the deepest grid whose cells
    # still contain it (levels count down from the root, paper Sec. 4.1).
    avg_edge = max(
        (jp.left.avg_width + jp.right.avg_width) / 2.0 / width,
        (jp.left.avg_height + jp.right.avg_height) / 2.0 / height,
        1e-9,
    )
    size_level = min(max_level, max(0, int(math.log2(1.0 / avg_edge))))
    # Probability that a rectangle straddles a cell border at its size
    # level (and, without replication, sinks toward the root).
    straddle = min(1.0, avg_edge * (2**size_level) * 2.0)

    if strategy == "size":
        copies = 1.0 + 2.2 * straddle  # at most four copies (Sec. 4.3)
        sink = 0.0
    elif strategy == "hybrid":
        copies = 1.0 + 1.2 * straddle
        sink = straddle * 0.3
    elif strategy == "original":
        copies = 1.0
        sink = straddle  # straddlers climb toward the root
    else:
        raise ValueError(f"no cost model for S3J strategy {strategy!r}")

    n_repl = n * copies
    pages = cost.pages_for(int(n_repl), kb)

    # Partitioning: locational code per copy, buffered level-file writes.
    cpu_partition = cost.cpu_seconds_from_counts(
        code_computations=n_repl + n, structure_ops=n_repl
    )
    io_partition = pages + pages / io_buffer_pages * cost.pt_ratio

    # Sorting each level file by locational code; external when a level
    # file exceeds the budget (runs written and merged back once).
    cpu_sort = cost.cpu_seconds_from_counts(
        comparisons=n_repl * _lg(n_repl), heap_ops=n_repl * 0.5
    )
    external = 2.0 if n_repl * kb > memory_bytes else 0.0
    io_sort = external * (pages + pages / io_buffer_pages * cost.pt_ratio)

    # Synchronized scan: heap traffic per cell partition, then per-pair
    # internal joins.  Without replication, straddling rectangles sink
    # ``sink``-deep and are joined against every partition on their root
    # path — the order-of-magnitude CPU penalty of Fig. 10/11.
    io_scan = pages + pages / io_buffer_pages * cost.pt_ratio
    heap = n_repl * 3.0
    detected = jp.est_results * max(1.0, copies * 0.75)
    path_partners = 1.0 + sink * size_level * 2.0
    # Sunk records are tested against the (dense) shallow partitions on
    # their path: approximate the partner set as the records sharing the
    # path, a 1/2**level thinning per step up.  This is the
    # order-of-magnitude penalty replication removes (Fig. 10/11).
    cross_tests = n * sink * (n / max(1.0, 2.0**size_level)) * 2.0
    tests = detected * 1.5 + n * path_partners + cross_tests
    cpu_scan = cost.cpu_seconds_from_counts(
        intersection_tests=tests,
        heap_ops=heap,
        refpoint_tests=detected if strategy != "original" else 0.0,
        structure_ops=n_repl,
    )

    io_units = io_partition + io_sort + io_scan
    cpu_seconds = cpu_partition + cpu_sort + cpu_scan
    breakdown = {
        PHASE_PARTITION: cost.io_seconds(io_partition) + cpu_partition,
        PHASE_SORT: cost.io_seconds(io_sort) + cpu_sort,
        PHASE_JOIN: cost.io_seconds(io_scan) + cpu_scan,
    }
    predicted = {
        "est_results": jp.est_results,
        "detected_pairs": detected,
        "replication_rate": copies,
        "size_level": float(size_level),
    }
    return _estimate(cost, io_units, cpu_seconds, breakdown, predicted)


# ----------------------------------------------------------------------
# SHJ
# ----------------------------------------------------------------------
def estimate_shj(
    jp: JoinProfile,
    memory_bytes: int,
    cost: CostModel,
    internal: str = "sweep_list",
    t_factor: float = 1.2,
) -> CostEstimate:
    """Cost of the spatial hash join (build by centre, probe replicated)."""
    nl, nr = jp.n_left, jp.n_right
    kb = cost.kpe_bytes
    width = jp.space[2] - jp.space[0] or 1.0
    height = jp.space[3] - jp.space[1] or 1.0

    n_buckets = estimate_partitions(nl, nr, kb, memory_bytes, t_factor)
    side = max(1, math.ceil(math.sqrt(n_buckets)))
    n_buckets = side * side

    occupied, co_occupied, retention = _bucket_occupancy(jp, side)
    occupied = min(occupied, n_buckets)
    co_occupied = min(co_occupied, occupied)

    # Build side: exactly one bucket per record.  Probe side: the
    # retained fraction is replicated into every bucket extent it
    # overlaps; bucket extents exceed the cell by the build rectangles'
    # overhang (mean-area cross term for heavy-tailed extents).
    cell_w = width / side
    cell_h = height / side
    cross_area = (
        jp.right.avg_area
        + jp.left.avg_area
        + jp.right.avg_width * jp.left.avg_height
        + jp.left.avg_width * jp.right.avg_height
    )
    copies_r = min(
        float(occupied),
        1.0
        + (jp.right.avg_width + jp.left.avg_width) / cell_w
        + (jp.right.avg_height + jp.left.avg_height) / cell_h
        + cross_area / (cell_w * cell_h),
    )
    nr_part = nr * retention * copies_r
    pages_l = cost.pages_for(nl, kb)
    pages_r = cost.pages_for(int(nr_part), kb)

    # The probe loop tests every record against every non-empty extent.
    cpu_partition = cost.cpu_seconds_from_counts(
        structure_ops=nl + nr_part, intersection_tests=float(nr) * occupied
    )
    # One-page writers flush full pages plus one partial page per
    # non-empty file; build files exist in every occupied bucket, probe
    # files only where probe records met a build extent.
    io_partition = (
        pages_l + occupied + pages_r + co_occupied
    ) * (1.0 + cost.pt_ratio)
    # The join phase reads back only buckets where both files are
    # non-empty: every probe page, the co-occupied share of the build
    # pages, plus the per-file partial pages and one request per file.
    pages_read = pages_l * co_occupied / occupied + pages_r + 2.0 * co_occupied
    io_join = pages_read + 2 * co_occupied * cost.pt_ratio

    # Per-bucket sweeps span at most one cell along x, so the active-set
    # densities are taken against the cell width.  Skew concentrates
    # records in fewer (occupied) buckets but shrinks their x-span in
    # step (clusters are compact), so no extra skew correction is
    # applied.
    a = nl / occupied
    b = nr_part / co_occupied
    active_a = min(a, a * jp.left.avg_width / cell_w) + 1.0
    active_b = min(b, b * jp.right.avg_width / cell_w) + 1.0
    detected = jp.est_results * 1.05
    cpu_internal = co_occupied * _sweep_cpu(
        cost, a, b, active_a, active_b, detected / co_occupied, internal
    )

    io_units = io_partition + io_join
    cpu_seconds = cpu_partition + cpu_internal
    breakdown = {
        PHASE_PARTITION: cost.io_seconds(io_partition) + cpu_partition,
        PHASE_JOIN: cost.io_seconds(io_join) + cpu_internal,
    }
    predicted = {
        "n_partitions": float(n_buckets),
        "est_results": jp.est_results,
        "detected_pairs": detected,
        "replication_rate": (nl + nr_part) / max(1, nl + nr),
    }
    return _estimate(cost, io_units, cpu_seconds, breakdown, predicted)


# ----------------------------------------------------------------------
# SSSJ
# ----------------------------------------------------------------------
def estimate_sssj(
    jp: JoinProfile,
    memory_bytes: int,
    cost: CostModel,
    internal: str = "sweep_list",
) -> CostEstimate:
    """Cost of SSSJ: external sort by xl, then one whole-input sweep."""
    nl, nr = jp.n_left, jp.n_right
    kb = cost.kpe_bytes
    width = jp.space[2] - jp.space[0] or 1.0

    cpu_sort = cost.cpu_seconds_from_counts(
        comparisons=nl * _lg(nl) + nr * _lg(nr)
    )
    io_sort = 0.0
    for n_side in (nl, nr):
        if n_side * kb > memory_bytes:
            pages_side = cost.pages_for(n_side, kb)
            runs = math.ceil(n_side * kb / memory_bytes)
            # run generation writes + one merge pass of page-at-a-time reads
            io_sort += pages_side * 2.0 + (runs + pages_side) * cost.pt_ratio
            cpu_sort += cost.cpu_seconds_from_counts(heap_ops=n_side * 2.0)

    # One sweep over the full relations: the active sets are as long as
    # whole-space x-overlap dictates — SSSJ's weakness on high coverage.
    active_l = min(float(nl), nl * jp.left.avg_width / width + 1.0)
    active_r = min(float(nr), nr * jp.right.avg_width / width + 1.0)
    cpu_join = _sweep_cpu(
        cost, float(nl), float(nr), active_l, active_r, jp.est_results, internal
    )

    io_units = io_sort
    cpu_seconds = cpu_sort + cpu_join
    breakdown = {
        PHASE_SORT: cost.io_seconds(io_sort) + cpu_sort,
        PHASE_JOIN: cpu_join,
    }
    predicted = {
        "est_results": jp.est_results,
        "detected_pairs": jp.est_results,
        "replication_rate": 1.0,
    }
    return _estimate(cost, io_units, cpu_seconds, breakdown, predicted)


# ----------------------------------------------------------------------
# R-tree join
# ----------------------------------------------------------------------
def estimate_rtree(
    jp: JoinProfile,
    memory_bytes: int,
    cost: CostModel,
    fanout: int = 64,
) -> CostEstimate:
    """Cost of bulk-loading R-trees on both inputs and joining them."""
    nl, nr = jp.n_left, jp.n_right

    nodes_l = max(1.0, nl / fanout * 1.1)
    nodes_r = max(1.0, nr / fanout * 1.1)
    cpu_build = cost.cpu_seconds_from_counts(
        comparisons=nl * _lg(nl) + nr * _lg(nr),
        structure_ops=(nl + nr) + (nodes_l + nodes_r) * fanout * 0.1,
    )
    io_build = (nodes_l + nodes_r) + 2 * cost.pt_ratio

    # Node-pair traversal: overlapping node pairs scale with the result;
    # every visited node pays one page read.
    overlap_pairs = max(nodes_l, nodes_r) + jp.est_results / fanout
    visited_nodes = min(nodes_l + nodes_r, overlap_pairs * 2.0)
    io_join = visited_nodes + visited_nodes * cost.pt_ratio
    leaf_tests = overlap_pairs * fanout * 1.5 + jp.est_results
    cpu_join = cost.cpu_seconds_from_counts(
        intersection_tests=leaf_tests + overlap_pairs * fanout * 0.5,
        structure_ops=overlap_pairs,
    )

    io_units = io_build + io_join
    cpu_seconds = cpu_build + cpu_join
    breakdown = {
        PHASE_BUILD: cost.io_seconds(io_build) + cpu_build,
        PHASE_JOIN: cost.io_seconds(io_join) + cpu_join,
    }
    predicted = {
        "est_results": jp.est_results,
        "detected_pairs": jp.est_results,
        "replication_rate": 1.0,
    }
    return _estimate(cost, io_units, cpu_seconds, breakdown, predicted)
