"""Candidate-plan enumeration over the method/knob space.

The planner's search space is deliberately the cross product the paper's
experiments explore by hand:

* PBSM x {sweep_list, sweep_trie, sweep_tree} x a ``t``-factor grid
  (Fig. 4/5 x Sec. 3.2.3) x {rpm, twolayer} duplicate handling, plus one
  sort-based-dedup configuration so EXPLAIN can show *why* the online
  schemes win (Fig. 3);
* S3J x its assignment/dedup strategies (original vs. size-replicated vs.
  hybrid — Fig. 10/11);
* SHJ and SSSJ as the one-pass baselines;
* the R-tree join, enumerated only when building two indexes is
  plausible (both inputs within a few memory budgets — an index is never
  "free" for a one-shot join).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.io.costmodel import CostModel
from repro.planner.cost import (
    CostEstimate,
    estimate_pbsm,
    estimate_rtree,
    estimate_s3j,
    estimate_shj,
    estimate_sssj,
)
from repro.planner.stats import JoinProfile

#: The ``t``-factor grid enumerated for PBSM (1.0 = original formula (1)).
DEFAULT_T_GRID: Tuple[float, ...] = (1.0, 1.2, 1.5)

#: PBSM internal algorithms worth enumerating (nested loops never wins
#: at partition scale — Fig. 4).
PBSM_INTERNALS: Tuple[str, ...] = ("sweep_list", "sweep_trie", "sweep_tree")

#: Enumerated in addition when the columnar backend is available; with
#: numpy disabled its python fallback is strictly dominated by
#: ``sweep_list``, so enumerating it would only add noise.
PBSM_KERNEL_INTERNAL = "sweep_numpy"

#: S3J assignment strategies (its duplicate-handling axis).
S3J_STRATEGIES: Tuple[str, ...] = ("size", "original", "hybrid")

#: Building two R-trees is only considered when both inputs fit within
#: this many memory budgets (bulk-load working set).
RTREE_MEMORY_FACTOR = 4.0


@dataclass(frozen=True)
class PlanCandidate:
    """One enumerated configuration plus its cost estimate."""

    method: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    estimate: CostEstimate = None

    def describe(self) -> str:
        """Stable human-readable label, e.g. ``pbsm(internal=sweep_trie, t=1.2)``."""
        if not self.kwargs:
            return self.method
        parts = []
        for key in sorted(self.kwargs):
            value = self.kwargs[key]
            short = {
                "internal": "internal",
                "t_factor": "t",
                "strategy": "strategy",
                "shared_memory": "shm",
                "executor": "exec",
                "scheduler": "sched",
            }.get(key, key)
            parts.append(f"{short}={value}")
        return f"{self.method}({', '.join(parts)})"


def enumerate_candidates(
    jp: JoinProfile,
    memory_bytes: int,
    cost_model: Optional[CostModel] = None,
    t_grid: Sequence[float] = DEFAULT_T_GRID,
    methods: Optional[Sequence[str]] = None,
    workers: int = 1,
) -> List[PlanCandidate]:
    """All candidate plans for a join, each scored by the cost model.

    ``methods`` restricts the enumerated join methods (default: all of
    them); candidates are returned sorted by estimated total cost.  With
    ``workers > 1`` parallel PBSM configurations join the space — the
    cross product of transport (legacy pickle, and zero-copy shared
    memory where available), executor (process, and thread when the
    columnar backend is on) and scheduler (static LPT vs work stealing),
    so transport, executor and scheduler are all costed decisions, not
    hardcoded preferences.
    """
    cost = cost_model or CostModel()
    wanted = set(methods) if methods is not None else None

    def include(name: str) -> bool:
        return wanted is None or name in wanted

    candidates: List[PlanCandidate] = []

    if include("pbsm"):
        from repro.kernels.backend import numpy_enabled

        internals = PBSM_INTERNALS + (
            (PBSM_KERNEL_INTERNAL,) if numpy_enabled() else ()
        )
        for internal in internals:
            for t in t_grid:
                for dedup in ("rpm", "twolayer"):
                    candidates.append(
                        PlanCandidate(
                            "pbsm",
                            {"internal": internal, "t_factor": t, "dedup": dedup},
                            estimate_pbsm(
                                jp,
                                memory_bytes,
                                cost,
                                internal=internal,
                                t_factor=t,
                                dedup=dedup,
                            ),
                        )
                    )
        # The original PBSM (final sorting phase) as a reference point.
        candidates.append(
            PlanCandidate(
                "pbsm",
                {"internal": "sweep_trie", "t_factor": 1.2, "dedup": "sort"},
                estimate_pbsm(
                    jp, memory_bytes, cost, internal="sweep_trie", dedup="sort"
                ),
            )
        )
        if workers > 1:
            from repro.kernels.shm import shm_enabled

            par_internal = (
                PBSM_KERNEL_INTERNAL if numpy_enabled() else "sweep_trie"
            )
            transports = [False] + ([True] if shm_enabled() else [])
            # executor x scheduler: the process executor on both
            # transports and both schedulers, plus the thread executor
            # (stealing only — its whole point is skipping spawn and
            # pickling, and the static baseline adds nothing there that
            # process/static does not already cover).
            configs: List[Tuple[str, str, bool]] = []
            for shared in transports:
                for scheduler in ("static", "stealing"):
                    configs.append(("process", scheduler, shared))
            if numpy_enabled():
                configs.append(("thread", "stealing", False))
            for executor, scheduler, shared in configs:
                for t in t_grid:
                    for dedup in ("rpm", "twolayer"):
                        kwargs = {
                            "internal": par_internal,
                            "t_factor": t,
                            "workers": workers,
                            "executor": executor,
                            "scheduler": scheduler,
                            "dedup": dedup,
                        }
                        if shared:
                            kwargs["shared_memory"] = True
                        candidates.append(
                            PlanCandidate(
                                "pbsm",
                                kwargs,
                                estimate_pbsm(
                                    jp,
                                    memory_bytes,
                                    cost,
                                    internal=par_internal,
                                    t_factor=t,
                                    dedup=dedup,
                                    workers=workers,
                                    shared_memory=shared,
                                    executor=executor,
                                    scheduler=scheduler,
                                ),
                            )
                        )

    if include("s3j"):
        for strategy in S3J_STRATEGIES:
            candidates.append(
                PlanCandidate(
                    "s3j",
                    {"strategy": strategy},
                    estimate_s3j(jp, memory_bytes, cost, strategy=strategy),
                )
            )

    if include("shj"):
        candidates.append(
            PlanCandidate("shj", {}, estimate_shj(jp, memory_bytes, cost))
        )

    if include("sssj"):
        candidates.append(
            PlanCandidate("sssj", {}, estimate_sssj(jp, memory_bytes, cost))
        )

    if include("rtree"):
        input_bytes = (jp.n_left + jp.n_right) * cost.kpe_bytes
        if input_bytes <= RTREE_MEMORY_FACTOR * memory_bytes:
            candidates.append(
                PlanCandidate("rtree", {}, estimate_rtree(jp, memory_bytes, cost))
            )

    candidates.sort(key=lambda c: c.estimate.total_seconds)
    return candidates
