"""Content-keyed caches for profiles, joint histograms, and whole plans.

The planner's catalog: relations are identified by the strided-sample
fingerprint of :func:`repro.planner.stats.relation_fingerprint`, so the
second join over the same inputs re-uses the cached
:class:`~repro.planner.stats.RelationProfile`, joint-space histograms and
— when the memory budget and knobs match — the complete
:class:`~repro.planner.plan.JoinPlan`, skipping profiling *and*
enumeration (the bench's "second run plans in ~zero time" property).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.space import Space
from repro.estimate import GridHistogram
from repro.planner.stats import (
    PROFILE_RESOLUTION,
    RelationProfile,
    relation_fingerprint,
)


class PlannerCache:
    """Profile / histogram / plan cache with hit-miss accounting."""

    def __init__(self, max_plans: int = 128) -> None:
        self.max_plans = max_plans
        self._profiles: Dict[str, RelationProfile] = {}
        self._histograms: Dict[Tuple, GridHistogram] = {}
        self._plans: Dict[Tuple, object] = {}
        self.profile_hits = 0
        self.profile_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # ------------------------------------------------------------------
    # profiles and histograms
    # ------------------------------------------------------------------
    def relation_profile(self, kpes: Sequence[Tuple]) -> RelationProfile:
        """Profile *kpes*, reusing the cached profile on a fingerprint hit."""
        fingerprint = relation_fingerprint(kpes)
        cached = self._profiles.get(fingerprint)
        if cached is not None:
            self.profile_hits += 1
            return cached
        self.profile_misses += 1
        profile = RelationProfile.build(kpes, fingerprint)
        self._profiles[fingerprint] = profile
        return profile

    def joint_histogram(
        self,
        kpes: Sequence[Tuple],
        fingerprint: str,
        space_key: Tuple[float, float, float, float],
    ) -> GridHistogram:
        """Histogram of *kpes* over a joint space, cached per (relation, space)."""
        key = (fingerprint, space_key, PROFILE_RESOLUTION)
        cached = self._histograms.get(key)
        if cached is not None:
            return cached
        hist = GridHistogram.build(
            kpes, Space(*space_key), PROFILE_RESOLUTION
        )
        self._histograms[key] = hist
        return hist

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    @staticmethod
    def plan_key(
        fingerprint_left: str,
        fingerprint_right: str,
        memory_bytes: int,
        extra: Tuple = (),
    ) -> Tuple:
        return (fingerprint_left, fingerprint_right, memory_bytes) + tuple(extra)

    def get_plan(self, key: Tuple) -> Optional[object]:
        plan = self._plans.get(key)
        if plan is not None:
            self.plan_hits += 1
        return plan

    def put_plan(self, key: Tuple, plan: object) -> None:
        self.plan_misses += 1
        if len(self._plans) >= self.max_plans:
            # Drop the oldest entry (insertion order); a planning cache
            # needs no smarter policy than bounded memory.
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = plan

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._profiles.clear()
        self._histograms.clear()
        self._plans.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "profiles": len(self._profiles),
            "histograms": len(self._histograms),
            "plans": len(self._plans),
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
        }


#: The module-level cache ``spatial_join(method="auto")`` uses by default.
DEFAULT_CACHE = PlannerCache()
