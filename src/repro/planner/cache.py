"""Content-keyed caches for profiles, joint histograms, and whole plans.

The planner's catalog: relations are identified by the strided-sample
fingerprint of :func:`repro.planner.stats.relation_fingerprint`, so the
second join over the same inputs re-uses the cached
:class:`~repro.planner.stats.RelationProfile`, joint-space histograms and
— when the memory budget and knobs match — the complete
:class:`~repro.planner.plan.JoinPlan`, skipping profiling *and*
enumeration (the bench's "second run plans in ~zero time" property).

Thread safety
-------------
``repro serve`` shares one cache across every concurrent request (the
handlers run planner work on an executor thread), so all map access is
serialised by an internal lock.  Profile and histogram *construction*
deliberately happens outside the lock: two racing builders of the same
fingerprint do redundant work once, but neither blocks every other
thread's cache hit for the duration of a 100k-record profiling pass.

Eviction is LRU: a plan-cache hit refreshes the entry's recency, and
``put_plan`` on a full cache drops the least-recently-used plan — an
insertion-order drop would evict the service's hottest query the moment
``max_plans`` one-off queries had passed through.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.core.space import Space
from repro.estimate import GridHistogram
from repro.planner.stats import (
    PROFILE_RESOLUTION,
    RelationProfile,
    relation_fingerprint,
)


class PlannerCache:
    """Profile / histogram / plan cache with hit-miss accounting."""

    def __init__(self, max_plans: int = 128) -> None:
        self.max_plans = max_plans
        self._lock = threading.RLock()
        self._profiles: Dict[str, RelationProfile] = {}
        self._histograms: Dict[Tuple, GridHistogram] = {}
        #: insertion order doubles as recency order (dicts preserve it;
        #: a hit re-inserts its key at the end).
        self._plans: Dict[Tuple, object] = {}
        self.profile_hits = 0
        self.profile_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # ------------------------------------------------------------------
    # profiles and histograms
    # ------------------------------------------------------------------
    def relation_profile(self, kpes: Sequence[Tuple]) -> RelationProfile:
        """Profile *kpes*, reusing the cached profile on a fingerprint hit."""
        fingerprint = relation_fingerprint(kpes)
        with self._lock:
            cached = self._profiles.get(fingerprint)
            if cached is not None:
                self.profile_hits += 1
                return cached
            self.profile_misses += 1
        # Built outside the lock: profiling is the expensive part, and a
        # racing duplicate build is benign (last writer wins).
        profile = RelationProfile.build(kpes, fingerprint)
        with self._lock:
            self._profiles[fingerprint] = profile
        return profile

    def joint_histogram(
        self,
        kpes: Sequence[Tuple],
        fingerprint: str,
        space_key: Tuple[float, float, float, float],
    ) -> GridHistogram:
        """Histogram of *kpes* over a joint space, cached per (relation, space)."""
        key = (fingerprint, space_key, PROFILE_RESOLUTION)
        with self._lock:
            cached = self._histograms.get(key)
        if cached is not None:
            return cached
        hist = GridHistogram.build(
            kpes, Space(*space_key), PROFILE_RESOLUTION
        )
        with self._lock:
            self._histograms[key] = hist
        return hist

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    @staticmethod
    def plan_key(
        fingerprint_left: str,
        fingerprint_right: str,
        memory_bytes: int,
        extra: Tuple = (),
    ) -> Tuple:
        return (fingerprint_left, fingerprint_right, memory_bytes) + tuple(extra)

    def get_plan(self, key: Tuple) -> Optional[object]:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.plan_hits += 1
                # LRU touch: move the key to the recency tail.
                self._plans.pop(key)
                self._plans[key] = plan
        return plan

    def put_plan(self, key: Tuple, plan: object) -> None:
        with self._lock:
            self.plan_misses += 1
            self._plans.pop(key, None)
            while len(self._plans) >= self.max_plans:
                # Evict the least-recently-used entry (recency head).
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()
            self._histograms.clear()
            self._plans.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "profiles": len(self._profiles),
                "histograms": len(self._histograms),
                "plans": len(self._plans),
                "profile_hits": self.profile_hits,
                "profile_misses": self.profile_misses,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
            }


#: The module-level cache ``spatial_join(method="auto")`` uses by default.
DEFAULT_CACHE = PlannerCache()
