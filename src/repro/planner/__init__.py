"""Cost-based join planner: statistics, enumeration, plans, EXPLAIN.

The paper's practical lesson (Sec. 3.3, Figs. 4/12) is that no single
join configuration wins everywhere — the internal algorithm, the
``t``-factor and the partitioning scheme all trade off against dataset
shape.  This subsystem automates the choice:

1. :mod:`repro.planner.stats` profiles the inputs (content-fingerprinted,
   so re-profiling is cached away);
2. :mod:`repro.planner.cost` prices every configuration with the same
   :class:`~repro.io.costmodel.CostModel` the simulator charges;
3. :mod:`repro.planner.enumerate` spans the candidate space;
4. :mod:`repro.planner.plan` picks the winner, executes it through the
   ordinary drivers, and renders EXPLAIN output with estimated-vs-actual
   counters.

Entry points: ``spatial_join(..., method="auto")``, :func:`plan_join`,
and the CLI's ``python -m repro explain LEFT RIGHT``.
"""

from repro.planner.cache import DEFAULT_CACHE, PlannerCache
from repro.planner.cost import (
    CostEstimate,
    estimate_pbsm,
    estimate_rtree,
    estimate_s3j,
    estimate_shj,
    estimate_sssj,
)
from repro.planner.enumerate import (
    DEFAULT_T_GRID,
    PBSM_INTERNALS,
    S3J_STRATEGIES,
    PlanCandidate,
    enumerate_candidates,
)
from repro.planner.plan import JoinPlan, plan_join
from repro.planner.stats import (
    JoinProfile,
    RelationProfile,
    profile_join,
    relation_fingerprint,
)

__all__ = [
    "CostEstimate",
    "DEFAULT_CACHE",
    "DEFAULT_T_GRID",
    "JoinPlan",
    "JoinProfile",
    "PBSM_INTERNALS",
    "PlanCandidate",
    "PlannerCache",
    "RelationProfile",
    "S3J_STRATEGIES",
    "enumerate_candidates",
    "estimate_pbsm",
    "estimate_rtree",
    "estimate_s3j",
    "estimate_shj",
    "estimate_sssj",
    "plan_join",
    "profile_join",
    "relation_fingerprint",
]
