"""Join plans: choose, execute, and EXPLAIN.

:func:`plan_join` profiles the inputs (through the cache), enumerates the
candidate space, and wraps the winner in a :class:`JoinPlan`.  The plan
executes through the ordinary drivers and keeps the estimates alongside
the measured :class:`~repro.core.result.JoinStats`, so
:meth:`JoinPlan.explain` can render estimated-versus-actual counters —
making the estimator's error observable instead of hidden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.result import JoinResult
from repro.io.costmodel import CostModel
from repro.obs.trace import KIND_PLAN, KIND_SECTION, NULL_TRACER
from repro.pbsm import PBSM, ParallelPBSM
from repro.planner.cache import PlannerCache
from repro.planner.enumerate import (
    DEFAULT_T_GRID,
    PlanCandidate,
    enumerate_candidates,
)
from repro.planner.stats import JoinProfile, profile_join
from repro.rtree import RTreeJoin
from repro.s3j import S3J
from repro.shj import SpatialHashJoin
from repro.sssj import SSSJ


def _run_candidate(
    candidate: PlanCandidate,
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    cost_model: Optional[CostModel],
    tracer: Optional[Any] = None,
) -> JoinResult:
    """Execute one candidate through its driver."""
    kwargs = dict(candidate.kwargs)
    if cost_model is not None:
        kwargs["cost_model"] = cost_model
    if tracer is not None:
        kwargs["tracer"] = tracer
    method = candidate.method
    if method == "pbsm":
        if "workers" in kwargs:
            workers = kwargs.pop("workers")
            kwargs.setdefault("executor", "process")
            return ParallelPBSM(memory_bytes, workers, **kwargs).run(
                left, right
            )
        return PBSM(memory_bytes, **kwargs).run(left, right)
    if method == "s3j":
        return S3J(memory_bytes, **kwargs).run(left, right)
    if method == "sssj":
        return SSSJ(memory_bytes, **kwargs).run(left, right)
    if method == "shj":
        return SpatialHashJoin(memory_bytes, **kwargs).run(left, right)
    if method == "rtree":
        return RTreeJoin(**kwargs).run(left, right)
    raise ValueError(f"planner cannot execute method {candidate.method!r}")


@dataclass
class JoinPlan:
    """A chosen plan, its rejected rivals, and (after execution) actuals."""

    chosen: PlanCandidate
    candidates: List[PlanCandidate]
    profile: JoinProfile
    memory_bytes: int
    cost_model: CostModel
    #: wall seconds spent profiling + enumerating (≈ 0 on a cache hit)
    planning_seconds: float = 0.0
    from_cache: bool = False
    #: whether (left, right) are memory-mapped ``.rcd`` relations — the
    #: ingest line of EXPLAIN prices mmap-open vs re-parse from this.
    inputs_mapped: Tuple[bool, bool] = (False, False)
    last_result: Optional[JoinResult] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def execute(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        tracer: Optional[Any] = None,
    ) -> JoinResult:
        """Run the chosen candidate and remember the measured statistics."""
        result = _run_candidate(
            self.chosen,
            left,
            right,
            self.memory_bytes,
            self.cost_model,
            tracer=tracer,
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def explain(self, verbose: bool = False) -> str:
        """Render the plan: inputs, every candidate, and est-vs-actual."""
        jp = self.profile
        est = self.chosen.estimate
        lines: List[str] = []
        lines.append("JOIN PLAN")
        lines.append(
            f"  inputs             {jp.n_left:,} x {jp.n_right:,} KPEs, "
            f"memory {self.memory_bytes:,} bytes"
        )
        lines.append(
            f"  profile            coverage {jp.left.coverage:.3f}/{jp.right.coverage:.3f}, "
            f"skew {jp.left.skew:.1f}/{jp.right.skew:.1f}"
        )
        lines.append(
            f"  est. results       {jp.est_results:,.0f} "
            f"(selectivity {jp.est_selectivity:.3e})"
        )
        source = "plan cache" if self.from_cache else "fresh enumeration"
        lines.append(
            f"  planning           {self.planning_seconds * 1000:.2f} ms ({source})"
        )
        lines.append(f"  ingest             {self._explain_ingest()}")
        lines.append(
            f"  chosen             {self.chosen.describe()} "
            f"-> est {est.total_seconds:.3f}s "
            f"(io {est.io_seconds:.3f} + cpu {est.cpu_seconds:.3f})"
        )
        lines.append("  candidates (by estimated simulated seconds):")
        for rank, candidate in enumerate(self.candidates, start=1):
            marker = "*" if candidate is self.chosen else " "
            lines.append(
                f"   {marker}{rank:>2}. {candidate.describe():<44}"
                f"{candidate.estimate.total_seconds:>10.3f}s"
            )
        if verbose:
            lines.append("  chosen-plan phase estimate:")
            for phase, seconds in sorted(est.breakdown.items()):
                lines.append(f"    {phase:<14} {seconds:>10.3f}s")
        if self.last_result is not None:
            lines.extend(self._explain_actuals())
        return "\n".join(lines)

    def _explain_ingest(self) -> str:
        """Price making each input join-ready: mmap-open vs per-record parse.

        For a mapped (``.rcd``) input the line also shows what a
        re-parse *would* cost — the amortization ``repro build`` buys.
        """
        parts: List[str] = []
        sides = (
            ("left", self.profile.n_left, self.inputs_mapped[0]),
            ("right", self.profile.n_right, self.inputs_mapped[1]),
        )
        for label, n, mapped in sides:
            seconds = self.cost_model.ingest_seconds(n, mapped)
            if mapped:
                parse = self.cost_model.ingest_seconds(n, False)
                parts.append(
                    f"{label} mapped open {seconds:.3f}s "
                    f"(re-parse would be {parse:.3f}s)"
                )
            else:
                parts.append(f"{label} parse {seconds:.3f}s")
        return ", ".join(parts)

    def _explain_actuals(self) -> List[str]:
        stats = self.last_result.stats
        est = self.chosen.estimate
        predicted = est.predicted
        lines = ["  estimated vs. actual (after execution):"]

        def row(label: str, estimate: float, actual: float, fmt: str = ",.0f") -> str:
            ratio = estimate / actual if actual else float("inf") if estimate else 1.0
            return (
                f"    {label:<18}{estimate:>14{fmt}}{actual:>14{fmt}}"
                f"{ratio:>8.2f}x"
            )

        lines.append(f"    {'':<18}{'estimated':>14}{'actual':>14}{'ratio':>8}")
        lines.append(row("results", predicted.get("est_results", 0.0), stats.n_results))
        detected_actual = stats.n_results + stats.duplicates_suppressed + stats.duplicates_sorted_out
        lines.append(
            row("detected pairs", predicted.get("detected_pairs", 0.0), detected_actual)
        )
        if stats.n_partitions:
            lines.append(
                row("partitions", predicted.get("n_partitions", 0.0), stats.n_partitions)
            )
        if stats.records_partitioned:
            lines.append(
                row(
                    "replication",
                    predicted.get("replication_rate", 1.0),
                    stats.replication_rate,
                    ".3f",
                )
            )
        lines.append(row("io units", est.io_units, stats.io_units))
        lines.append(row("sim seconds", est.total_seconds, stats.sim_seconds, ".3f"))
        lines.extend(self._explain_phase_drift())
        return lines

    def _explain_phase_drift(self) -> List[str]:
        """Estimated vs. measured per-phase *shares* of the runtime.

        The estimate's breakdown is in simulated seconds while the
        measurement is wall time (the phase spans the drivers record), so
        the comparable quantity is each phase's share of its total — the
        drift column shows where the cost model misattributes work.
        """
        stats = self.last_result.stats
        est = self.chosen.estimate
        wall = stats.wall_seconds_by_phase
        total_wall = sum(wall.values())
        total_est = sum(est.breakdown.values())
        if not wall or total_wall <= 0.0 or total_est <= 0.0:
            return []
        lines = ["  phase shares, estimated vs. measured wall:"]
        for phase in sorted(set(est.breakdown) | set(wall)):
            est_share = est.breakdown.get(phase, 0.0) / total_est
            wall_share = wall.get(phase, 0.0) / total_wall
            drift = wall_share - est_share
            lines.append(
                f"    {phase:<14} est {est_share:>6.1%}  "
                f"wall {wall_share:>6.1%}  drift {drift:+7.1%}"
            )
        return lines


def plan_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    *,
    cache: Optional[PlannerCache] = None,
    cost_model: Optional[CostModel] = None,
    t_grid: Sequence[float] = DEFAULT_T_GRID,
    methods: Optional[Sequence[str]] = None,
    workers: int = 1,
    tracer: Optional[Any] = None,
) -> JoinPlan:
    """Choose the cheapest plan for joining *left* and *right*.

    With a *cache*, repeated planning of the same inputs and budget
    returns the cached :class:`JoinPlan` without re-profiling.  Planning
    is traced as one ``plan`` span (with ``profile`` and ``enumerate``
    child sections on a fresh enumeration); ``planning_seconds`` is that
    span's wall time.  ``workers > 1`` adds parallel PBSM candidates
    (both transports) to the enumeration.
    """
    if memory_bytes <= 0:
        raise ValueError("memory_bytes must be positive")
    cost = cost_model or CostModel()
    tracer = tracer if tracer is not None else NULL_TRACER
    inputs_mapped = (
        bool(getattr(left, "mapped", False)),
        bool(getattr(right, "mapped", False)),
    )

    with tracer.span("plan", kind=KIND_PLAN) as plan_span:
        key = None
        cached = None
        if cache is not None:
            key = cache.plan_key(
                cache.relation_profile(left).fingerprint,
                cache.relation_profile(right).fingerprint,
                memory_bytes,
                (
                    tuple(t_grid),
                    tuple(methods) if methods is not None else None,
                    workers,
                ),
            )
            cached = cache.get_plan(key)
        plan_span.set_tag("from_cache", cached is not None)
        if cached is None:
            jp = profile_join(left, right, cache, tracer=tracer)
            with tracer.span("enumerate", kind=KIND_SECTION):
                candidates = enumerate_candidates(
                    jp,
                    memory_bytes,
                    cost,
                    t_grid=t_grid,
                    methods=methods,
                    workers=workers,
                )
            if not candidates:
                raise ValueError(
                    "no candidate plans enumerated (check `methods`)"
                )
            plan_span.set_tag("chosen", candidates[0].describe())

    if cached is not None:
        cached.from_cache = True
        cached.planning_seconds = plan_span.wall_seconds
        # Same content can arrive mapped on one call and in-memory on
        # the next (identical fingerprints); keep the ingest line honest.
        cached.inputs_mapped = inputs_mapped
        return cached
    plan = JoinPlan(
        chosen=candidates[0],
        candidates=candidates,
        profile=jp,
        memory_bytes=memory_bytes,
        cost_model=cost,
        planning_seconds=plan_span.wall_seconds,
        inputs_mapped=inputs_mapped,
    )
    if cache is not None:
        cache.put_plan(key, plan)
    return plan
