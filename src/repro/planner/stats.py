"""Relation and join profiles: the statistics the planner plans from.

Section 3.2.3 of the paper notes that partition-count planning needs
"statistics about the intermediate results of operators".  This module
derives those statistics once per relation and caches them by *content
fingerprint*, so repeated joins over the same relations skip the
profiling pass entirely (the planner's analogue of a DBMS catalog):

* :class:`RelationProfile` — cardinality, coverage, average extents and a
  density-skew estimate from a coarse :class:`~repro.estimate.GridHistogram`;
* :class:`JoinProfile` — two profiles plus joint-space histograms and the
  Minkowski-sum estimate of the result cardinality (Table 2's selectivity,
  predicted instead of measured).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from repro.core.space import Space
from repro.datasets.stats import average_area, average_edges, coverage, density_skew
from repro.estimate import GridHistogram
from repro.obs.trace import KIND_SECTION, NULL_TRACER

#: Histogram resolution used for profiling.  Coarse on purpose: profiling
#: must stay a vanishing fraction of join time (32 x 32 = 1024 cells).
PROFILE_RESOLUTION = 32

#: Records sampled (evenly spaced) for the content fingerprint.
_FINGERPRINT_SAMPLE = 64

#: Records sampled per relation for the pair-sampling selectivity estimate.
_SELECTIVITY_SAMPLE = 512

#: Minimum sampled intersecting pairs before the sample estimate is
#: trusted over the histogram one (below this, sampling noise dominates).
_MIN_SAMPLED_PAIRS = 8


def _strided_sample(kpes: Sequence[Tuple], size: int) -> Sequence[Tuple]:
    """Every ``n/size``-th record — deterministic, order-insensitive enough."""
    n = len(kpes)
    if n <= size:
        return kpes
    step = max(1, n // size)
    return kpes[::step][:size]


def relation_fingerprint(kpes: Sequence[Tuple]) -> str:
    """A content key for a relation: cardinality plus a strided sample.

    Hashing every record would make cache lookups as expensive as
    profiling itself; hashing cardinality plus an evenly-spaced sample of
    records (including both ends) distinguishes relations reliably while
    staying O(1)-ish.  Collisions require two relations of identical size
    that agree on all 64 sampled records — accepted for a planning cache,
    where a stale hit costs a suboptimal plan, never a wrong result.

    Mapped relations (``.rcd`` files, :mod:`repro.kernels.mmapstore`)
    carry the fingerprint computed once at build time — returning it
    directly makes repeated opens hit the profile and plan caches
    without touching a single record.
    """
    stored = getattr(kpes, "fingerprint", None)
    if isinstance(stored, str) and stored:
        return stored
    n = len(kpes)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(struct.pack("<q", n))
    if n:
        step = max(1, n // _FINGERPRINT_SAMPLE)
        for index in range(0, n, step):
            k = kpes[index]
            digest.update(struct.pack("<q4d", int(k[0]), k[1], k[2], k[3], k[4]))
        last = kpes[-1]
        digest.update(
            struct.pack("<q4d", int(last[0]), last[1], last[2], last[3], last[4])
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class RelationProfile:
    """Compact statistics of one relation, the planner's unit of input.

    ``skew`` is the ratio of the densest histogram cell to the mean
    occupied cell (1.0 = perfectly uniform); it feeds the cost model's
    largest-partition correction.
    """

    fingerprint: str
    n: int
    coverage: float
    avg_width: float
    avg_height: float
    #: true mean area E[w*h] — exceeds avg_width*avg_height on
    #: heavy-tailed extent distributions (mixed-scale data), which is
    #: exactly when replication estimates need the difference.
    avg_area: float
    skew: float
    space: Tuple[float, float, float, float]

    @classmethod
    def build(cls, kpes: Sequence[Tuple], fingerprint: Optional[str] = None) -> "RelationProfile":
        """Profile a relation (one pass for extents, one for the histogram)."""
        if fingerprint is None:
            fingerprint = relation_fingerprint(kpes)
        n = len(kpes)
        if n == 0:
            return cls(fingerprint, 0, 0.0, 0.0, 0.0, 0.0, 1.0, (0.0, 0.0, 1.0, 1.0))
        space = Space.of(kpes)
        avg_w, avg_h = average_edges(kpes)
        hist = GridHistogram.build(kpes, space, PROFILE_RESOLUTION)
        return cls(
            fingerprint=fingerprint,
            n=n,
            coverage=coverage(kpes),
            avg_width=avg_w,
            avg_height=avg_h,
            avg_area=average_area(kpes),
            skew=density_skew(hist.counts),
            space=(space.xl, space.yl, space.xh, space.yh),
        )


@dataclass(frozen=True)
class JoinProfile:
    """Statistics of one join: both sides over their *joint* space.

    The histograms are rebuilt over the joint space (profiles alone are
    per-relation and may disagree on extent), which is what
    :meth:`~repro.estimate.GridHistogram.estimate_join_results` requires.
    """

    left: RelationProfile
    right: RelationProfile
    space: Tuple[float, float, float, float]
    est_results: float
    #: wall seconds spent profiling (0.0 when every part was cached)
    profiling_seconds: float = 0.0
    hist_left: GridHistogram = field(repr=False, compare=False, default=None)
    hist_right: GridHistogram = field(repr=False, compare=False, default=None)
    #: intersecting pairs found among the strided samples — the cost
    #: model replays replication per pair on these, which is the only
    #: way to price heavy-tailed extents (means hide the tail).
    sample_pairs: Tuple = field(repr=False, compare=False, default=())

    @property
    def n_left(self) -> int:
        return self.left.n

    @property
    def n_right(self) -> int:
        return self.right.n

    @property
    def est_selectivity(self) -> float:
        denom = self.left.n * self.right.n
        return self.est_results / denom if denom else 0.0


def profile_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    cache: Optional["object"] = None,
    tracer: Optional[Any] = None,
) -> JoinProfile:
    """Build (or fetch from *cache*) the :class:`JoinProfile` of a join.

    ``cache`` is duck-typed (see :class:`repro.planner.cache.PlannerCache`):
    it must offer ``relation_profile(kpes)`` and
    ``joint_histogram(kpes, fingerprint, space)``.  The profiling pass is
    timed by a ``profile`` span on *tracer*; ``profiling_seconds`` is that
    span's wall time.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("profile", kind=KIND_SECTION) as sp:
        jp_kwargs = _profile_join_inner(left, right, cache)
    return JoinProfile(profiling_seconds=sp.wall_seconds, **jp_kwargs)


def _profile_join_inner(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    cache: Optional["object"],
) -> dict:
    if cache is not None:
        prof_l = cache.relation_profile(left)
        prof_r = cache.relation_profile(right)
    else:
        prof_l = RelationProfile.build(left)
        prof_r = RelationProfile.build(right)

    space = Space.of(left, right)
    key = (space.xl, space.yl, space.xh, space.yh)
    if cache is not None:
        hist_l = cache.joint_histogram(left, prof_l.fingerprint, key)
        hist_r = cache.joint_histogram(right, prof_r.fingerprint, key)
    else:
        hist_l = GridHistogram.build(left, space, PROFILE_RESOLUTION)
        hist_r = GridHistogram.build(right, space, PROFILE_RESOLUTION)

    # Result cardinality: pair-sampling first, histogram as fallback.
    # The centre-point histogram confines each rectangle to one cell, so
    # on heavy-tailed extents (a few huge rectangles intersecting
    # everything that crosses their span) it undercounts results by an
    # order of magnitude; the sample sees those rectangles directly.
    sample_l = _strided_sample(left, _SELECTIVITY_SAMPLE)
    sample_r = _strided_sample(right, _SELECTIVITY_SAMPLE)
    pairs = tuple(
        (r, s)
        for r in sample_l
        for s in sample_r
        if r[1] <= s[3] and s[1] <= r[3] and r[2] <= s[4] and s[2] <= r[4]
    )
    if len(pairs) >= _MIN_SAMPLED_PAIRS:
        scale = (prof_l.n * prof_r.n) / (len(sample_l) * len(sample_r))
        est = len(pairs) * scale
    else:
        est = hist_l.estimate_join_results(hist_r)
    return dict(
        left=prof_l,
        right=prof_r,
        space=key,
        est_results=est,
        hist_left=hist_l,
        hist_right=hist_r,
        sample_pairs=pairs,
    )
