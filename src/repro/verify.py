"""Verification utilities: cross-check any join result against ground
truth.

Downstream users extending the library (new internal algorithms, new
partitioning schemes) can validate their changes with one call; the test
suite builds on the same helpers.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.result import JoinResult
from repro.internal import brute_force_pairs


class VerificationError(AssertionError):
    """A join result disagrees with ground truth."""


def verify_result(
    result: JoinResult,
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    check_duplicates: bool = True,
) -> None:
    """Raise :class:`VerificationError` unless *result* is exactly the
    brute-force filter-step answer, duplicate-free.

    Quadratic — intended for test-sized inputs.
    """
    truth = set(brute_force_pairs(left, right))
    got = result.pair_set()
    if got != truth:
        missing = list(truth - got)[:5]
        extra = list(got - truth)[:5]
        raise VerificationError(
            f"{result.stats.algorithm}: result set mismatch "
            f"({len(got)} vs {len(truth)} pairs; "
            f"missing e.g. {missing}, extra e.g. {extra})"
        )
    if check_duplicates and result.has_duplicates():
        seen = set()
        duplicate = next(p for p in result.pairs if p in seen or seen.add(p))
        raise VerificationError(
            f"{result.stats.algorithm}: duplicate pair {duplicate} in the "
            "response set"
        )


def verify_driver(driver, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
    """Run *driver* and verify its result; returns the result on success."""
    result = driver.run(left, right)
    verify_result(result, left, right)
    return result


def results_consistent(*results: JoinResult) -> bool:
    """True iff all results carry the identical pair set."""
    if not results:
        return True
    reference = results[0].pair_set()
    return all(r.pair_set() == reference for r in results[1:])
