"""Pipelined refinement as an operator — multi-step processing [BKSS 94].

The paper argues RPM lets "kernel approximations ... produce the first
results already in the filter step" and keeps the join pipelined.  This
operator is that argument as a query plan node: it consumes candidate
pairs from a (pipelined) join operator and refines each immediately —
kernel test first, exact geometry only when needed — so confirmed results
stream out of the *whole* filter+refinement pipeline.

Placed above original PBSM (``dedup="sort"``) the same operator degrades
to fully blocking, since its input does.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.operators.base import Operator
from repro.refine.refine import RefinementStats, _kernels_intersect
from repro.refine.store import GeometryStore


class RefineOp(Operator):
    """Refine candidate pairs from a child operator, one at a time."""

    def __init__(
        self,
        child: Operator,
        store_left: GeometryStore,
        store_right: GeometryStore,
        use_kernels: bool = True,
    ):
        self._child = child
        self._store_left = store_left
        self._store_right = store_right
        self._use_kernels = use_kernels
        self._kernel_cache = {}
        self.stats = RefinementStats()

    def open(self) -> None:
        self.stats = RefinementStats()
        self._kernel_cache = {}
        self._child.open()

    def next(self) -> Optional[Tuple[int, int]]:
        while True:
            pair = self._child.next()
            if pair is None:
                return None
            self.stats.candidates += 1
            oid_left, oid_right = pair
            geom_left = self._store_left.fetch(oid_left)
            geom_right = self._store_right.fetch(oid_right)
            if self._use_kernels:
                kernel_left = self._kernel(0, oid_left, geom_left)
                kernel_right = self._kernel(1, oid_right, geom_right)
                if (
                    kernel_left is not None
                    and kernel_right is not None
                    and _kernels_intersect(kernel_left, kernel_right)
                ):
                    self.stats.kernel_hits += 1
                    self.stats.confirmed += 1
                    return pair
            self.stats.exact_tests += 1
            if geom_left.intersects(geom_right):
                self.stats.confirmed += 1
                return pair

    def close(self) -> None:
        self._child.close()

    def _kernel(self, side: int, oid: int, geometry):
        key = (side, oid)
        if key not in self._kernel_cache:
            self._kernel_cache[key] = geometry.kernel()
        return self._kernel_cache[key]
