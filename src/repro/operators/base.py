"""Open-next-close operators (Graefe's iterator model).

Section 2 of the paper assumes the spatial join runs inside an operator
tree whose nodes satisfy the open-next-close interface [Gra 93], and a
recurring argument for the Reference Point Method is that it keeps the
join *pipelined*: results flow to the parent operator during the join
phase instead of after a blocking final sort.  This package makes that
argument executable — the pipelining example measures time-to-first-result
through a small operator tree.
"""

from __future__ import annotations

from typing import Iterator, List


class Operator:
    """Base class: an iterator-style query operator."""

    def open(self) -> None:
        """Prepare for producing tuples (default: nothing to do)."""

    def next(self):
        """Return the next tuple, or None when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: nothing to do)."""

    # Pythonic sugar: operators iterate.
    def __iter__(self) -> Iterator:
        self.open()
        try:
            while True:
                item = self.next()
                if item is None:
                    return
                yield item
        finally:
            self.close()


class ScanOp(Operator):
    """Produce the tuples of an in-memory relation."""

    def __init__(self, records):
        self._records = records
        self._position = 0

    def open(self) -> None:
        self._position = 0

    def next(self):
        if self._position >= len(self._records):
            return None
        record = self._records[self._position]
        self._position += 1
        return record


class FilterOp(Operator):
    """Keep only tuples satisfying a predicate."""

    def __init__(self, child: Operator, predicate):
        self._child = child
        self._predicate = predicate

    def open(self) -> None:
        self._child.open()

    def next(self):
        while True:
            item = self._child.next()
            if item is None:
                return None
            if self._predicate(item):
                return item

    def close(self) -> None:
        self._child.close()


class LimitOp(Operator):
    """Stop after *limit* tuples — the classic pipelining beneficiary."""

    def __init__(self, child: Operator, limit: int):
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self._child = child
        self._limit = limit
        self._produced = 0

    def open(self) -> None:
        self._produced = 0
        self._child.open()

    def next(self):
        if self._produced >= self._limit:
            return None
        item = self._child.next()
        if item is None:
            return None
        self._produced += 1
        return item

    def close(self) -> None:
        self._child.close()


class ProjectOp(Operator):
    """Apply a function to each tuple (the relational projection)."""

    def __init__(self, child: Operator, function):
        self._child = child
        self._function = function

    def open(self) -> None:
        self._child.open()

    def next(self):
        item = self._child.next()
        if item is None:
            return None
        return self._function(item)

    def close(self) -> None:
        self._child.close()


class DistinctOp(Operator):
    """Drop tuples already produced (hash-based, order preserving)."""

    def __init__(self, child: Operator):
        self._child = child
        self._seen = set()

    def open(self) -> None:
        self._seen = set()
        self._child.open()

    def next(self):
        while True:
            item = self._child.next()
            if item is None:
                return None
            if item not in self._seen:
                self._seen.add(item)
                return item

    def close(self) -> None:
        self._child.close()


class UnionAllOp(Operator):
    """Concatenate several children (bag union)."""

    def __init__(self, *children: Operator):
        self._children = list(children)
        self._index = 0

    def open(self) -> None:
        self._index = 0
        for child in self._children:
            child.open()

    def next(self):
        while self._index < len(self._children):
            item = self._children[self._index].next()
            if item is not None:
                return item
            self._index += 1
        return None

    def close(self) -> None:
        for child in self._children:
            child.close()


class MaterializeOp(Operator):
    """Fully buffer the child on open (a pipeline breaker, by design).

    Wrapping a pipelined join in MaterializeOp reproduces exactly the
    blocking behaviour the paper criticises — useful in tests and the
    pipelining example as the "what if we materialised anyway" control.
    """

    def __init__(self, child: Operator):
        self._child = child
        self._buffer = []
        self._position = 0

    def open(self) -> None:
        self._buffer = list(self._child)
        self._position = 0

    def next(self):
        if self._position >= len(self._buffer):
            return None
        item = self._buffer[self._position]
        self._position += 1
        return item


class CollectOp(Operator):
    """Materialise a child operator's output (for tests)."""

    def __init__(self, child: Operator):
        self._child = child
        self.collected: List = []

    def open(self) -> None:
        self.collected = []
        self._child.open()

    def next(self):
        item = self._child.next()
        if item is not None:
            self.collected.append(item)
        return item

    def close(self) -> None:
        self._child.close()
