"""Multiway spatial joins by cascading binary joins.

The paper defines the spatial join over "two (or more) sets of spatial
objects"; this module provides the *or more* part by cascading any binary
driver (PBSM by default) through the operator layer.  Two predicates are
supported:

* ``"chain"`` — consecutive relations must intersect:
  ``r1 ∩ r2 ≠ ∅  and  r2 ∩ r3 ≠ ∅  and ...``.  The intermediate KPE
  carries the MBR of the *last* relation's object.
* ``"common"`` — all objects share a common point:
  ``r1 ∩ r2 ∩ ... ∩ rn ≠ ∅``.  The intermediate KPE carries the running
  intersection MBR.  For axis-parallel rectangles this is equivalent to
  *pairwise* intersection of all members (boxes have Helly number 2), so
  the cascade loses no answers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.rect import KPE
from repro.pbsm.join import PBSM

PREDICATES = ("chain", "common")


def multiway_join(
    relations: Sequence[Sequence[Tuple]],
    memory_bytes: int,
    *,
    predicate: str = "common",
    driver_factory: Optional[Callable] = None,
) -> List[Tuple[int, ...]]:
    """Join *n* relations; returns tuples of oids, one per relation.

    ``driver_factory()`` must yield a fresh binary join driver per stage
    (default: PBSM with RPM and the trie sweep).
    """
    if predicate not in PREDICATES:
        raise ValueError(f"predicate must be one of {PREDICATES}")
    if len(relations) < 2:
        raise ValueError("a multiway join needs at least two relations")
    if any(len(rel) == 0 for rel in relations):
        return []
    if driver_factory is None:
        def driver_factory():
            return PBSM(memory_bytes, internal="sweep_trie", dedup="rpm")

    # tuples[i] is the oid tuple represented by intermediate KPE oid i.
    tuples: List[Tuple[int, ...]] = [(k[0],) for k in relations[0]]
    intermediate: List[KPE] = [
        KPE(i, k[1], k[2], k[3], k[4]) for i, k in enumerate(relations[0])
    ]

    for relation in relations[1:]:
        right_by_oid = {k[0]: k for k in relation}
        result = driver_factory().run(intermediate, relation)
        next_tuples: List[Tuple[int, ...]] = []
        next_kpes: List[KPE] = []
        for inter_oid, right_oid in result.pairs:
            base = tuples[inter_oid]
            right = right_by_oid[right_oid]
            if predicate == "chain":
                xl, yl, xh, yh = right[1], right[2], right[3], right[4]
            else:
                carried = intermediate[inter_oid]
                xl = max(carried.xl, right[1])
                yl = max(carried.yl, right[2])
                xh = min(carried.xh, right[3])
                yh = min(carried.yh, right[4])
                # the binary join guarantees a non-empty intersection
            new_oid = len(next_tuples)
            next_tuples.append(base + (right_oid,))
            next_kpes.append(KPE(new_oid, xl, yl, xh, yh))
        tuples = next_tuples
        intermediate = next_kpes
        if not intermediate:
            return []
        by_oid = right_by_oid

    return tuples


def brute_force_multiway(
    relations: Sequence[Sequence[Tuple]],
    predicate: str = "common",
) -> List[Tuple[int, ...]]:
    """Quadratic reference implementation for tests."""
    if predicate not in PREDICATES:
        raise ValueError(f"predicate must be one of {PREDICATES}")
    results: List[Tuple[int, ...]] = []

    def recurse(index: int, chosen: List[Tuple], oids: Tuple[int, ...]):
        if index == len(relations):
            results.append(oids)
            return
        for k in relations[index]:
            if predicate == "chain":
                previous = chosen[-1]
                ok = (
                    previous[1] <= k[3]
                    and k[1] <= previous[3]
                    and previous[2] <= k[4]
                    and k[2] <= previous[4]
                )
            else:
                xl = max(max(c[1] for c in chosen), k[1])
                yl = max(max(c[2] for c in chosen), k[2])
                xh = min(min(c[3] for c in chosen), k[3])
                yh = min(min(c[4] for c in chosen), k[4])
                ok = xl <= xh and yl <= yh
            if ok:
                recurse(index + 1, chosen + [k], oids + (k[0],))

    if not relations or any(len(rel) == 0 for rel in relations):
        return []
    for k in relations[0]:
        recurse(1, [k], (k[0],))
    return results
