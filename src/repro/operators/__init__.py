"""Operator-tree substrate: open-next-close operators and the join node."""

from repro.operators.base import (
    CollectOp,
    DistinctOp,
    FilterOp,
    LimitOp,
    MaterializeOp,
    Operator,
    ProjectOp,
    ScanOp,
    UnionAllOp,
)
from repro.operators.joinop import SpatialJoinOp, time_to_first_result
from repro.operators.refineop import RefineOp
from repro.operators.multiway import (
    PREDICATES,
    brute_force_multiway,
    multiway_join,
)

__all__ = [
    "CollectOp",
    "DistinctOp",
    "FilterOp",
    "LimitOp",
    "MaterializeOp",
    "Operator",
    "PREDICATES",
    "ProjectOp",
    "RefineOp",
    "ScanOp",
    "SpatialJoinOp",
    "UnionAllOp",
    "brute_force_multiway",
    "multiway_join",
    "time_to_first_result",
]
