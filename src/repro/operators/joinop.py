"""The spatial join as a pipeline operator.

Wraps any join driver exposing ``iter_pairs(left, right, stats)`` (PBSM,
S3J, SSSJ) behind the open-next-close interface.  Whether the operator
actually *pipelines* depends on the wrapped algorithm:

* PBSM with RPM and S3J emit pairs partition by partition during their
  join phase — the first result arrives after partitioning (plus sorting,
  for S3J) but long before the join completes;
* original PBSM (``dedup="sort"``) and SSSJ cannot emit anything until a
  blocking phase (final sort / input sorting) has finished.

``time_to_first_result`` quantifies the difference.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional, Sequence, Tuple

from repro.core.result import JoinStats
from repro.operators.base import Operator


class SpatialJoinOp(Operator):
    """A spatial join node in an operator tree."""

    def __init__(self, driver, left: Sequence[Tuple], right: Sequence[Tuple]):
        self._driver = driver
        self._left = left
        self._right = right
        self._iterator: Optional[Iterator[Tuple[int, int]]] = None
        self.stats: Optional[JoinStats] = None

    def open(self) -> None:
        self.stats = JoinStats(algorithm=type(self._driver).__name__)
        self._iterator = self._driver.iter_pairs(self._left, self._right, self.stats)

    def next(self) -> Optional[Tuple[int, int]]:
        if self._iterator is None:
            raise RuntimeError("next() before open()")
        return next(self._iterator, None)

    def close(self) -> None:
        self._iterator = None


def time_to_first_result(
    driver, left: Sequence[Tuple], right: Sequence[Tuple]
) -> Tuple[float, float, int]:
    """Wall seconds until the first and the last result of a join driver.

    Returns ``(first_seconds, total_seconds, n_results)``.  This is the
    measurable form of the paper's pipelining argument: drivers with a
    blocking phase have ``first ~= total``, pipelined drivers have
    ``first << total``.
    """
    op = SpatialJoinOp(driver, left, right)
    start = time.perf_counter()
    op.open()
    first_time = None
    count = 0
    while True:
        pair = op.next()
        if pair is None:
            break
        if first_time is None:
            first_time = time.perf_counter() - start
        count += 1
    total = time.perf_counter() - start
    op.close()
    if first_time is None:
        first_time = total
    return first_time, total, count
