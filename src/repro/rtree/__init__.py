"""R-tree substrate and the index-based join classes.

Covers two of the paper's three availability-of-index classes: the
synchronized R-tree join [BKS 93] (index on both relations) and the index
nested-loop join (index on one relation, the class [LR 94]'s seeded trees
target).
"""

from repro.rtree.inlj import IndexNestedLoopJoin, index_nested_loop_join
from repro.rtree.join import RTreeJoin, rtree_join
from repro.rtree.seeded import SeededTreeJoin, seeded_tree_join
from repro.rtree.tree import RTree, RTreeNode

__all__ = [
    "IndexNestedLoopJoin",
    "RTree",
    "RTreeJoin",
    "RTreeNode",
    "SeededTreeJoin",
    "index_nested_loop_join",
    "rtree_join",
    "seeded_tree_join",
]
