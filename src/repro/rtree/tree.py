"""R-trees: the index substrate of the paper's "index on both relations"
related-work class.

[BKS 93] assumes both inputs are indexed by R*-trees and joins them by a
synchronized traversal.  This package provides that comparison class so
the library covers all three availability-of-index classes the paper's
introduction enumerates.

The tree here is a classic R-tree with two construction paths:

* **STR bulk loading** (sort-tile-recursive) — the natural choice when an
  index is built solely to execute a join;
* **one-by-one insertion** with the least-enlargement descent and a
  midpoint-split — enough to model a pre-existing, incrementally built
  index.

Nodes hold at most ``fanout`` entries; a node is one disk page in the I/O
accounting of :class:`repro.rtree.join.RTreeJoin`.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple


class RTreeNode:
    """One R-tree node: an MBR over child nodes or data entries."""

    __slots__ = ("is_leaf", "entries", "xl", "yl", "xh", "yh", "page_id")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        #: leaf: KPE tuples; inner: RTreeNode children
        self.entries: List = []
        self.xl = math.inf
        self.yl = math.inf
        self.xh = -math.inf
        self.yh = -math.inf
        self.page_id = -1

    def mbr(self) -> Tuple[float, float, float, float]:
        return (self.xl, self.yl, self.xh, self.yh)

    def extend(self, xl: float, yl: float, xh: float, yh: float) -> None:
        if xl < self.xl:
            self.xl = xl
        if yl < self.yl:
            self.yl = yl
        if xh > self.xh:
            self.xh = xh
        if yh > self.yh:
            self.yh = yh

    def recompute_mbr(self) -> None:
        self.xl = self.yl = math.inf
        self.xh = self.yh = -math.inf
        if self.is_leaf:
            for k in self.entries:
                self.extend(k[1], k[2], k[3], k[4])
        else:
            for child in self.entries:
                self.extend(child.xl, child.yl, child.xh, child.yh)


class RTree:
    """An R-tree over KPEs with STR bulk loading and dynamic insertion."""

    def __init__(self, fanout: int = 64):
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.fanout = fanout
        self.root: RTreeNode = RTreeNode(is_leaf=True)
        self.size = 0
        self._next_page = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, kpes: Sequence[Tuple], fanout: int = 64) -> "RTree":
        """Sort-tile-recursive bulk loading.

        Sorts by x into vertical slabs, each slab by y, packs leaves of
        ``fanout`` entries, then packs parent levels the same way.
        """
        tree = cls(fanout)
        if not kpes:
            return tree
        tree.size = len(kpes)

        def centre_x(k):
            return k[1] + k[3]

        def centre_y(k):
            return k[2] + k[4]

        n_leaves = -(-len(kpes) // fanout)
        n_slabs = max(1, math.ceil(math.sqrt(n_leaves)))
        per_slab = -(-len(kpes) // n_slabs)
        by_x = sorted(kpes, key=centre_x)
        leaves: List[RTreeNode] = []
        for slab_start in range(0, len(by_x), per_slab):
            slab = sorted(by_x[slab_start : slab_start + per_slab], key=centre_y)
            for start in range(0, len(slab), fanout):
                leaf = RTreeNode(is_leaf=True)
                leaf.entries = slab[start : start + fanout]
                leaf.recompute_mbr()
                leaves.append(leaf)
        tree.root = tree._pack_upward(leaves)
        tree._assign_page_ids()
        return tree

    def _pack_upward(self, nodes: List[RTreeNode]) -> RTreeNode:
        while len(nodes) > 1:
            parents: List[RTreeNode] = []
            ordered = sorted(nodes, key=lambda n: (n.xl + n.xh, n.yl + n.yh))
            for start in range(0, len(ordered), self.fanout):
                parent = RTreeNode(is_leaf=False)
                parent.entries = ordered[start : start + self.fanout]
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    def insert(self, kpe: Tuple) -> None:
        """Insert one KPE (least-enlargement descent, midpoint split)."""
        self.size += 1
        split = self._insert_into(self.root, kpe)
        if split is not None:
            new_root = RTreeNode(is_leaf=False)
            new_root.entries = [self.root, split]
            new_root.recompute_mbr()
            self.root = new_root
        self._next_page = 0  # page ids are stale after mutation
        self._assign_page_ids()

    def _insert_into(self, node: RTreeNode, kpe: Tuple) -> Optional[RTreeNode]:
        node.extend(kpe[1], kpe[2], kpe[3], kpe[4])
        if node.is_leaf:
            node.entries.append(kpe)
            if len(node.entries) > self.fanout:
                return self._split(node)
            return None
        child = self._choose_child(node, kpe)
        split = self._insert_into(child, kpe)
        if split is not None:
            node.entries.append(split)
            if len(node.entries) > self.fanout:
                return self._split(node)
        return None

    @staticmethod
    def _choose_child(node: RTreeNode, kpe: Tuple) -> RTreeNode:
        best = None
        best_cost = math.inf
        for child in node.entries:
            xl = kpe[1] if kpe[1] < child.xl else child.xl
            yl = kpe[2] if kpe[2] < child.yl else child.yl
            xh = kpe[3] if kpe[3] > child.xh else child.xh
            yh = kpe[4] if kpe[4] > child.yh else child.yh
            enlargement = (xh - xl) * (yh - yl) - (child.xh - child.xl) * (
                child.yh - child.yl
            )
            if enlargement < best_cost:
                best_cost = enlargement
                best = child
        return best

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Split an overfull node along its longer MBR axis at the median."""
        if node.is_leaf:
            key = (
                (lambda k: k[1] + k[3])
                if (node.xh - node.xl) >= (node.yh - node.yl)
                else (lambda k: k[2] + k[4])
            )
        else:
            key = (
                (lambda c: c.xl + c.xh)
                if (node.xh - node.xl) >= (node.yh - node.yl)
                else (lambda c: c.yl + c.yh)
            )
        ordered = sorted(node.entries, key=key)
        half = len(ordered) // 2
        sibling = RTreeNode(is_leaf=node.is_leaf)
        node.entries = ordered[:half]
        sibling.entries = ordered[half:]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _assign_page_ids(self) -> None:
        counter = 0
        for node in self.iter_nodes():
            node.page_id = counter
            counter += 1
        self._next_page = counter

    @property
    def node_count(self) -> int:
        return self._next_page if self._next_page else sum(1 for _ in self.iter_nodes())

    def iter_nodes(self) -> Iterator[RTreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.entries)

    def iter_kpes(self) -> Iterator[Tuple]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def height(self) -> int:
        height = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            height += 1
        return height

    def search(self, xl: float, yl: float, xh: float, yh: float) -> List[Tuple]:
        """Window query: all KPEs intersecting the closed rectangle."""
        found = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.xl > xh or xl > node.xh or node.yl > yh or yl > node.yh:
                continue
            if node.is_leaf:
                for k in node.entries:
                    if k[1] <= xh and xl <= k[3] and k[2] <= yh and yl <= k[4]:
                        found.append(k)
            else:
                stack.extend(node.entries)
        return found
