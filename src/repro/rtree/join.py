"""Synchronized R-tree join [BKS 93] — the "index on both relations"
comparison class.

Pairs of nodes whose MBRs intersect are traversed in tandem; at the
leaves, entries are joined with a local plane sweep (the same algorithm
PBSM borrowed for its partitions).  Trees of different heights are
handled by joining the shallower tree's leaf against the deeper subtree
("window" descent).  No replication, hence no duplicates.

I/O model: when ``prebuilt`` trees are given, the build is free (the
paper's premise: indices already exist); otherwise bulk loading charges
one sequential write of all nodes.  During the join every node visit
charges one page read — matched node pairs drive the cost, which is why
this method is hard to beat when the indices come for free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_BUILD, PHASE_JOIN
from repro.core.result import JoinResult, JoinStats
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.obs.trace import KIND_RUN, NULL_TRACER
from repro.rtree.tree import RTree, RTreeNode

#: Node (page) size drives pages-per-node; one node = one page.
_NODE_PAGES = 1


class RTreeJoin:
    """Spatial join via synchronized traversal of two R-trees."""

    def __init__(
        self,
        fanout: int = 64,
        *,
        internal: str = "sweep_list",
        prebuilt: bool = False,
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        self.fanout = fanout
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.prebuilt = prebuilt
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        tree_left: Optional[RTree] = None,
        tree_right: Optional[RTree] = None,
    ) -> JoinResult:
        """Join two relations (or two already-built trees)."""
        stats = JoinStats(
            algorithm=f"RTreeJoin({self.internal_name})",
            n_left=len(left),
            n_right=len(right),
        )
        disk = SimulatedDisk(self.cost_model)
        cpu = {PHASE_BUILD: CpuCounters(), PHASE_JOIN: CpuCounters()}
        pairs: List[Tuple[int, int]] = []

        if left and right:
            tracer = self.tracer
            with tracer.span(
                "rtree_join",
                kind=KIND_RUN,
                internal=self.internal_name,
                prebuilt=self.prebuilt,
            ):
                with tracer.span(
                    PHASE_BUILD, cpu=cpu[PHASE_BUILD], disk=disk
                ) as sp:
                    with disk.phase(PHASE_BUILD):
                        if tree_left is None:
                            tree_left = RTree.bulk_load(left, self.fanout)
                            if not self.prebuilt:
                                disk.charge_write(
                                    tree_left.node_count * _NODE_PAGES, 1
                                )
                        if tree_right is None:
                            tree_right = RTree.bulk_load(right, self.fanout)
                            if not self.prebuilt:
                                disk.charge_write(
                                    tree_right.node_count * _NODE_PAGES, 1
                                )
                stats.wall_seconds_by_phase[PHASE_BUILD] = sp.wall_seconds

                with tracer.span(
                    PHASE_JOIN, cpu=cpu[PHASE_JOIN], disk=disk
                ) as sp:
                    with disk.phase(PHASE_JOIN):
                        self._join_nodes(
                            tree_left.root,
                            tree_right.root,
                            pairs,
                            cpu[PHASE_JOIN],
                            disk,
                        )
                stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

        stats.n_results = len(pairs)
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.sim_io_seconds = self.cost_model.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = sum(
            self.cost_model.cpu_seconds(c) for c in cpu.values()
        )
        stats.cpu_by_phase = {p: c.as_dict() for p, c in cpu.items()}
        units = stats.io_units_by_phase
        stats.sim_seconds_by_phase = {
            phase: self.cost_model.cpu_seconds(counters)
            + self.cost_model.io_seconds(units.get(phase, 0.0))
            for phase, counters in cpu.items()
        }
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _join_nodes(
        self,
        node_left: RTreeNode,
        node_right: RTreeNode,
        pairs: List[Tuple[int, int]],
        cpu: CpuCounters,
        disk: SimulatedDisk,
    ) -> None:
        disk.charge_read(2 * _NODE_PAGES, 2)
        stack = [(node_left, node_right)]
        visited = {id(node_left), id(node_right)}
        while stack:
            nl, nr = stack.pop()
            if nl.is_leaf and nr.is_leaf:
                self.internal(
                    nl.entries,
                    nr.entries,
                    lambda r, s: pairs.append((r[0], s[0])),
                    cpu,
                )
                continue
            if nl.is_leaf:
                # Descend the deeper right subtree against the left leaf.
                for child in nr.entries:
                    cpu.intersection_tests += 1
                    if _overlaps(nl, child):
                        self._charge_visit(child, visited, disk)
                        stack.append((nl, child))
                continue
            if nr.is_leaf:
                for child in nl.entries:
                    cpu.intersection_tests += 1
                    if _overlaps(child, nr):
                        self._charge_visit(child, visited, disk)
                        stack.append((child, nr))
                continue
            # Both inner: pair overlapping children (the BKS93 step, with
            # a restriction of the search to the joint intersection MBR).
            ixl = max(nl.xl, nr.xl)
            iyl = max(nl.yl, nr.yl)
            ixh = min(nl.xh, nr.xh)
            iyh = min(nl.yh, nr.yh)
            left_children = [
                c
                for c in nl.entries
                if c.xl <= ixh and ixl <= c.xh and c.yl <= iyh and iyl <= c.yh
            ]
            right_children = [
                c
                for c in nr.entries
                if c.xl <= ixh and ixl <= c.xh and c.yl <= iyh and iyl <= c.yh
            ]
            cpu.intersection_tests += len(nl.entries) + len(nr.entries)
            for cl in left_children:
                for cr in right_children:
                    cpu.intersection_tests += 1
                    if _overlaps(cl, cr):
                        self._charge_visit(cl, visited, disk)
                        self._charge_visit(cr, visited, disk)
                        stack.append((cl, cr))

    @staticmethod
    def _charge_visit(node: RTreeNode, visited: set, disk: SimulatedDisk) -> None:
        """Charge a node's page read the first time it is visited (an
        unbounded buffer — the best case for the index join)."""
        if id(node) not in visited:
            visited.add(id(node))
            disk.charge_read(_NODE_PAGES, 1)


def _overlaps(a: RTreeNode, b: RTreeNode) -> bool:
    return a.xl <= b.xh and b.xl <= a.xh and a.yl <= b.yh and b.yl <= a.yh


def rtree_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    fanout: int = 64,
    **kwargs,
) -> JoinResult:
    """Convenience one-call R-tree join."""
    return RTreeJoin(fanout, **kwargs).run(left, right)
