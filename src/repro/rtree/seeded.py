"""Seeded-tree join [LR 94]: the dedicated "index on one relation" method.

The paper's related work: "It was suggested to build up the second R-tree
using the available tree as a skeleton and to use then one of the
algorithms for processing a spatial join on two R-trees."

Implementation follows that recipe:

1. the *seed levels* — the top ``seed_levels`` levels of the existing
   tree — are copied as the skeleton of the new tree: one growing bucket
   per copied leaf slot, positioned at that slot's MBR;
2. every record of the unindexed relation is inserted into the bucket
   whose seed MBR needs the least enlargement (the seeded insertion);
3. each bucket's contents are bulk-loaded into an R-tree grafted under
   its slot, producing a complete second tree;
4. the standard synchronized R-tree join [BKS 93] runs on the pair.

Because the second tree mirrors the first tree's topology where it
matters, the synchronized traversal prunes much better than it would
against an independently built tree — the method's selling point.

I/O model: the existing tree is free (it pre-exists); building the seeded
tree charges one sequential write of its nodes; the join charges node
reads as in :class:`repro.rtree.join.RTreeJoin`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_BUILD
from repro.core.result import JoinResult, JoinStats
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.obs.trace import NULL_TRACER
from repro.rtree.join import RTreeJoin
from repro.rtree.tree import RTree, RTreeNode


class SeededTreeJoin:
    """Join an indexed relation with an unindexed one via a seeded tree."""

    def __init__(
        self,
        fanout: int = 64,
        seed_levels: int = 2,
        *,
        internal: str = "sweep_list",
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        if seed_levels < 1:
            raise ValueError("seed_levels must be >= 1")
        self.fanout = fanout
        self.seed_levels = seed_levels
        self.internal = internal
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        tree_left: Optional[RTree] = None,
    ) -> JoinResult:
        """*left* is the indexed relation; *right* is seeded into a new
        tree and the pair is joined synchronously."""
        stats = JoinStats(
            algorithm=f"SeededTreeJoin({self.internal})",
            n_left=len(left),
            n_right=len(right),
        )
        if not left or not right:
            return JoinResult(pairs=[], stats=stats)
        if tree_left is None:
            tree_left = RTree.bulk_load(left, self.fanout)

        disk = SimulatedDisk(self.cost_model)
        build_cpu = CpuCounters()
        with self.tracer.span(PHASE_BUILD, cpu=build_cpu, disk=disk) as sp:
            with disk.phase(PHASE_BUILD):
                tree_right = self.build_seeded(tree_left, right, build_cpu)
                disk.charge_write(tree_right.node_count, requests=1)
        stats.wall_seconds_by_phase[PHASE_BUILD] = sp.wall_seconds

        joiner = RTreeJoin(
            self.fanout,
            internal=self.internal,
            prebuilt=True,
            cost_model=self.cost_model,
            tracer=self.tracer,
        )
        join_result = joiner.run(left, right, tree_left, tree_right)
        stats.n_results = join_result.stats.n_results
        stats.io_units_by_phase = {
            PHASE_BUILD: disk.total_units(),
            **join_result.stats.io_units_by_phase,
        }
        stats.io_pages_by_phase = {
            PHASE_BUILD: sum(disk.pages_by_phase().values()),
            **join_result.stats.io_pages_by_phase,
        }
        stats.cpu_by_phase = {
            PHASE_BUILD: build_cpu.as_dict(),
            **join_result.stats.cpu_by_phase,
        }
        stats.sim_io_seconds = (
            self.cost_model.io_seconds(disk.total_units())
            + join_result.stats.sim_io_seconds
        )
        stats.sim_cpu_seconds = (
            self.cost_model.cpu_seconds(build_cpu)
            + join_result.stats.sim_cpu_seconds
        )
        stats.sim_seconds_by_phase = {
            PHASE_BUILD: self.cost_model.io_seconds(disk.total_units())
            + self.cost_model.cpu_seconds(build_cpu),
            **join_result.stats.sim_seconds_by_phase,
        }
        stats.wall_seconds_by_phase.update(join_result.stats.wall_seconds_by_phase)
        return JoinResult(pairs=join_result.pairs, stats=stats)

    # ------------------------------------------------------------------
    def build_seeded(
        self,
        seed_tree: RTree,
        records: Sequence[Tuple],
        counters: CpuCounters,
    ) -> RTree:
        """Grow an R-tree for *records* over *seed_tree*'s skeleton."""
        slots = self._seed_slots(seed_tree)
        buckets: List[List[Tuple]] = [[] for _ in slots]
        # Seeded insertion: least-enlargement over the seed slot MBRs.
        for record in records:
            best = 0
            best_cost = math.inf
            rxl, ryl, rxh, ryh = record[1], record[2], record[3], record[4]
            for index, (xl, yl, xh, yh) in enumerate(slots):
                exl = rxl if rxl < xl else xl
                eyl = ryl if ryl < yl else yl
                exh = rxh if rxh > xh else xh
                eyh = ryh if ryh > yh else yh
                enlargement = (exh - exl) * (eyh - eyl) - (xh - xl) * (yh - yl)
                counters.comparisons += 1
                if enlargement < best_cost:
                    best_cost = enlargement
                    best = index
            buckets[best].append(record)

        # Graft a bulk-loaded subtree per non-empty bucket; pack upward.
        subtrees: List[RTreeNode] = []
        for bucket in buckets:
            if not bucket:
                continue
            grown = RTree.bulk_load(bucket, self.fanout)
            subtrees.append(grown.root)
        tree = RTree(self.fanout)
        tree.size = len(records)
        if subtrees:
            tree.root = tree._pack_upward(subtrees)
        tree._assign_page_ids()
        return tree

    def _seed_slots(self, seed_tree: RTree) -> List[Tuple[float, float, float, float]]:
        """MBRs of the seed level: the nodes ``seed_levels`` deep."""
        frontier = [seed_tree.root]
        for _ in range(self.seed_levels - 1):
            next_frontier: List[RTreeNode] = []
            for node in frontier:
                if node.is_leaf:
                    next_frontier.append(node)
                else:
                    next_frontier.extend(node.entries)
            frontier = next_frontier
        return [node.mbr() for node in frontier] or [seed_tree.root.mbr()]


def seeded_tree_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    fanout: int = 64,
    **kwargs,
) -> JoinResult:
    """Convenience one-call seeded-tree join (left is the indexed side)."""
    return SeededTreeJoin(fanout, **kwargs).run(left, right)
