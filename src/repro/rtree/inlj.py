"""Index nested-loop join: the "index on one relation" class.

The paper's taxonomy has three classes; [LR 94]'s seeded trees address
the middle one (an R-tree exists on exactly one input).  The simplest
member of that class — and the baseline seeded trees are measured against
— is the index nested-loop join: stream the unindexed relation and run
one window query per record against the existing tree.

I/O model: the tree pre-exists (no build charge); every *distinct* node
visited during a query run charges one page read, with an unbounded
buffer making repeat visits free — the favourable case for the method.
Reading the streamed input is free, as everywhere in the paper's model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN
from repro.core.result import JoinResult, JoinStats
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.obs.trace import KIND_RUN, NULL_TRACER
from repro.rtree.tree import RTree


class IndexNestedLoopJoin:
    """Window-query join against a pre-existing R-tree on the left input."""

    def __init__(
        self,
        fanout: int = 64,
        cost_model: Optional[CostModel] = None,
        *,
        tracer=None,
    ):
        self.fanout = fanout
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
        tree_left: Optional[RTree] = None,
    ) -> JoinResult:
        """Join; *left* is the indexed relation, *right* is streamed."""
        stats = JoinStats(
            algorithm="INLJ",
            n_left=len(left),
            n_right=len(right),
        )
        disk = SimulatedDisk(self.cost_model)
        cpu = CpuCounters()
        pairs: List[Tuple[int, int]] = []
        if left and right:
            if tree_left is None:
                tree_left = RTree.bulk_load(left, self.fanout)
            visited = set()
            with self.tracer.span("inlj", kind=KIND_RUN):
                with self.tracer.span(PHASE_JOIN, cpu=cpu, disk=disk) as sp:
                    with disk.phase(PHASE_JOIN):
                        for s in right:
                            self._query(tree_left, s, pairs, cpu, disk, visited)
                stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds
        stats.n_results = len(pairs)
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.cpu_by_phase = {PHASE_JOIN: cpu.as_dict()}
        stats.sim_io_seconds = self.cost_model.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = self.cost_model.cpu_seconds(cpu)
        stats.sim_seconds_by_phase = {
            PHASE_JOIN: stats.sim_io_seconds + stats.sim_cpu_seconds
        }
        return JoinResult(pairs=pairs, stats=stats)

    @staticmethod
    def _query(tree: RTree, s: Tuple, pairs, cpu: CpuCounters, disk, visited) -> None:
        sxl, syl, sxh, syh = s[1], s[2], s[3], s[4]
        stack = [tree.root]
        tests = 0
        while stack:
            node = stack.pop()
            if id(node) not in visited:
                visited.add(id(node))
                disk.charge_read(1, requests=1)
            if node.is_leaf:
                for k in node.entries:
                    tests += 1
                    if k[1] <= sxh and sxl <= k[3] and k[2] <= syh and syl <= k[4]:
                        pairs.append((k[0], s[0]))
            else:
                for child in node.entries:
                    tests += 1
                    if (
                        child.xl <= sxh
                        and sxl <= child.xh
                        and child.yl <= syh
                        and syl <= child.yh
                    ):
                        stack.append(child)
        cpu.intersection_tests += tests


def index_nested_loop_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    fanout: int = 64,
    **kwargs,
) -> JoinResult:
    """Convenience one-call INLJ (left is the indexed side)."""
    return IndexNestedLoopJoin(fanout, **kwargs).run(left, right)
