"""Dataset and join statistics: coverage, selectivity, summaries.

*Coverage* is Table 1's measure: the sum of rectangle areas divided by the
area of the MBR of all rectangles.  *Selectivity* is Table 2's: result
count over the size of the cross product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.rect import area, mbr_of


def coverage(kpes: Sequence[Tuple]) -> float:
    """Sum of MBR areas over the area of the global MBR (Table 1)."""
    global_mbr = mbr_of(kpes)
    if global_mbr is None:
        return 0.0
    width = global_mbr[2] - global_mbr[0]
    height = global_mbr[3] - global_mbr[1]
    total_area = width * height
    if total_area <= 0.0:
        return 0.0
    return sum(area(k) for k in kpes) / total_area


def average_edges(kpes: Sequence[Tuple]) -> Tuple[float, float]:
    """Mean rectangle width and height (0.0 for an empty relation)."""
    n = len(kpes)
    if n == 0:
        return 0.0, 0.0
    avg_w = sum(k[3] - k[1] for k in kpes) / n
    avg_h = sum(k[4] - k[2] for k in kpes) / n
    return avg_w, avg_h


def average_area(kpes: Sequence[Tuple]) -> float:
    """Mean rectangle area E[w*h] (0.0 for an empty relation).

    Distinct from ``average_edges`` multiplied out: on heavy-tailed
    extent distributions (mixed-scale data) E[w*h] far exceeds
    E[w]*E[h], and replication estimates built on the product silently
    undercount the copies the few huge rectangles generate.
    """
    n = len(kpes)
    if n == 0:
        return 0.0
    return sum((k[3] - k[1]) * (k[4] - k[2]) for k in kpes) / n


def density_skew(cell_counts: Sequence[float]) -> float:
    """Max occupied-cell count over the mean occupied-cell count (>= 1).

    A cheap distribution-skew measure over any spatial binning (grid
    histogram cells, partitions): 1.0 means perfectly even occupancy;
    clustered data pushes it far above 1.  Used by the join planner to
    correct per-partition cost estimates for the largest partition.
    """
    occupied = [c for c in cell_counts if c > 0]
    if not occupied:
        return 1.0
    mean = sum(occupied) / len(occupied)
    if mean <= 0:
        return 1.0
    return max(occupied) / mean


def selectivity(n_results: int, n_left: int, n_right: int) -> float:
    """Results over cross-product size (Table 2)."""
    denominator = n_left * n_right
    if denominator == 0:
        return 0.0
    return n_results / denominator


@dataclass(frozen=True)
class DatasetSummary:
    """One row of a Table 1-style dataset inventory."""

    name: str
    n_mbrs: int
    coverage: float
    avg_width: float
    avg_height: float

    def row(self) -> Tuple:
        return (self.name, self.n_mbrs, round(self.coverage, 4))


def summarize(name: str, kpes: Sequence[Tuple]) -> DatasetSummary:
    """Compute the Table 1 row (plus average edge lengths) for a dataset."""
    n = len(kpes)
    if n == 0:
        return DatasetSummary(name, 0, 0.0, 0.0, 0.0)
    avg_w, avg_h = average_edges(kpes)
    return DatasetSummary(name, n, coverage(kpes), avg_w, avg_h)
