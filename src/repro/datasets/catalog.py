"""The named datasets and joins of the paper's evaluation.

Table 1 datasets (LA_RR, LA_ST, their ``(p)``-scaled variants, CAL_ST) and
Table 2 joins (J1..J5) are reconstructed at a configurable *scale*: the
fraction of the paper's cardinality to generate.  Coverage is calibrated to
the Table 1 value independent of scale, so replication rates and relative
selectivities track the paper across scales.

The default scale keeps pure-Python experiment sweeps tractable; set the
``REPRO_SCALE`` environment variable (or pass ``scale=``) to change it.
Generated datasets are memoised per process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rect import KPE
from repro.datasets.synthetic import polyline_mbrs
from repro.datasets.transform import scale_edges, scale_to_coverage

#: Table 1 cardinalities.
PAPER_CARDINALITY: Dict[str, int] = {
    "LA_RR": 128_971,
    "LA_ST": 131_461,
    "CAL_ST": 1_888_012,
}

#: Table 1 coverage values.
PAPER_COVERAGE: Dict[str, float] = {
    "LA_RR": 0.22,
    "LA_ST": 0.03,
    "CAL_ST": 0.12,
}

#: Fixed seeds so every run of the suite sees identical data.
_SEEDS: Dict[str, int] = {"LA_RR": 101, "LA_ST": 202, "CAL_ST": 303}

#: Paper result counts for Table 2 (for side-by-side reporting).
PAPER_JOIN_RESULTS: Dict[str, int] = {
    "J1": 85_854,
    "J2": 305_537,
    "J3": 671_775,
    "J4": 1_195_527,
    "J5": 9_784_072,
}

DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.10"))

#: CAL_ST is ~14x larger than the LA files; this extra factor keeps the J5
#: sweeps (many runs per figure) tractable in pure Python while preserving
#: "much larger than the LA joins".
CAL_EXTRA_FACTOR = float(os.environ.get("REPRO_CAL_FACTOR", "0.25"))

_CACHE: Dict[Tuple[str, int, float], List[KPE]] = {}


def dataset(name: str, scale: Optional[float] = None, p: float = 1.0) -> List[KPE]:
    """A named Table 1 dataset, generated at *scale* of paper cardinality.

    ``p`` applies the paper's edge-scaling operator (LA_RR(p), LA_ST(p)).
    """
    base = _base_dataset(name, scale)
    if p == 1.0:
        return base
    return scale_edges(base, p)


def dataset_cardinality(name: str, scale: Optional[float] = None) -> int:
    """The cardinality :func:`dataset` will generate for *name*."""
    if name not in PAPER_CARDINALITY:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(PAPER_CARDINALITY)}"
        )
    effective = DEFAULT_SCALE if scale is None else scale
    if name == "CAL_ST":
        effective *= CAL_EXTRA_FACTOR
    return max(64, int(PAPER_CARDINALITY[name] * effective))


def _base_dataset(name: str, scale: Optional[float]) -> List[KPE]:
    n = dataset_cardinality(name, scale)
    key = (name, n, PAPER_COVERAGE[name])
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    raw = polyline_mbrs(n, seed=_SEEDS[name])
    calibrated = scale_to_coverage(raw, PAPER_COVERAGE[name], min_edge=1e-5)
    _CACHE[key] = calibrated
    return calibrated


@dataclass(frozen=True)
class JoinSpec:
    """One Table 2 join: input dataset names and edge-scale factor."""

    name: str
    left: str
    right: str
    p: float = 1.0

    def inputs(
        self, scale: Optional[float] = None
    ) -> Tuple[List[KPE], List[KPE]]:
        """Materialise (R, S).  A self join returns the same list twice."""
        left = dataset(self.left, scale, self.p)
        if self.left == self.right:
            return left, left
        return left, dataset(self.right, scale, self.p)


JOINS: Dict[str, JoinSpec] = {
    "J1": JoinSpec("J1", "LA_RR", "LA_ST", 1.0),
    "J2": JoinSpec("J2", "LA_RR", "LA_ST", 2.0),
    "J3": JoinSpec("J3", "LA_RR", "LA_ST", 3.0),
    "J4": JoinSpec("J4", "LA_RR", "LA_ST", 4.0),
    "J5": JoinSpec("J5", "CAL_ST", "CAL_ST", 1.0),
}


def join_inputs(
    join_name: str, scale: Optional[float] = None
) -> Tuple[List[KPE], List[KPE]]:
    """Materialise the inputs of a Table 2 join by name."""
    try:
        spec = JOINS[join_name]
    except KeyError:
        raise ValueError(
            f"unknown join {join_name!r}; choose from {sorted(JOINS)}"
        ) from None
    return spec.inputs(scale)


def la_pair(p: float, scale: Optional[float] = None) -> Tuple[List[KPE], List[KPE]]:
    """The Figure 13 workload: (LA_RR(p), LA_ST(p))."""
    return dataset("LA_RR", scale, p), dataset("LA_ST", scale, p)


def clear_cache() -> None:
    """Drop memoised datasets (tests that vary scale use this)."""
    _CACHE.clear()
