"""Dataset substrate: synthetic TIGER-like generators, transforms, catalog.

The generators and file I/O need numpy (the ``[perf]`` extra); the
statistics helpers do not.  Importing this package without numpy keeps
the numpy-free surface available — exactly what :mod:`repro.planner`
profiling relies on — and ``HAVE_GENERATORS`` records whether the rest
loaded.
"""

from repro.datasets.stats import DatasetSummary, coverage, selectivity, summarize
from repro.datasets.synthetic import zipf_rects

__all__ = [
    "DatasetSummary",
    "HAVE_GENERATORS",
    "coverage",
    "selectivity",
    "summarize",
    "zipf_rects",
]

try:
    from repro.datasets.catalog import (
        CAL_EXTRA_FACTOR,
        DEFAULT_SCALE,
        JOINS,
        JoinSpec,
        PAPER_CARDINALITY,
        PAPER_COVERAGE,
        PAPER_JOIN_RESULTS,
        clear_cache,
        dataset,
        dataset_cardinality,
        join_inputs,
        la_pair,
    )
    from repro.datasets.fileio import (
        load_relation,
        read_csv,
        read_npy,
        save_relation,
        write_csv,
        write_npy,
    )
    from repro.datasets.patterns import manhattan_grid, mixed_scale, radial_city
    from repro.datasets.synthetic import clustered_rects, polyline_mbrs, uniform_rects
    from repro.datasets.transform import scale_edges, scale_to_coverage

    HAVE_GENERATORS = True
    __all__ += [
        "CAL_EXTRA_FACTOR",
        "DEFAULT_SCALE",
        "JOINS",
        "JoinSpec",
        "PAPER_CARDINALITY",
        "PAPER_COVERAGE",
        "PAPER_JOIN_RESULTS",
        "clear_cache",
        "clustered_rects",
        "dataset",
        "dataset_cardinality",
        "join_inputs",
        "la_pair",
        "load_relation",
        "manhattan_grid",
        "mixed_scale",
        "polyline_mbrs",
        "radial_city",
        "read_csv",
        "read_npy",
        "save_relation",
        "scale_edges",
        "scale_to_coverage",
        "uniform_rects",
        "write_csv",
        "write_npy",
    ]
except ImportError:  # pragma: no cover - the no-numpy environment
    HAVE_GENERATORS = False
