"""Dataset transformations: edge scaling and coverage calibration.

``scale_edges`` is the paper's ``(p)`` operator: "we increased both edges of
the rectangles ... by a factor of p", which multiplies the coverage by
``p^2`` (Table 1).  ``scale_to_coverage`` is our calibration step: because
the synthetic substitutes are generated at arbitrary cardinality, the raw
coverage would drift with ``n``; rescaling all edges by a common factor pins
it to the Table 1 value regardless of scale.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.rect import KPE
from repro.datasets.stats import coverage


def scale_edges(kpes: Sequence[Tuple], p: float) -> List[KPE]:
    """Grow (or shrink) every rectangle about its centre by factor *p*.

    Edge lengths are multiplied by ``p``; centres stay put, so rectangles
    may grow beyond the original data-space MBR — exactly as in the paper,
    where partitioners re-derive the space from the scaled inputs.
    """
    if p <= 0:
        raise ValueError(f"scale factor must be positive, got {p}")
    scaled = []
    for k in kpes:
        cx = (k[1] + k[3]) / 2.0
        cy = (k[2] + k[4]) / 2.0
        hw = (k[3] - k[1]) / 2.0 * p
        hh = (k[4] - k[2]) / 2.0 * p
        scaled.append(KPE(k[0], cx - hw, cy - hh, cx + hw, cy + hh))
    return scaled


def scale_to_coverage(
    kpes: Sequence[Tuple],
    target_coverage: float,
    min_edge: float = 0.0,
) -> List[KPE]:
    """Rescale all edges by one common factor so coverage hits the target.

    Coverage scales with the square of the edge factor — except that
    growing edges also grows the global MBR slightly, so a single
    ``sqrt(target / current)`` step undershoots large targets.  The factor
    is therefore refined by fixed-point iteration until the achieved
    coverage is within 1% of the target (or the iteration cap is hit).
    ``min_edge`` optionally pads degenerate rectangles first (a zero-area
    input cannot be scaled into coverage).
    """
    if target_coverage < 0:
        raise ValueError("target coverage must be non-negative")
    rects: Sequence[Tuple] = kpes
    if min_edge > 0:
        rects = _pad_min_edge(rects, min_edge)
    current = coverage(rects)
    if current <= 0.0:
        raise ValueError(
            "cannot calibrate coverage of a zero-area dataset; "
            "pass min_edge to pad degenerate rectangles"
        )
    if target_coverage == 0.0:
        return list(rects)
    scaled = list(rects)
    for _ in range(8):
        if abs(current - target_coverage) <= 0.01 * target_coverage:
            break
        scaled = scale_edges(scaled, math.sqrt(target_coverage / current))
        current = coverage(scaled)
    return scaled


def _pad_min_edge(kpes: Sequence[Tuple], min_edge: float) -> List[KPE]:
    """Ensure every rectangle has at least *min_edge* extent per axis."""
    padded = []
    for k in kpes:
        xl, yl, xh, yh = k[1], k[2], k[3], k[4]
        if xh - xl < min_edge:
            cx = (xl + xh) / 2.0
            xl = cx - min_edge / 2.0
            xh = cx + min_edge / 2.0
        if yh - yl < min_edge:
            cy = (yl + yh) / 2.0
            yl = cy - min_edge / 2.0
            yh = cy + min_edge / 2.0
        padded.append(KPE(k[0], xl, yl, xh, yh))
    return padded
