"""Additional synthetic spatial patterns beyond the TIGER-like polylines.

These generators model other data shapes a spatial-join user meets:
Manhattan-style street grids (extremely thin axis-parallel rectangles —
the best case for size separation), radial cities (density decaying from
a centre — heavy skew for PBSM's tiles), and mixed-scale workloads
(a few huge objects over many small ones — the worst case for the
original S3J level assignment).
"""

from __future__ import annotations

from typing import List

from repro.core.rect import KPE
from repro.kernels.backend import require_numpy_module


def manhattan_grid(
    n: int,
    seed: int,
    *,
    blocks: int = 24,
    jitter: float = 0.002,
    thickness: float = 5e-4,
    start_oid: int = 0,
) -> List[KPE]:
    """Axis-parallel street segments on a jittered grid.

    Every rectangle is a thin horizontal or vertical sliver spanning one
    block — the extreme of the thin-elongated regime.
    """
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    kpes: List[KPE] = []
    oid = start_oid
    step = 1.0 / blocks
    while len(kpes) < n:
        horizontal = rng.random() < 0.5
        line = rng.integers(0, blocks + 1) * step + rng.normal(0.0, jitter)
        block = rng.integers(0, blocks)
        lo = block * step + rng.normal(0.0, jitter)
        hi = lo + step
        line = float(min(1.0, max(0.0, line)))
        lo = float(min(1.0, max(0.0, lo)))
        hi = float(min(1.0, max(0.0, hi)))
        if lo > hi:
            lo, hi = hi, lo
        half = thickness / 2.0
        if horizontal:
            kpes.append(
                KPE(oid, lo, max(0.0, line - half), hi, min(1.0, line + half))
            )
        else:
            kpes.append(
                KPE(oid, max(0.0, line - half), lo, min(1.0, line + half), hi)
            )
        oid += 1
    return kpes[:n]


def radial_city(
    n: int,
    seed: int,
    *,
    centre=(0.5, 0.5),
    decay: float = 6.0,
    mean_edge: float = 0.004,
    start_oid: int = 0,
) -> List[KPE]:
    """Density decaying exponentially with distance from a city centre."""
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    radius = rng.exponential(1.0 / decay, n)
    angle = rng.uniform(0.0, 2 * np.pi, n)
    x = np.clip(centre[0] + radius * np.cos(angle), 0.0, 1.0)
    y = np.clip(centre[1] + radius * np.sin(angle), 0.0, 1.0)
    w = rng.exponential(mean_edge, n)
    h = rng.exponential(mean_edge, n)
    xl = np.clip(x - w / 2, 0.0, 1.0)
    yl = np.clip(y - h / 2, 0.0, 1.0)
    xh = np.clip(x + w / 2, 0.0, 1.0)
    yh = np.clip(y + h / 2, 0.0, 1.0)
    return [
        KPE(start_oid + i, float(a), float(b), float(c), float(d))
        for i, (a, b, c, d) in enumerate(zip(xl, yl, xh, yh))
    ]


def mixed_scale(
    n: int,
    seed: int,
    *,
    large_fraction: float = 0.02,
    large_edge: float = 0.3,
    small_edge: float = 0.003,
    start_oid: int = 0,
) -> List[KPE]:
    """A few region-sized objects over many tiny ones.

    The regime where original S3J's MX-CIF assignment collapses: the
    large objects legitimately sit at low levels, and every small object
    straddling a major boundary joins them there.
    """
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    is_large = rng.random(n) < large_fraction
    edges_w = np.where(
        is_large,
        rng.uniform(large_edge / 2, large_edge, n),
        rng.exponential(small_edge, n),
    )
    edges_h = np.where(
        is_large,
        rng.uniform(large_edge / 2, large_edge, n),
        rng.exponential(small_edge, n),
    )
    x = rng.random(n)
    y = rng.random(n)
    xl = np.clip(x - edges_w / 2, 0.0, 1.0)
    yl = np.clip(y - edges_h / 2, 0.0, 1.0)
    xh = np.clip(x + edges_w / 2, 0.0, 1.0)
    yh = np.clip(y + edges_h / 2, 0.0, 1.0)
    return [
        KPE(start_oid + i, float(a), float(b), float(c), float(d))
        for i, (a, b, c, d) in enumerate(zip(xl, yl, xh, yh))
    ]
