"""Reading and writing KPE relations from/to disk files.

Three formats:

* **CSV** — ``oid,xl,yl,xh,yh`` per line (with an optional header), the
  interchange format of the CLI;
* **NPY** — a ``(n, 5)`` float64 numpy array, the compact format for
  large generated datasets;
* **RCD** — the memory-mapped columnar dataset format
  (docs/datasets.md): built once via ``repro build`` or
  :func:`save_relation`, then opened zero-copy in O(ms) as a
  :class:`~repro.kernels.mmapstore.MappedRelation` instead of being
  parsed into tuples.

The CSV and NPY loaders validate records and reject inverted or
non-finite MBRs rather than ingesting silently broken geometry; RCD
validates at *build* time and trusts its own header-checked files on
open — that asymmetry is the entire point of the format.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.core.rect import KPE, valid_kpe
from repro.kernels.backend import numpy_enabled, require_numpy_module

PathLike = Union[str, Path]

CSV_HEADER = ("oid", "xl", "yl", "xh", "yh")


def write_csv(kpes: Sequence[Tuple], path: PathLike, header: bool = True) -> None:
    """Write a relation as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(CSV_HEADER)
        for k in kpes:
            writer.writerow([k[0], k[1], k[2], k[3], k[4]])


def read_csv(path: PathLike) -> List[KPE]:
    """Read a relation from CSV (header auto-detected)."""
    kpes: List[KPE] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for line_no, row in enumerate(reader, start=1):
            if not row:
                continue
            if line_no == 1 and row[0].strip().lower() == "oid":
                continue
            if len(row) != 5:
                raise ValueError(f"{path}:{line_no}: expected 5 fields, got {len(row)}")
            try:
                kpe = KPE(
                    int(row[0]),
                    float(row[1]),
                    float(row[2]),
                    float(row[3]),
                    float(row[4]),
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
            if not valid_kpe(kpe):
                raise ValueError(f"{path}:{line_no}: invalid MBR {tuple(kpe)}")
            kpes.append(kpe)
    return kpes


def write_npy(kpes: Sequence[Tuple], path: PathLike) -> None:
    """Write a relation as an ``(n, 5)`` float64 .npy array."""
    np = require_numpy_module()
    array = np.array(
        [[k[0], k[1], k[2], k[3], k[4]] for k in kpes], dtype=np.float64
    ).reshape(len(kpes), 5)
    np.save(path, array)


def read_npy(path: PathLike) -> List[KPE]:
    """Read a relation from an ``(n, 5)`` .npy array."""
    np = require_numpy_module()
    array = np.load(path)
    if array.ndim != 2 or array.shape[1] != 5:
        raise ValueError(f"{path}: expected an (n, 5) array, got {array.shape}")
    kpes: List[KPE] = []
    for row in array:
        kpe = KPE(int(row[0]), float(row[1]), float(row[2]), float(row[3]), float(row[4]))
        if not valid_kpe(kpe):
            raise ValueError(f"{path}: invalid MBR {tuple(kpe)}")
        kpes.append(kpe)
    return kpes


def load_relation(path: PathLike) -> Sequence[KPE]:
    """Load a relation, dispatching on the file extension.

    ``.csv``/``.npy`` return a fully parsed ``List[KPE]``.  ``.rcd``
    returns a zero-copy :class:`~repro.kernels.mmapstore.MappedRelation`
    (an O(ms) open) when the numpy backend is enabled, or falls back to
    the pure-Python struct reader (same records, same order) when it is
    not — so the format round-trips under ``REPRO_DISABLE_NUMPY``.
    """
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return read_csv(path)
    if suffix == ".npy":
        return read_npy(path)
    if suffix == ".rcd":
        if numpy_enabled():
            from repro.kernels.mmapstore import open_relation

            return open_relation(path)
        from repro.io.rcd import read_rcd_python

        return read_rcd_python(path)
    raise ValueError(
        f"unsupported relation format {suffix!r} (use .csv, .npy or .rcd)"
    )


def save_relation(kpes: Sequence[Tuple], path: PathLike) -> None:
    """Save a relation, dispatching on the file extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        write_csv(kpes, path)
    elif suffix == ".npy":
        write_npy(kpes, path)
    elif suffix == ".rcd":
        if numpy_enabled():
            from repro.kernels.mmapstore import write_rcd

            write_rcd(kpes, path)
        else:
            from repro.io.rcd import write_rcd_python

            write_rcd_python(kpes, path)
    else:
        raise ValueError(
            f"unsupported relation format {suffix!r} (use .csv, .npy or .rcd)"
        )
