"""Synthetic TIGER-like dataset generators.

The paper's experiments use line MBRs from the TIGER/Line files (railways,
rivers and streets of LA; all streets of California).  Those files are not
redistributable here, so we generate *road-network-like* data with the
properties that drive the algorithms' behaviour (see DESIGN.md §2):

* MBRs of short polyline segments — thin, elongated, axis-leaning boxes;
* strong spatial clustering (city-like hot spots, sparse countryside);
* a controllable **coverage** (sum of rectangle areas over the area of the
  data-space MBR), the quantity Table 1 reports and the knob the paper's
  ``(p)`` scaling experiments turn.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import Any, List, Optional

from repro.core.rect import KPE
from repro.kernels.backend import require_numpy_module


def zipf_rects(
    n: int,
    seed: int,
    *,
    grid: int = 16,
    alpha: float = 1.2,
    mean_edge: float = 0.004,
    start_oid: int = 0,
    tile_seed: Optional[int] = None,
) -> List[KPE]:
    """Rectangles with Zipf-distributed tile occupancy (pure python).

    The unit square is cut into ``grid x grid`` tiles; tile *k* (in a
    seed-shuffled order, so the hot tiles land in different places for
    different seeds) receives a share proportional to ``1 / (k+1)**alpha``
    of the *n* rectangles.  With the default ``alpha=1.2`` the hottest
    tile holds an order of magnitude more records than the median one —
    the partition-skew regime that breaks static LPT scheduling.  Edges
    are exponential with mean ``mean_edge``, small against the tile size,
    so skew stays in *placement* rather than in replication.

    ``tile_seed`` pins the tile *ordering* separately from the record
    randomness: two relations generated with different ``seed`` but the
    same ``tile_seed`` put their hot spots in the same places, which is
    what makes their join (not just each input) skewed.

    Deliberately numpy-free (``random.Random`` only): the skewed
    property-based tests must run in the fallback environment too.
    """
    if n <= 0:
        return []
    rng = random.Random(seed)
    n_tiles = grid * grid
    tiles = list(range(n_tiles))
    random.Random(seed if tile_seed is None else tile_seed).shuffle(tiles)
    weights = [1.0 / float(k + 1) ** alpha for k in range(n_tiles)]
    total = sum(weights)
    cum = 0.0
    out: List[KPE] = []
    produced = 0
    for rank, tile in enumerate(tiles):
        cum += weights[rank]
        target = int(round(n * cum / total))
        quota = target - produced
        if quota <= 0:
            continue
        ty, tx = divmod(tile, grid)
        for _ in range(quota):
            x = (tx + rng.random()) / grid
            y = (ty + rng.random()) / grid
            w = rng.expovariate(1.0 / mean_edge)
            h = rng.expovariate(1.0 / mean_edge)
            out.append(
                KPE(
                    start_oid + produced,
                    max(0.0, x - w / 2.0),
                    max(0.0, y - h / 2.0),
                    min(1.0, x + w / 2.0),
                    min(1.0, y + h / 2.0),
                )
            )
            produced += 1
    return out


def polyline_mbrs(
    n: int,
    seed: int,
    *,
    clusters: int = 16,
    steps_per_line: int = 48,
    step_mean: float = 0.004,
    heading_sigma: float = 0.35,
    cluster_sigma: float = 0.06,
    thickness: float = 1e-4,
    start_oid: int = 0,
) -> List[KPE]:
    """Generate *n* segment MBRs from clustered random-walk polylines.

    Each polyline starts near one of ``clusters`` city centres and walks
    with momentum (headings drift by ``heading_sigma`` per step); walks
    reflect off the unit-square borders so segments never wrap across the
    space.  Every step contributes the MBR of its segment, padded by
    ``thickness`` so areas are non-zero even for axis-parallel segments.
    """
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    n_lines = max(1, -(-n // steps_per_line))

    centres = rng.random((clusters, 2)) * 0.84 + 0.08
    which = rng.integers(0, clusters, n_lines)
    starts = centres[which] + rng.normal(0.0, cluster_sigma, (n_lines, 2))

    theta0 = rng.uniform(0.0, 2.0 * math.pi, n_lines)
    dtheta = rng.normal(0.0, heading_sigma, (n_lines, steps_per_line))
    theta = theta0[:, None] + np.cumsum(dtheta, axis=1)
    lengths = rng.lognormal(math.log(step_mean), 0.6, (n_lines, steps_per_line))

    dx = lengths * np.cos(theta)
    dy = lengths * np.sin(theta)
    xs = np.concatenate(
        [starts[:, :1], starts[:, :1] + np.cumsum(dx, axis=1)], axis=1
    )
    ys = np.concatenate(
        [starts[:, 1:2], starts[:, 1:2] + np.cumsum(dy, axis=1)], axis=1
    )
    xs = _reflect_unit(xs)
    ys = _reflect_unit(ys)

    xl = np.minimum(xs[:, :-1], xs[:, 1:]).ravel()
    xh = np.maximum(xs[:, :-1], xs[:, 1:]).ravel()
    yl = np.minimum(ys[:, :-1], ys[:, 1:]).ravel()
    yh = np.maximum(ys[:, :-1], ys[:, 1:]).ravel()
    half = thickness / 2.0
    xl = np.clip(xl - half, 0.0, 1.0)
    yl = np.clip(yl - half, 0.0, 1.0)
    xh = np.clip(xh + half, 0.0, 1.0)
    yh = np.clip(yh + half, 0.0, 1.0)

    return _to_kpes(xl[:n], yl[:n], xh[:n], yh[:n], start_oid)


def uniform_rects(
    n: int,
    seed: int,
    *,
    mean_edge: float = 0.01,
    start_oid: int = 0,
) -> List[KPE]:
    """Uniformly placed rectangles with exponential edge lengths.

    Not TIGER-like; used by tests and as an unskewed counterpoint in
    examples.
    """
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    y = rng.random(n)
    w = rng.exponential(mean_edge, n)
    h = rng.exponential(mean_edge, n)
    xl = np.clip(x - w / 2.0, 0.0, 1.0)
    yl = np.clip(y - h / 2.0, 0.0, 1.0)
    xh = np.clip(x + w / 2.0, 0.0, 1.0)
    yh = np.clip(y + h / 2.0, 0.0, 1.0)
    return _to_kpes(xl, yl, xh, yh, start_oid)


def clustered_rects(
    n: int,
    seed: int,
    *,
    clusters: int = 8,
    cluster_sigma: float = 0.03,
    mean_edge: float = 0.008,
    start_oid: int = 0,
) -> List[KPE]:
    """Gaussian-clustered rectangles (highly skewed placement)."""
    if n <= 0:
        return []
    np = require_numpy_module()
    rng = np.random.default_rng(seed)
    centres = rng.random((clusters, 2))
    which = rng.integers(0, clusters, n)
    x = np.clip(centres[which, 0] + rng.normal(0, cluster_sigma, n), 0.0, 1.0)
    y = np.clip(centres[which, 1] + rng.normal(0, cluster_sigma, n), 0.0, 1.0)
    w = rng.exponential(mean_edge, n)
    h = rng.exponential(mean_edge, n)
    xl = np.clip(x - w / 2.0, 0.0, 1.0)
    yl = np.clip(y - h / 2.0, 0.0, 1.0)
    xh = np.clip(x + w / 2.0, 0.0, 1.0)
    yh = np.clip(y + h / 2.0, 0.0, 1.0)
    return _to_kpes(xl, yl, xh, yh, start_oid)


def _reflect_unit(values: Any) -> Any:
    """Fold arbitrary reals into [0, 1] by reflection at the borders."""
    np = require_numpy_module()
    folded = np.mod(values, 2.0)
    return np.where(folded > 1.0, 2.0 - folded, folded)


def _to_kpes(
    xl: Any,
    yl: Any,
    xh: Any,
    yh: Any,
    start_oid: int,
) -> List[KPE]:
    return [
        KPE(start_oid + i, float(a), float(b), float(c), float(d))
        for i, (a, b, c, d) in enumerate(zip(xl, yl, xh, yh))
    ]
