"""Spatial Hash Join [LR 96] — replication on one relation only.

The paper's related work: "The spatial-hash join ... divides the datasets
into smaller partitions and applies a join algorithm to each pair of
partitions.  PBSM replicates some of the data of both input relations ...
whereas the spatial-hash join only allows replication on one relation",
and [KS 97] found its performance comparable to PBSM.

Implementation: the *build* relation R is partitioned without replication
— each record goes to the single bucket owning its centre point on an
equidistant grid — and each bucket's extent grows to the union MBR of its
contents.  The *probe* relation S is then replicated into every bucket
whose extent its rectangle overlaps.  Because every R record exists
exactly once, each result pair is produced exactly once: **no duplicate
removal is needed at all**, which is this algorithm's trade against
PBSM's symmetric replication.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION
from repro.core.result import JoinResult, JoinStats
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import internal_algorithm
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.io.pagefile import PageFile
from repro.obs.trace import KIND_RUN, NULL_TRACER
from repro.pbsm.estimator import estimate_partitions


class SpatialHashJoin:
    """Spatial hash join: build-side buckets, probe-side replication."""

    def __init__(
        self,
        memory_bytes: int,
        *,
        internal: str = "sweep_list",
        t_factor: float = 1.2,
        cost_model: Optional[CostModel] = None,
        tracer=None,
    ):
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        self.memory_bytes = memory_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.internal_name = internal
        self.internal = internal_algorithm(internal)
        self.t_factor = t_factor
        self.cost_model = cost_model or CostModel()

    def run(self, left: Sequence[Tuple], right: Sequence[Tuple]) -> JoinResult:
        """Join with *left* as the build side and *right* as the probe side."""
        stats = JoinStats(
            algorithm=f"SHJ({self.internal_name})",
            n_left=len(left),
            n_right=len(right),
        )
        disk = SimulatedDisk(self.cost_model)
        cpu = {PHASE_PARTITION: CpuCounters(), PHASE_JOIN: CpuCounters()}
        pairs: List[Tuple[int, int]] = []
        if left and right:
            self._execute(left, right, pairs, stats, disk, cpu)
        stats.n_results = len(pairs)
        self._finalize(stats, disk, cpu)
        return JoinResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------
    def _execute(self, left, right, pairs, stats, disk, cpu) -> None:
        kpe_bytes = self.cost_model.kpe_bytes
        space = Space.of(left, right)
        n_buckets = estimate_partitions(
            len(left), len(right), kpe_bytes, self.memory_bytes, self.t_factor
        )
        side = max(1, math.ceil(math.sqrt(n_buckets)))
        n_buckets = side * side
        stats.n_partitions = n_buckets

        tracer = self.tracer
        with tracer.span("shj", kind=KIND_RUN, internal=self.internal_name):
            with tracer.span(
                PHASE_PARTITION, cpu=cpu[PHASE_PARTITION], disk=disk
            ) as sp:
                with disk.phase(PHASE_PARTITION):
                    # Build side: one bucket per record, chosen by centre
                    # point.
                    build_files = [
                        PageFile(disk, kpe_bytes, f"B{i}")
                        for i in range(n_buckets)
                    ]
                    extents: List[
                        Optional[Tuple[float, float, float, float]]
                    ] = [None] * n_buckets
                    writers = [f.writer(buffer_pages=1) for f in build_files]
                    counters = cpu[PHASE_PARTITION]
                    for k in left:
                        cx = (k[1] + k[3]) / 2.0
                        cy = (k[2] + k[4]) / 2.0
                        bx = min(side - 1, max(0, int(space.norm_x(cx) * side)))
                        by = min(side - 1, max(0, int(space.norm_y(cy) * side)))
                        bucket = by * side + bx
                        writers[bucket].write(k)
                        counters.structure_ops += 1
                        extent = extents[bucket]
                        if extent is None:
                            extents[bucket] = (k[1], k[2], k[3], k[4])
                        else:
                            extents[bucket] = (
                                extent[0] if extent[0] < k[1] else k[1],
                                extent[1] if extent[1] < k[2] else k[2],
                                extent[2] if extent[2] > k[3] else k[3],
                                extent[3] if extent[3] > k[4] else k[4],
                            )
                    for writer in writers:
                        writer.close()

                    # Probe side: replicate into every bucket whose extent
                    # the rectangle overlaps.
                    probe_files = [
                        PageFile(disk, kpe_bytes, f"P{i}")
                        for i in range(n_buckets)
                    ]
                    probe_writers = [
                        f.writer(buffer_pages=1) for f in probe_files
                    ]
                    probe_written = 0
                    for s in right:
                        for bucket, extent in enumerate(extents):
                            counters.intersection_tests += (
                                1 if extent is not None else 0
                            )
                            if extent is None:
                                continue
                            if (
                                s[1] <= extent[2]
                                and extent[0] <= s[3]
                                and s[2] <= extent[3]
                                and extent[1] <= s[4]
                            ):
                                probe_writers[bucket].write(s)
                                probe_written += 1
                    for writer in probe_writers:
                        writer.close()
                stats.records_partitioned = len(left) + probe_written
                # Probe records overlapping no bucket extent are dropped
                # (they can produce no result), so the net replica count can
                # be negative; report only genuine replicas.
                stats.replicas_created = max(0, probe_written - len(right))
            stats.wall_seconds_by_phase[PHASE_PARTITION] = sp.wall_seconds

            join_cpu = cpu[PHASE_JOIN]
            with tracer.span(PHASE_JOIN, cpu=join_cpu, disk=disk) as sp:
                with disk.phase(PHASE_JOIN):
                    for bucket in range(n_buckets):
                        if not build_files[bucket].n_records:
                            continue
                        if not probe_files[bucket].n_records:
                            continue
                        build = build_files[bucket].read_all()
                        probe = probe_files[bucket].read_all()
                        size = (len(build) + len(probe)) * kpe_bytes
                        if size > stats.peak_memory_bytes:
                            stats.peak_memory_bytes = size
                        if size > self.memory_bytes:
                            stats.memory_overruns += 1
                        self.internal(
                            build,
                            probe,
                            lambda r, s: pairs.append((r[0], s[0])),
                            join_cpu,
                        )
            stats.wall_seconds_by_phase[PHASE_JOIN] = sp.wall_seconds

    def _finalize(self, stats, disk, cpu) -> None:
        cost = self.cost_model
        stats.io_units_by_phase = disk.units_by_phase()
        stats.io_pages_by_phase = disk.pages_by_phase()
        stats.cpu_by_phase = {p: c.as_dict() for p, c in cpu.items()}
        stats.sim_io_seconds = cost.io_seconds(disk.total_units())
        stats.sim_cpu_seconds = sum(cost.cpu_seconds(c) for c in cpu.values())
        units = stats.io_units_by_phase
        stats.sim_seconds_by_phase = {
            phase: cost.cpu_seconds(counters)
            + cost.io_seconds(units.get(phase, 0.0))
            for phase, counters in cpu.items()
        }


def spatial_hash_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    memory_bytes: int,
    **kwargs,
) -> JoinResult:
    """Convenience one-call spatial hash join (left = build side)."""
    return SpatialHashJoin(memory_bytes, **kwargs).run(left, right)
