"""Spatial Hash Join [LR 96]: replication on one relation only."""

from repro.shj.join import SpatialHashJoin, spatial_hash_join

__all__ = ["SpatialHashJoin", "spatial_hash_join"]
