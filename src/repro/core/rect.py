"""Rectangles and key-pointer elements (KPEs).

A KPE is the unit of data every algorithm in this library operates on: an
object identifier plus the rectilinear minimum bounding rectangle (MBR) of
the underlying spatial object, exactly as defined in Section 2 of the paper.

Rectangles are *closed*: two rectangles that merely touch are considered
intersecting.  This matches the usual spatial-join semantics and the paper's
candidate-set definition (the filter step must not lose answers).
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Optional, Tuple


class KPE(NamedTuple):
    """Key-pointer element: object id plus its MBR corners.

    Being a :class:`typing.NamedTuple`, a KPE *is* a plain tuple, so the
    performance-critical join loops can unpack it positionally (see the
    module constants :data:`OID` ... :data:`YH`) while tests and examples use
    the named fields.
    """

    oid: int
    xl: float
    yl: float
    xh: float
    yh: float


# Positional indices into a KPE tuple, for hot loops.
OID, XL, YL, XH, YH = range(5)

# The paper assumes a fixed-size KPE record; we follow the era's layout of a
# 4-byte identifier plus four 4-byte coordinates.
SIZEOF_KPE = 20


def make_kpe(oid: int, xl: float, yl: float, xh: float, yh: float) -> KPE:
    """Build a KPE, validating that the corners form a non-inverted MBR."""
    if not (xl <= xh and yl <= yh):
        raise ValueError(
            f"invalid MBR for oid={oid}: ({xl}, {yl}, {xh}, {yh})"
        )
    if not all(math.isfinite(v) for v in (xl, yl, xh, yh)):
        raise ValueError(f"non-finite MBR for oid={oid}")
    return KPE(oid, xl, yl, xh, yh)


def valid_kpe(kpe: Tuple) -> bool:
    """Return True if *kpe* is a structurally valid KPE tuple."""
    if len(kpe) != 5:
        return False
    oid, xl, yl, xh, yh = kpe
    if not all(math.isfinite(float(v)) for v in (xl, yl, xh, yh)):
        return False
    return xl <= xh and yl <= yh


def intersects(a: Tuple, b: Tuple) -> bool:
    """Closed-rectangle intersection test between two KPEs.

    This is the six-comparison predicate charged by the CPU cost model as a
    single *intersection test*.
    """
    return (
        a[1] <= b[3]
        and b[1] <= a[3]
        and a[2] <= b[4]
        and b[2] <= a[4]
    )


def intersection(a: Tuple, b: Tuple) -> Optional[Tuple[float, float, float, float]]:
    """Return the intersection rectangle of two KPEs, or None if disjoint."""
    xl = max(a[1], b[1])
    yl = max(a[2], b[2])
    xh = min(a[3], b[3])
    yh = min(a[4], b[4])
    if xl > xh or yl > yh:
        return None
    return (xl, yl, xh, yh)


def area(kpe: Tuple) -> float:
    """Area of the MBR of a KPE."""
    return (kpe[3] - kpe[1]) * (kpe[4] - kpe[2])


def rect_contains_point(kpe: Tuple, x: float, y: float) -> bool:
    """Closed containment of a point in the MBR of a KPE."""
    return kpe[1] <= x <= kpe[3] and kpe[2] <= y <= kpe[4]


def mbr_of(kpes: Iterable[Tuple]) -> Optional[Tuple[float, float, float, float]]:
    """The MBR of a collection of KPEs, or None for an empty collection."""
    xl = yl = math.inf
    xh = yh = -math.inf
    empty = True
    for k in kpes:
        empty = False
        if k[1] < xl:
            xl = k[1]
        if k[2] < yl:
            yl = k[2]
        if k[3] > xh:
            xh = k[3]
        if k[4] > yh:
            yh = k[4]
    if empty:
        return None
    return (xl, yl, xh, yh)
