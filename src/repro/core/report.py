"""Human-readable execution reports for join statistics.

Used by the CLI's verbose mode and by examples; renders a
:class:`~repro.core.result.JoinStats` as the kind of per-phase breakdown
the paper's figures are built from.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import List

from repro.core.result import JoinStats


def format_stats(stats: JoinStats, verbose: bool = False) -> str:
    """Render join statistics as an aligned multi-line report."""
    lines: List[str] = []
    lines.append(f"algorithm          {stats.algorithm}")
    if stats.backend:
        lines.append(f"backend            {stats.backend}")
    if stats.executor:
        transport = " (shared memory)" if stats.shared_memory else ""
        lines.append(f"executor           {stats.executor}{transport}")
    lines.append(f"inputs             {stats.n_left:,} x {stats.n_right:,}")
    lines.append(f"results            {stats.n_results:,}")
    lines.append(f"selectivity        {stats.selectivity():.3e}")
    if stats.records_partitioned:
        lines.append(
            f"partitioned        {stats.records_partitioned:,} records "
            f"(replication {stats.replication_rate:.3f})"
        )
    if stats.n_partitions:
        lines.append(f"partitions         {stats.n_partitions:,}")
    if stats.repartition_events:
        lines.append(f"repartitionings    {stats.repartition_events:,}")
    if stats.duplicates_suppressed:
        lines.append(f"duplicates (RPM)   {stats.duplicates_suppressed:,}")
    if stats.duplicates_sorted_out:
        lines.append(f"duplicates (sort)  {stats.duplicates_sorted_out:,}")
    if stats.memory_overruns:
        lines.append(f"memory overruns    {stats.memory_overruns:,}")
    lines.append(f"io units           {stats.io_units:,.0f}")
    lines.append(
        f"simulated seconds  {stats.sim_seconds:.3f} "
        f"(io {stats.sim_io_seconds:.3f} + cpu {stats.sim_cpu_seconds:.3f})"
    )
    if stats.wall_seconds:
        lines.append(f"wall seconds       {stats.wall_seconds:.3f}")
    if stats.join_busy_seconds or stats.join_makespan_seconds:
        lines.append(
            f"join busy/makespan {stats.join_busy_seconds:.3f}s / "
            f"{stats.join_makespan_seconds:.3f}s"
        )
    if stats.n_workers > 1 and stats.join_makespan_seconds:
        scheduler = f" ({stats.scheduler})" if stats.scheduler else ""
        lines.append(
            f"worker utilization {stats.worker_utilization:.1%} "
            f"over {stats.n_workers} workers{scheduler}"
        )
        if stats.scheduler_idle_seconds:
            lines.append(
                f"scheduler idle     {stats.scheduler_idle_seconds:.3f}s"
            )
        if stats.tasks_stolen:
            lines.append(f"tasks stolen       {stats.tasks_stolen:,}")
    if stats.ipc_bytes_shipped:
        lines.append(
            f"ipc shipped        {stats.ipc_bytes_shipped:,} bytes "
            f"({stats.ipc_seconds:.3f}s serialisation)"
        )
    if stats.planning_seconds:
        lines.append(f"planning seconds   {stats.planning_seconds:.3f}")
    if stats.total_wall_seconds:
        lines.append(f"total wall seconds {stats.total_wall_seconds:.3f}")
    if verbose and stats.worker_busy_seconds:
        lines.append("per-worker busy seconds:")
        for worker, seconds in sorted(stats.worker_busy_seconds.items()):
            lines.append(f"  {worker:<14} {seconds:>8.3f}s")
    if verbose and stats.sim_seconds_by_phase:
        lines.append("per-phase simulated seconds:")
        for phase, seconds in sorted(stats.sim_seconds_by_phase.items()):
            units = stats.io_units_by_phase.get(phase, 0.0)
            lines.append(f"  {phase:<14} {seconds:>8.3f}s  ({units:,.0f} io units)")
    if verbose and stats.cpu_by_phase:
        lines.append("per-phase operation counts:")
        for phase, counts in sorted(stats.cpu_by_phase.items()):
            interesting = {k: v for k, v in counts.items() if v}
            if interesting:
                rendered = ", ".join(
                    f"{name}={value:,}" for name, value in sorted(interesting.items())
                )
                lines.append(f"  {phase:<14} {rendered}")
    return "\n".join(lines)


def stats_to_dict(stats: JoinStats) -> dict:
    """The machine-readable report: every measured field plus derived ones.

    This is what the CLI's ``--report`` writes and what downstream
    tooling should consume instead of parsing :func:`format_stats`.  All
    dataclass fields are included verbatim; the derived totals
    (``wall_seconds``, ``sim_seconds``, ``io_units``, rates) are
    materialised so consumers need no recomputation.
    """
    out = asdict(stats)
    out["wall_seconds"] = stats.wall_seconds
    out["sim_seconds"] = stats.sim_seconds
    out["io_units"] = stats.io_units
    out["replication_rate"] = stats.replication_rate
    out["selectivity"] = stats.selectivity()
    out["worker_utilization"] = stats.worker_utilization
    return out
