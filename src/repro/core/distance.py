"""Distance ("within epsilon") joins — the paper's declared future work.

Section 6: "In our future work we are interested in a generalization of
our work for multidimensional similarity joins [KS 98]."  The filter-step
generalisation is standard: two objects are within distance ``eps`` only
if their MBRs, each expanded by ``eps / 2`` on every side, intersect.  The
expansion preserves everything the reference-point machinery relies on
(the expanded rectangles are ordinary rectangles), so *any* driver in this
library runs the similarity filter step unchanged.

``distance_join`` wraps the expansion; the refinement criterion used here
is MBR (minimum) distance — exact geometric distance belongs to the
refinement step of the application.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.rect import KPE
from repro.core.result import JoinResult


def expand_for_distance(kpes: Sequence[Tuple], eps: float) -> List[KPE]:
    """Expand every MBR by ``eps / 2`` per side.

    Two original rectangles have (minimum) distance <= eps iff their
    expanded versions intersect.
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    half = eps / 2.0
    return [
        KPE(k[0], k[1] - half, k[2] - half, k[3] + half, k[4] + half)
        for k in kpes
    ]


def mbr_distance(a: Tuple, b: Tuple) -> float:
    """Minimum distance between two closed MBRs (0 when intersecting)."""
    dx = max(0.0, max(a[1], b[1]) - min(a[3], b[3]))
    dy = max(0.0, max(a[2], b[2]) - min(a[4], b[4]))
    return math.hypot(dx, dy)


def distance_join(
    left: Sequence[Tuple],
    right: Sequence[Tuple],
    eps: float,
    memory_bytes: int,
    method: str = "pbsm",
    *,
    exact: bool = True,
    **kwargs: object,
) -> JoinResult:
    """All pairs whose MBR distance is at most *eps*.

    Runs the chosen driver on eps-expanded inputs; with ``exact=True`` the
    candidates are post-filtered by true MBR distance (the expansion test
    is exact for the x/y-aligned parts but admits corner-to-corner pairs
    whose Euclidean distance slightly exceeds eps).
    """
    from repro import spatial_join  # deferred: avoids a circular import

    expanded_left = expand_for_distance(left, eps)
    expanded_right = expand_for_distance(right, eps)
    result = spatial_join(
        expanded_left, expanded_right, memory_bytes, method=method, **kwargs
    )
    if not exact:
        return result
    left_by_oid = {k[0]: k for k in left}
    right_by_oid = {k[0]: k for k in right}
    filtered = [
        (a, b)
        for a, b in result.pairs
        if mbr_distance(left_by_oid[a], right_by_oid[b]) <= eps
    ]
    result.pairs = filtered
    result.stats.n_results = len(filtered)
    return result
