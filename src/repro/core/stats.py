"""CPU operation counters and phase timers.

The paper measures total runtime of C++ implementations on 1990s hardware.
A pure-Python reproduction cannot reproduce those constants faithfully
(repro band: "runtime benchmarks less faithful"), so in addition to wall
clock we *count* the operations that dominate the paper's CPU cost —
intersection tests, sort comparisons, heap operations, locational-code
computations — and let :class:`repro.io.costmodel.CostModel` translate the
counts into simulated seconds.  Counting is deterministic and
hardware-independent, which is what makes the figure *shapes* reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from types import TracebackType
from typing import Dict, Optional


@dataclass
class CpuCounters:
    """Counts of the CPU operations the cost model charges.

    Attributes
    ----------
    intersection_tests:
        Rectangle-overlap predicate evaluations (the inner-loop unit of
        every internal join algorithm).
    comparisons:
        Key comparisons in sorting and sweep-line ordering.
    heap_ops:
        Push/pop operations on priority queues (S3J's synchronized scan,
        multiway merges).
    code_computations:
        Locational-code (space-filling-curve) evaluations; Z and Hilbert
        codes are charged differently by the cost model.
    structure_ops:
        Sweep-line status structure operations (node visits, inserts,
        removals) — the overhead term that separates list, trie and tree
        sweep variants.
    refpoint_tests:
        Reference-point computations plus region membership tests (the
        paper's "at most six comparisons" per produced result).
    batch_ops:
        Array-element operations performed by the columnar (numpy) kernel
        path — the batch-level currency replacing per-element
        intersection/refpoint/structure counts when a vectorized kernel
        runs.  Much cheaper per element than the scalar ops, which is how
        the cost model reflects the kernels' speed.
    results_reported:
        Pairs emitted to the caller (after duplicate suppression).
    duplicates_suppressed:
        Pairs detected but suppressed by the Reference Point Method.
    """

    intersection_tests: int = 0
    comparisons: int = 0
    heap_ops: int = 0
    code_computations: int = 0
    structure_ops: int = 0
    refpoint_tests: int = 0
    batch_ops: int = 0
    results_reported: int = 0
    duplicates_suppressed: int = 0

    def add(self, other: "CpuCounters") -> None:
        """Accumulate another counter set into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_ops(self) -> int:
        """Sum of all counted operations except the result tallies."""
        return (
            self.intersection_tests
            + self.comparisons
            + self.heap_ops
            + self.code_computations
            + self.structure_ops
            + self.refpoint_tests
            + self.batch_ops
        )


def merge_counters(*counter_sets: CpuCounters) -> CpuCounters:
    """Sum several counter sets into a fresh one."""
    total = CpuCounters()
    for c in counter_sets:
        total.add(c)
    return total


@dataclass
class PhaseTimer:
    """Wall-clock time per named phase.

    Used alongside the simulated cost model so EXPERIMENTS.md can report
    both simulated and measured runtimes.
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    def time(self, phase: str) -> "_PhaseContext":
        """Context manager charging elapsed wall time to *phase*."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def total(self) -> float:
        return sum(self.seconds.values())


class _PhaseContext:
    __slots__ = ("_timer", "_phase", "_start")

    def __init__(self, timer: PhaseTimer, phase: str) -> None:
        self._timer = timer
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._timer.add(self._phase, time.perf_counter() - self._start)
