"""Join results and per-run statistics.

Every join driver (PBSM, S3J, SSSJ, quadtree, brute force) returns a
:class:`JoinResult`: the result pairs of the *filter step* plus a
:class:`JoinStats` record detailed enough to regenerate every figure of the
paper — per-phase I/O, CPU operation counts, simulated runtime split into
I/O and CPU shares, wall time, and redundancy/duplicate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class JoinStats:
    """Everything measured during one join execution."""

    algorithm: str = ""
    #: execution backend of the internal algorithm: "numpy" (columnar
    #: kernels), "python" (kernel fallback), or "" for classic tuple paths
    backend: str = ""
    #: how partition joins were executed: "process" (multiprocess
    #: fan-out), "simulated" (modelled parallelism), or "" for sequential
    executor: str = ""
    #: True when the process executor actually used the zero-copy
    #: shared-memory transport (False when requested but degraded)
    shared_memory: bool = False
    # --- cardinalities -------------------------------------------------
    n_left: int = 0
    n_right: int = 0
    n_results: int = 0
    #: records written during partitioning, including replicas
    records_partitioned: int = 0
    #: replicas beyond the first copy, summed over both inputs
    replicas_created: int = 0
    duplicates_suppressed: int = 0
    #: duplicates removed by a final sort phase (original PBSM only)
    duplicates_sorted_out: int = 0
    # --- partitioning --------------------------------------------------
    n_partitions: int = 0
    repartition_events: int = 0
    #: pairs whose joined size exceeded the memory budget even after the
    #: repartitioning depth limit (degenerate inputs only)
    memory_overruns: int = 0
    peak_memory_bytes: int = 0
    # --- costs ----------------------------------------------------------
    io_units_by_phase: Dict[str, float] = field(default_factory=dict)
    #: pages moved (read + written) per phase, without positioning cost
    io_pages_by_phase: Dict[str, int] = field(default_factory=dict)
    cpu_by_phase: Dict[str, Dict[str, int]] = field(default_factory=dict)
    sim_io_seconds: float = 0.0
    sim_cpu_seconds: float = 0.0
    #: simulated seconds split by phase (io + cpu combined)
    sim_seconds_by_phase: Dict[str, float] = field(default_factory=dict)
    wall_seconds_by_phase: Dict[str, float] = field(default_factory=dict)
    # --- parallel execution timing --------------------------------------
    #: sum of per-task wall seconds, measured inside the workers (parallel
    #: executors only; 0.0 for sequential drivers)
    join_busy_seconds: float = 0.0
    #: parent-observed elapsed time of the task fan-out (the makespan the
    #: busy time is compared against to judge parallel efficiency)
    join_makespan_seconds: float = 0.0
    #: busy seconds per worker (label -> seconds; real executors only)
    worker_busy_seconds: Dict[str, float] = field(default_factory=dict)
    #: worker count the parallel drivers ran with (0 for sequential)
    n_workers: int = 0
    #: task-dispatch policy of the parallel join phase ("static" LPT
    #: chunking or "stealing"; "" for sequential drivers)
    scheduler: str = ""
    #: dispatch units that ran on a different worker than static LPT
    #: packing would have planned (stealing scheduler only)
    tasks_stolen: int = 0
    #: worker-seconds the fan-out paid for but did not fill:
    #: makespan x workers - total busy (the skew penalty, made visible)
    scheduler_idle_seconds: float = 0.0
    #: bytes that actually crossed the process boundary (chunk payloads
    #: out plus result blobs/manifests back; process executor only)
    ipc_bytes_shipped: int = 0
    #: parent-side wall seconds spent on transport work: payload
    #: encode/decode, and for the shm transport the segment build
    ipc_seconds: float = 0.0
    # --- end-to-end timing ----------------------------------------------
    #: wall seconds spent planning before execution (method="auto" only)
    planning_seconds: float = 0.0
    #: wall seconds of the whole spatial_join() call, planning included
    total_wall_seconds: float = 0.0

    @property
    def sim_seconds(self) -> float:
        """Total simulated runtime (the paper's "total runtime" analogue)."""
        return self.sim_io_seconds + self.sim_cpu_seconds

    @property
    def io_units(self) -> float:
        """Total I/O cost in page-transfer units across all phases."""
        return sum(self.io_units_by_phase.values())

    @property
    def wall_seconds(self) -> float:
        return sum(self.wall_seconds_by_phase.values())

    @property
    def worker_utilization(self) -> float:
        """Busy fraction of the paid worker-seconds (busy / (makespan x W)).

        1.0 means every worker was busy for the whole fan-out; the gap to
        1.0 is exactly ``scheduler_idle_seconds`` as a fraction.  0.0 when
        the run was not a real parallel fan-out.
        """
        denom = self.join_makespan_seconds * self.n_workers
        if denom <= 0.0:
            return 0.0
        return self.join_busy_seconds / denom

    @property
    def replication_rate(self) -> float:
        """Partitioned records per input record (1.0 = no redundancy)."""
        base = self.n_left + self.n_right
        if base == 0:
            return 0.0
        return self.records_partitioned / base

    def selectivity(self) -> float:
        """Result count over the input cross-product size (Table 2)."""
        denom = self.n_left * self.n_right
        if denom == 0:
            return 0.0
        return self.n_results / denom


@dataclass
class JoinResult:
    """The output of the filter step of a spatial join.

    ``pairs`` holds ``(left_oid, right_oid)`` tuples.  For self joins the
    conventions of the paper apply: a pair is reported for every pair of
    intersecting *records* (including an object with itself), because the
    filter step operates purely on KPEs.
    """

    pairs: List[Tuple[int, int]]
    stats: JoinStats

    def pair_set(self) -> set:
        """The result as a set — the canonical comparison form in tests."""
        return set(self.pairs)

    def has_duplicates(self) -> bool:
        """True if any pair was reported more than once."""
        return len(self.pairs) != len(set(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)


def empty_result(algorithm: str, n_left: int = 0, n_right: int = 0) -> JoinResult:
    """A result carrying no pairs, used for trivially empty inputs."""
    stats = JoinStats(algorithm=algorithm, n_left=n_left, n_right=n_right)
    return JoinResult(pairs=[], stats=stats)
