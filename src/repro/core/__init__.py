"""Core geometry and bookkeeping primitives shared by every join algorithm.

The module deliberately keeps the record representation primitive: a
key-pointer element (KPE) is a named tuple ``(oid, xl, yl, xh, yh)`` so the
hot loops of the join algorithms can use positional indexing while user-facing
code reads named fields.  This mirrors the paper's model (Section 2) where a
KPE consists of an object identifier and its minimum bounding rectangle.
"""

from repro.core.rect import (
    KPE,
    OID,
    XL,
    YL,
    XH,
    YH,
    area,
    intersection,
    intersects,
    make_kpe,
    mbr_of,
    rect_contains_point,
    valid_kpe,
)
from repro.core.distance import distance_join, expand_for_distance, mbr_distance
from repro.core.phases import (
    ALL_PHASES,
    PHASE_BUILD,
    PHASE_DEDUP,
    PHASE_JOIN,
    PHASE_PARTITION,
    PHASE_REPARTITION,
    PHASE_SORT,
)
from repro.core.refpoint import reference_point
from repro.core.space import Space
from repro.core.stats import CpuCounters, PhaseTimer, merge_counters
from repro.core.report import format_stats, stats_to_dict
from repro.core.result import JoinResult, JoinStats

__all__ = [
    "KPE",
    "OID",
    "XL",
    "YL",
    "XH",
    "YH",
    "ALL_PHASES",
    "PHASE_BUILD",
    "PHASE_DEDUP",
    "PHASE_JOIN",
    "PHASE_PARTITION",
    "PHASE_REPARTITION",
    "PHASE_SORT",
    "CpuCounters",
    "JoinResult",
    "JoinStats",
    "PhaseTimer",
    "Space",
    "area",
    "distance_join",
    "expand_for_distance",
    "format_stats",
    "intersection",
    "intersects",
    "make_kpe",
    "mbr_distance",
    "mbr_of",
    "merge_counters",
    "rect_contains_point",
    "reference_point",
    "stats_to_dict",
    "valid_kpe",
]
