"""The Reference Point Method (RPM) primitive.

Section 3.2.1 of the paper: when the data space is divided into disjoint
partitions and records are replicated into every partition they overlap, the
same result pair ``(r, s)`` is produced once per shared partition.  RPM
assigns each result pair a single *reference point*

    ``x = (max(r.xl, s.xl), min(r.yh, s.yh))``

(the upper-left corner of the intersection rectangle) and reports the pair
only from the partition whose region contains that point.  Because the point
lies inside both ``r`` and ``s``, the owning partition is guaranteed to hold
a copy of each, so every pair is reported *exactly once*.

The region-membership test itself is owned by the partitioning scheme (PBSM
grid tiles, S3J quadtree cells); this module only provides the shared
reference-point computation, at the paper's cost of two comparisons.
"""

from __future__ import annotations

from typing import Tuple


def reference_point(r: Tuple, s: Tuple) -> Tuple[float, float]:
    """Reference point of the pair of intersecting KPEs ``(r, s)``.

    The x-coordinate is the maximum of the left edges and the y-coordinate
    the minimum of the upper edges — the paper's definition verbatim.  The
    result is symmetric in ``r`` and ``s`` and lies inside both rectangles
    whenever they intersect.
    """
    rx = r[1]
    sx = s[1]
    ry = r[4]
    sy = s[4]
    return (rx if rx >= sx else sx, ry if ry <= sy else sy)
