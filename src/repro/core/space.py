"""The data space: the bounding box all partitioning schemes subdivide.

Both PBSM's equidistant grid and S3J's hierarchy of grids subdivide a fixed
rectangular data space.  Real datasets are not confined to the unit square
(and the paper's ``(p)`` edge scaling grows rectangles beyond the original
extent), so every partitioner normalises coordinates against a
:class:`Space` computed from the inputs.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class Space:
    """An axis-aligned rectangular data space with coordinate normalisation.

    Point-normalisation maps the space onto the half-open unit square
    ``[0, 1) x [0, 1)`` (values exactly on the far edge are clamped just
    below 1.0 via integer-cell clamping in the callers), which gives every
    point a *unique* owning cell at every grid resolution — the property the
    Reference Point Method needs.
    """

    __slots__ = ("xl", "yl", "xh", "yh", "width", "height")

    def __init__(self, xl: float, yl: float, xh: float, yh: float) -> None:
        if not (xl <= xh and yl <= yh):
            raise ValueError(f"invalid space ({xl}, {yl}, {xh}, {yh})")
        self.xl = xl
        self.yl = yl
        self.xh = xh
        self.yh = yh
        # Degenerate (zero-extent) axes normalise everything to 0.0.
        self.width = (xh - xl) or 1.0
        self.height = (yh - yl) or 1.0

    @classmethod
    def of(cls, *relations: Iterable[Tuple]) -> "Space":
        """The joint MBR of one or more relations of KPEs.

        An all-empty input yields the unit square so downstream grid maths
        stays well defined.
        """
        import math

        xl = yl = math.inf
        xh = yh = -math.inf
        seen = False
        for rel in relations:
            for k in rel:
                seen = True
                if k[1] < xl:
                    xl = k[1]
                if k[2] < yl:
                    yl = k[2]
                if k[3] > xh:
                    xh = k[3]
                if k[4] > yh:
                    yh = k[4]
        if not seen:
            return cls(0.0, 0.0, 1.0, 1.0)
        return cls(xl, yl, xh, yh)

    def norm_x(self, x: float) -> float:
        """Normalise an x coordinate into [0, 1] (callers clamp cells)."""
        return (x - self.xl) / self.width

    def norm_y(self, y: float) -> float:
        """Normalise a y coordinate into [0, 1] (callers clamp cells)."""
        return (y - self.yl) / self.height

    def contains(self, x: float, y: float) -> bool:
        """Closed containment of a point in the space."""
        return self.xl <= x <= self.xh and self.yl <= y <= self.yh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Space({self.xl}, {self.yl}, {self.xh}, {self.yh})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Space):
            return NotImplemented
        return (self.xl, self.yl, self.xh, self.yh) == (
            other.xl,
            other.yl,
            other.xh,
            other.yh,
        )

    def __hash__(self) -> int:
        return hash((self.xl, self.yl, self.xh, self.yh))
