"""Canonical phase names for cost and wall-time attribution.

Every driver attributes I/O, CPU counts, and wall time to named phases;
these constants are the single source of those names.  They used to be
re-declared per driver (and ``pbsm/parallel.py`` used bare string
literals), which let the keys of ``wall_seconds_by_phase`` /
``io_units_by_phase`` drift apart between drivers reporting the same
phase — import them from here instead.
"""

from __future__ import annotations

#: Partitioning the inputs (PBSM tiles, S3J level files, SHJ buckets).
PHASE_PARTITION = "partition"
#: PBSM's recursive re-partitioning of over-budget partitions.
PHASE_REPARTITION = "repartition"
#: The in-memory join of partition/level pairs (or the global sweep).
PHASE_JOIN = "join"
#: Final sort-based duplicate removal (original PBSM only).
PHASE_DEDUP = "dedup"
#: Sorting inputs or level files (SSSJ, S3J).
PHASE_SORT = "sort"
#: Building index structures (R-tree joins).
PHASE_BUILD = "build"

ALL_PHASES = (
    PHASE_PARTITION,
    PHASE_REPARTITION,
    PHASE_JOIN,
    PHASE_DEDUP,
    PHASE_SORT,
    PHASE_BUILD,
)

__all__ = [
    "ALL_PHASES",
    "PHASE_BUILD",
    "PHASE_DEDUP",
    "PHASE_JOIN",
    "PHASE_PARTITION",
    "PHASE_REPARTITION",
    "PHASE_SORT",
]
