"""Shim so `pip install -e .` works in offline environments without wheel.

All real metadata lives in pyproject.toml; setuptools reads it from there.
"""

from setuptools import setup

setup()
