"""The zero-copy shared-memory transport of ParallelPBSM.

Three claims are pinned here: (1) the shm executor's output is
byte-identical to both the simulated executor and the legacy pickle
transport, with identical simulated costs and counters; (2) the pipe
traffic collapses — task tuples and manifests instead of pickled record
lists — by well over the 10x the benchmarks demand; (3) every rung of
the degradation ladder (``workers=1``, ``REPRO_DISABLE_SHM``, numpy
gated off or absent) lands on a byte-identical fallback.  The store and
CSR plumbing get their own unit tests.  Everything numpy-dependent
skips cleanly, so the no-numpy CI job runs this file too and exercises
the missing-numpy degrade for real.
"""

import pickle

import pytest

from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel, mb
from repro.io.disk import SimulatedDisk
from repro.kernels.backend import numpy_enabled, python_backend
from repro.kernels.shm import SharedColumnarStore, columnar_arrays, shm_enabled
from repro.pbsm.grid import TileGrid
from repro.pbsm.parallel import ParallelPBSM
from repro.pbsm.partitioner import partition_csr, partition_relation

from tests.conftest import random_kpes

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="columnar kernels need numpy"
)
needs_shm = pytest.mark.skipif(
    not shm_enabled(), reason="needs numpy and platform shared memory"
)

LEFT = random_kpes(1200, seed=71, max_edge=0.03)
RIGHT = random_kpes(1200, seed=72, start_oid=10**6, max_edge=0.03)
MEMORY = mb(0.05)


def run(workers, *, executor="process", shared_memory=False, internal="sweep_numpy"):
    join = ParallelPBSM(
        MEMORY,
        workers,
        internal=internal,
        executor=executor,
        shared_memory=shared_memory,
    )
    return join.run(LEFT, RIGHT)


# ----------------------------------------------------------------------
# SharedColumnarStore
# ----------------------------------------------------------------------
@needs_shm
class TestSharedColumnarStore:
    def test_create_attach_round_trip(self):
        import numpy as np

        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7),
        }
        with SharedColumnarStore.create(arrays) as store:
            manifest = pickle.loads(pickle.dumps(store.manifest))
            other = SharedColumnarStore.attach(manifest)
            try:
                assert list(other.keys()) == ["a", "b"]
                assert (other["a"] == arrays["a"]).all()
                assert other["b"] == pytest.approx(arrays["b"])
                assert not other.owner and store.owner
            finally:
                other.close()

    def test_gather_copies(self):
        import numpy as np

        from repro.kernels.columnar import ColumnarRelation

        cols = ColumnarRelation.from_kpes(LEFT[:50])
        with SharedColumnarStore.create(columnar_arrays("L", cols)) as store:
            sub = store.gather("L", np.array([3, 1, 3], dtype=np.int64))
            assert sub.oid.tolist() == [LEFT[3][0], LEFT[1][0], LEFT[3][0]]
            # A gathered relation is private: mutating it must not write
            # through to the mapped segment.
            sub.xl[:] = -1.0
            assert store["L.xl"][3] == LEFT[3][1]

    def test_unlink_is_idempotent(self):
        import numpy as np

        store = SharedColumnarStore.create({"x": np.zeros(4)})
        try:
            store.close()
        finally:
            store.unlink()
        store.unlink()  # second unlink must not raise

    def test_empty_arrays_supported(self):
        import numpy as np

        with SharedColumnarStore.create({"x": np.empty(0, dtype=np.int64)}) as store:
            assert store["x"].shape == (0,)


# ----------------------------------------------------------------------
# CSR partition indices
# ----------------------------------------------------------------------
class TestCsrPartitioning:
    def _partition(self, emit):
        from repro.core.space import Space

        grid = TileGrid(Space(0.0, 0.0, 1.0, 1.0), 4, 4, 4, mapping="hash")
        disk = SimulatedDisk(CostModel())
        files, written = partition_relation(
            LEFT[:200], grid, disk, 20, CpuCounters(), "L", emit=emit
        )
        return files, written, disk

    def test_ids_mirror_records(self):
        rec_files, rec_written, rec_disk = self._partition("records")
        id_files, id_written, id_disk = self._partition("ids")
        assert id_written == rec_written
        # Same charged I/O, same file shapes — only the payload differs.
        assert id_disk.total_units() == rec_disk.total_units()
        for rec_file, id_file in zip(rec_files, id_files):
            records = rec_file.read_all()
            ids = id_file.read_all()
            assert [LEFT[i] for i in ids] == records

    def test_partition_csr_concatenates_in_order(self):
        id_files, _, _ = self._partition("ids")
        offsets, ids = partition_csr(id_files)
        assert offsets[0] == 0 and offsets[-1] == len(ids)
        for pid, file in enumerate(id_files):
            assert ids[offsets[pid]:offsets[pid + 1]] == file.read_all()

    def test_unknown_emit_rejected(self):
        with pytest.raises(ValueError):
            self._partition("columns")


# ----------------------------------------------------------------------
# executor parity
# ----------------------------------------------------------------------
@needs_shm
class TestShmExecutorParity:
    @pytest.mark.parametrize("internal", ["sweep_numpy", "sweep_trie"])
    def test_byte_identical_across_executors(self, internal):
        sim = run(2, executor="simulated", internal=internal)
        pick = run(2, internal=internal)
        shm = run(2, shared_memory=True, internal=internal)
        assert shm.pairs == sim.pairs  # same pairs, same order
        assert shm.pairs == pick.pairs
        assert shm.stats.duplicates_suppressed == sim.stats.duplicates_suppressed
        assert shm.stats.cpu_by_phase == sim.stats.cpu_by_phase
        assert shm.stats.io_units_by_phase == sim.stats.io_units_by_phase
        assert shm.stats.sim_seconds == pytest.approx(sim.stats.sim_seconds)

    def test_shm_ships_far_fewer_bytes(self):
        pick = run(2)
        shm = run(2, shared_memory=True)
        assert shm.stats.shared_memory and not pick.stats.shared_memory
        assert pick.stats.ipc_bytes_shipped > 0
        assert shm.stats.ipc_bytes_shipped > 0
        assert (
            pick.stats.ipc_bytes_shipped
            >= 10 * shm.stats.ipc_bytes_shipped
        )

    def test_self_join_byte_identical(self):
        sim = ParallelPBSM(MEMORY, 2, internal="sweep_numpy").run(LEFT, LEFT)
        shm = ParallelPBSM(
            MEMORY,
            2,
            internal="sweep_numpy",
            executor="process",
            shared_memory=True,
        ).run(LEFT, LEFT)
        assert shm.pairs == sim.pairs

    def test_workers_1_spawns_no_pool_or_segment(self):
        one = run(1, shared_memory=True)
        two = run(2, shared_memory=True)
        # Degenerate case: in-process loop, no pool, no segments, no IPC.
        assert not one.stats.shared_memory
        assert one.stats.ipc_bytes_shipped == 0
        assert one.stats.worker_busy_seconds == {}
        assert two.stats.shared_memory


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
class TestDegradation:
    def test_disable_env_falls_back_to_pickle(self, monkeypatch):
        # Works with or without numpy: the request degrades, the result
        # must match the simulated executor bit for bit.
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert not shm_enabled()
        internal = "sweep_numpy" if numpy_enabled() else "sweep_trie"
        sim = run(2, executor="simulated", internal=internal)
        degraded = run(2, shared_memory=True, internal=internal)
        assert degraded.pairs == sim.pairs
        assert not degraded.stats.shared_memory
        if numpy_enabled():
            assert degraded.stats.ipc_bytes_shipped > 0  # pickle transport ran

    @needs_numpy
    def test_numpy_gate_closes_shm(self):
        with python_backend():
            assert not shm_enabled()
            sim = run(2, executor="simulated", internal="sweep_trie")
            degraded = run(2, shared_memory=True, internal="sweep_trie")
        assert degraded.pairs == sim.pairs
        assert not degraded.stats.shared_memory

    def test_missing_numpy_degrades(self):
        # In the no-numpy CI job this runs for real; with numpy it is
        # covered by the gate test above, so just pin the switch.
        if not numpy_enabled():
            assert not shm_enabled()
            sim = run(2, executor="simulated", internal="sweep_trie")
            degraded = run(2, shared_memory=True, internal="sweep_trie")
            assert degraded.pairs == sim.pairs
            assert not degraded.stats.shared_memory


# ----------------------------------------------------------------------
# API surface
# ----------------------------------------------------------------------
class TestApi:
    def test_shared_memory_requires_workers(self):
        from repro import spatial_join

        with pytest.raises(ValueError, match="requires workers"):
            spatial_join(LEFT, RIGHT, MEMORY, shared_memory=True)

    @needs_shm
    def test_spatial_join_shared_memory(self):
        from repro import spatial_join

        plain = spatial_join(LEFT, RIGHT, MEMORY, workers=2)
        shm = spatial_join(LEFT, RIGHT, MEMORY, workers=2, shared_memory=True)
        assert shm.pairs == plain.pairs
        assert shm.stats.shared_memory

    @needs_shm
    def test_ipc_metrics_exported(self):
        from repro.obs import MetricsRegistry

        shm = run(2, shared_memory=True)
        registry = MetricsRegistry()
        registry.observe_join(shm.stats)
        text = registry.render()
        assert "repro_join_ipc_bytes_total" in text
        assert 'transport="shm"' in text
