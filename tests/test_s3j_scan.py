"""Unit tests for S3J's synchronized heap-merge scan."""

from repro.core.rect import KPE
from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.io.costmodel import CostModel
from repro.io.disk import SimulatedDisk
from repro.s3j.levelfile import build_level_files, sort_level_files
from repro.s3j.levels import assign_replicated
from repro.s3j.scan import ScanStats, partition_stream, scan_pairs
from repro.sfc.locational import curve_decoder, curve_encoder, is_ancestor_code

from tests.conftest import random_kpes

UNIT = Space(0.0, 0.0, 1.0, 1.0)
Z_ENC = curve_encoder("peano")
Z_DEC = curve_decoder("peano")
MAX_LEVEL = 6


def make_sorted_files(kpes, prefix, disk):
    entries = assign_replicated(kpes, UNIT, MAX_LEVEL, Z_ENC, CpuCounters())
    files, _ = build_level_files(entries, MAX_LEVEL, disk, prefix)
    return sort_level_files(files, 1_000_000, CpuCounters())


class TestPartitionStream:
    def test_groups_by_code(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        from repro.io.pagefile import PageFile

        f = PageFile(disk, 24, "L2")
        a, b, c = (
            KPE(1, 0, 0, 0.1, 0.1),
            KPE(2, 0, 0, 0.1, 0.1),
            KPE(3, 0.9, 0.9, 1, 1),
        )
        f.records.extend([(5, a), (5, b), (9, c)])
        parts = list(partition_stream(f, 2, rel=0, decoder=Z_DEC))
        assert [(p.code, len(p.kpes)) for p in parts] == [(5, 2), (9, 1)]
        assert parts[0].level == 2
        assert parts[0].rel == 0

    def test_decodes_cell_coordinates(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        from repro.io.pagefile import PageFile

        f = PageFile(disk, 24, "L1")
        f.records.append((3, KPE(1, 0.6, 0.6, 0.9, 0.9)))
        (part,) = partition_stream(f, 1, 0, Z_DEC)
        assert (part.ix, part.iy) == Z_DEC(3, 1)

    def test_level0_cell_is_origin(self):
        disk = SimulatedDisk(CostModel(page_size=200))
        from repro.io.pagefile import PageFile

        f = PageFile(disk, 20, "L0")
        f.records.append((0, KPE(1, 0, 0, 1, 1)))
        (part,) = partition_stream(f, 0, 1, Z_DEC)
        assert (part.ix, part.iy) == (0, 0)
        assert part.bytes == 20


class TestScanPairs:
    def _scan(self, left_kpes, right_kpes, memory=1_000_000):
        disk = SimulatedDisk(CostModel(page_size=200))
        files_left = make_sorted_files(left_kpes, "R", disk)
        files_right = make_sorted_files(right_kpes, "S", disk)
        counters = CpuCounters()
        stats = ScanStats()
        pairs = list(
            scan_pairs(
                files_left, files_right, MAX_LEVEL, Z_DEC, counters, memory, stats
            )
        )
        return pairs, counters, stats

    def test_pairs_are_path_related(self):
        left = random_kpes(150, 1, max_edge=0.15)
        right = random_kpes(150, 2, start_oid=10_000, max_edge=0.15)
        pairs, _, _ = self._scan(left, right)
        assert pairs, "expected some partition pairs"
        for pl, pr in pairs:
            assert pl.rel == 0 and pr.rel == 1
            shallow, deep = (pl, pr) if pl.level <= pr.level else (pr, pl)
            assert is_ancestor_code(shallow.code, shallow.level, deep.code, deep.level)

    def test_each_cell_pair_joined_once(self):
        left = random_kpes(150, 3, max_edge=0.15)
        right = random_kpes(150, 4, start_oid=10_000, max_edge=0.15)
        pairs, _, _ = self._scan(left, right)
        keys = [
            (pl.level, pl.code, pr.level, pr.code) for pl, pr in pairs
        ]
        assert len(keys) == len(set(keys))

    def test_same_cell_pairs_present(self):
        k = KPE(1, 0.1, 0.1, 0.12, 0.12)
        j = KPE(2, 0.11, 0.11, 0.13, 0.13)
        pairs, _, _ = self._scan([k], [j])
        assert any(
            pl.level == pr.level and pl.code == pr.code for pl, pr in pairs
        )

    def test_heap_ops_counted(self):
        left = random_kpes(50, 5, max_edge=0.1)
        right = random_kpes(50, 6, start_oid=999, max_edge=0.1)
        _, counters, _ = self._scan(left, right)
        assert counters.heap_ops > 0

    def test_peak_stack_bytes_tracked(self):
        left = random_kpes(100, 7, max_edge=0.3)
        right = random_kpes(100, 8, start_oid=999, max_edge=0.3)
        _, _, stats = self._scan(left, right)
        assert stats.peak_stack_bytes > 0

    def test_memory_overrun_detected_with_tiny_budget(self):
        left = random_kpes(200, 9, max_edge=0.3)
        right = random_kpes(200, 10, start_oid=999, max_edge=0.3)
        _, _, stats = self._scan(left, right, memory=64)
        assert stats.memory_overruns > 0

    def test_empty_relation_yields_nothing(self):
        pairs, _, _ = self._scan(random_kpes(20, 11), [])
        assert pairs == []
