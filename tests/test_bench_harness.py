"""Tests for the experiment harness: rendering, workloads, registry, CLI."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    EXTENDED_MEMORY_FRACTIONS,
    ExperimentResult,
    LA_MEMORY_FRACTION,
    MEMORY_FRACTIONS,
    ascii_chart,
    format_table,
    input_bytes,
    la_memory,
    memory_for_fraction,
)
from repro.bench.__main__ import main as bench_main

from tests.conftest import random_kpes


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bb"], [(1, 2.5), (100, 0.001)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_number_formatting(self):
        text = format_table(["v"], [(1234567,), (0.00001,), (12.3456,)])
        assert "1,234,567" in text
        assert "1.00e-05" in text
        assert "12.3" in text


class TestExperimentResult:
    def test_to_text_sections(self):
        result = ExperimentResult(
            exp_id="X1",
            title="demo",
            columns=["c"],
            rows=[(1,)],
            notes=["a note"],
            paper_claim="a claim",
        )
        text = result.to_text()
        assert "== X1: demo ==" in text
        assert "paper: a claim" in text
        assert "note: a note" in text


class TestAsciiChart:
    def test_renders_series(self):
        chart = ascii_chart({"s": [(0, 0), (1, 1), (2, 4)]}, width=20, height=6)
        assert "o = s" in chart
        assert chart.count("o") >= 3

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_constant_series(self):
        chart = ascii_chart({"flat": [(0, 5), (1, 5)]}, width=10, height=4)
        assert "flat" in chart


class TestWorkloadHelpers:
    def test_fraction_grids_sorted_and_related(self):
        assert list(MEMORY_FRACTIONS) == sorted(MEMORY_FRACTIONS)
        assert set(MEMORY_FRACTIONS) < set(EXTENDED_MEMORY_FRACTIONS)

    def test_la_fraction_matches_paper_arithmetic(self):
        # 2.5 MB over (128,971 + 131,461) * 20 bytes ~= 50%
        assert 0.4 < LA_MEMORY_FRACTION < 0.6

    def test_memory_for_fraction(self):
        left = random_kpes(100, 1)
        right = random_kpes(50, 2)
        assert input_bytes(left, right) == 150 * 20
        assert memory_for_fraction(left, right, 0.5) == 75 * 20
        # tiny fractions are floored to a usable budget
        assert memory_for_fraction(left, right, 1e-9) >= 4 * 20

    def test_la_memory(self):
        left = random_kpes(100, 3)
        right = random_kpes(100, 4)
        assert la_memory(left, right) == memory_for_fraction(
            left, right, LA_MEMORY_FRACTION
        )


class TestRegistry:
    def test_every_paper_artifact_present(self):
        for key in (
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
        ):
            assert key in EXPERIMENTS, key

    def test_all_entries_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table1" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["fig99"])

    def test_runs_and_writes_output(self, tmp_path, capsys):
        assert bench_main(["table1", "--out", str(tmp_path)]) == 0
        saved = (tmp_path / "table1.txt").read_text()
        assert "Table 1" in saved
        assert "LA_RR" in capsys.readouterr().out

    def test_chart_flag(self, capsys):
        assert bench_main(["ablation_t_factor", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "x: t in" in out
