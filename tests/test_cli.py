"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.fileio import load_relation, read_csv


class TestGenerate:
    def test_generate_npy(self, tmp_path, capsys):
        out = tmp_path / "rel.npy"
        assert main(["generate", "--pattern", "uniform", "--n", "200", str(out)]) == 0
        assert len(load_relation(out)) == 200
        assert "wrote 200" in capsys.readouterr().out

    def test_generate_csv_patterns(self, tmp_path):
        for pattern in ("tiger", "manhattan", "radial", "mixed", "clustered"):
            out = tmp_path / f"{pattern}.csv"
            assert main(
                ["generate", "--pattern", pattern, "--n", "50", str(out)]
            ) == 0
            assert len(load_relation(out)) == 50

    def test_generate_deterministic_seed(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        main(["generate", "--n", "30", "--seed", "9", str(a)])
        main(["generate", "--n", "30", "--seed", "9", str(b)])
        assert read_csv(a) == read_csv(b)


class TestInfo:
    def test_info(self, tmp_path, capsys):
        out = tmp_path / "rel.csv"
        main(["generate", "--n", "100", str(out)])
        capsys.readouterr()
        assert main(["info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "records:   100" in text
        assert "coverage:" in text


class TestJoin:
    def _two_relations(self, tmp_path):
        left = tmp_path / "left.npy"
        right = tmp_path / "right.csv"
        main(["generate", "--n", "400", "--seed", "1", str(left)])
        main(
            [
                "generate",
                "--n",
                "400",
                "--seed",
                "2",
                "--start-oid",
                "100000",
                str(right),
            ]
        )
        return left, right

    @pytest.mark.parametrize("method", ["pbsm", "s3j", "sssj", "shj", "rtree"])
    def test_all_methods(self, tmp_path, capsys, method):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            ["join", str(left), str(right), "--method", method, "--memory-mb", "0.05"]
        ) == 0
        assert "results" in capsys.readouterr().out

    def test_methods_agree_via_output_files(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        pair_files = []
        for method in ("pbsm", "s3j"):
            out = tmp_path / f"{method}.csv"
            main(
                [
                    "join",
                    str(left),
                    str(right),
                    "--method",
                    method,
                    "--memory-mb",
                    "0.05",
                    "--out",
                    str(out),
                ]
            )
            pair_files.append(set(out.read_text().splitlines()[1:]))
        assert pair_files[0] == pair_files[1]

    def test_self_join_same_path(self, tmp_path, capsys):
        left, _ = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(["join", str(left), str(left), "--memory-mb", "0.05"]) == 0
        assert "results" in capsys.readouterr().out

    def test_kwargs_forwarded(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "pbsm",
                "--internal",
                "sweep_trie",
                "--dedup",
                "sort",
                "--memory-mb",
                "0.05",
            ]
        )
        assert "PBSM(sweep_trie,PD)" in capsys.readouterr().out

    def test_dedup_twolayer_sequential(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "pbsm",
                "--dedup",
                "twolayer",
                "--memory-mb",
                "0.05",
            ]
        ) == 0
        assert ",2L)" in capsys.readouterr().out

    def test_dedup_twolayer_parallel_full_stack(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "pbsm",
                "--dedup",
                "twolayer",
                "--workers",
                "2",
                "--scheduler",
                "stealing",
                "--memory-mb",
                "0.05",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "ParallelPBSM(" in out
        assert ",2L," in out

    def test_dedup_sort_with_workers_fails_fast(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "pbsm",
                "--dedup",
                "sort",
                "--workers",
                "2",
                "--memory-mb",
                "0.05",
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "--dedup sort" in err
        assert "--workers" in err

    @pytest.mark.parametrize(
        "extra",
        [
            ["--scheduler", "stealing"],
            ["--shm"],
        ],
    )
    def test_dedup_sort_fails_fast_with_any_parallel_flag(
        self, tmp_path, capsys, extra
    ):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "pbsm",
                "--dedup",
                "sort",
                "--workers",
                "2",
                *extra,
                "--memory-mb",
                "0.05",
            ]
        ) == 2
        assert "--dedup sort" in capsys.readouterr().err

    def test_self_join_relative_vs_resolved_path(self, tmp_path, capsys, monkeypatch):
        left, _ = self._two_relations(tmp_path)
        monkeypatch.chdir(tmp_path)
        capsys.readouterr()
        # ./left.npy and left.npy are the same file: still a self join.
        assert main(
            ["join", f"./{left.name}", left.name, "--memory-mb", "0.05"]
        ) == 0
        assert "results" in capsys.readouterr().out

    def test_join_auto_prints_plan(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            ["join", str(left), str(right), "--method", "auto", "--memory-mb", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "results" in out
        assert "JOIN PLAN" in out
        assert "chosen" in out

    def test_join_auto_ignores_fixed_knobs(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "join",
                str(left),
                str(right),
                "--method",
                "auto",
                "--internal",
                "sweep_trie",
                "--memory-mb",
                "0.05",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "ignored with --method auto" in captured.err
        assert "JOIN PLAN" in captured.out


class TestExplain:
    def _two_relations(self, tmp_path):
        return TestJoin._two_relations(self, tmp_path)

    def test_explain_without_execution(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(["explain", str(left), str(right), "--memory-mb", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "JOIN PLAN" in out
        assert "candidates (by estimated simulated seconds):" in out
        # (no assertion on est-vs-actual: the shared DEFAULT_CACHE may
        # hold an already-executed plan for these relations)

    def test_explain_execute_verbose(self, tmp_path, capsys):
        left, right = self._two_relations(tmp_path)
        capsys.readouterr()
        assert main(
            [
                "explain",
                str(left),
                str(right),
                "--memory-mb",
                "0.05",
                "--execute",
                "--verbose",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "estimated vs. actual" in out
        assert "phase estimate" in out
