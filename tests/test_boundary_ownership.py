"""Boundary-exact ownership: every engine agrees on tile-edge pairs.

Any exactly-once duplicate scheme lives or dies on its boundary
semantics: a reference point (or a corner class) computed for a corner
sitting *exactly on* a tile edge must land in exactly one tile under the
same half-open convention everywhere — the scalar ``reference_point``,
the batched ``kernels/rpm.py`` path, and the two-layer corner classifier
all against ``TILE_HASH_X/Y``'s clamped integer-cell arithmetic in
``pbsm/grid.py``.  These property tests construct rectangles on a
coordinate lattice that contains every tile edge of the grids in play
(plus the grid min/max edges, via sentinel point MBRs pinning the data
space), so intersection corners fall on edges constantly rather than
almost never, and assert three-way pair-set parity (rpm / sort /
twolayer) across the list engine, the columnar kernel path and S3J.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import Space
from repro.core.stats import CpuCounters
from repro.internal import INTERNAL_ALGORITHMS, brute_force_pairs
from repro.io.costmodel import mb
from repro.kernels.backend import numpy_enabled
from repro.pbsm import PBSM, TileGrid
from repro.pbsm.twolayer import (
    bottom_left_refpoint,
    twolayer_partition_join,
)
from repro.s3j import S3J

# Every tile edge of a 1x1, 2x2, 3x3, 4x4 or 6x6 grid over [0, 1]^2 is a
# multiple of 1/12 — drawing corners from this lattice makes
# exactly-on-edge intersections the common case, not a fluke.
LATTICE = [i / 12.0 for i in range(13)]

#: Sentinel point MBRs pinning the data space to [0, 1]^2 so tile edges
#: stay at lattice positions; the corner points also exercise the grid
#: min/max edges (the clamped top-right cell).
SENTINELS_LEFT = [(90_001, 0.0, 0.0, 0.0, 0.0), (90_002, 1.0, 1.0, 1.0, 1.0)]
SENTINELS_RIGHT = [(91_001, 0.0, 0.0, 0.0, 0.0), (91_002, 1.0, 1.0, 1.0, 1.0)]


@st.composite
def lattice_rects(draw, start_oid=0):
    """Rectangles (degenerate ones included) with lattice corners."""
    n = draw(st.integers(min_value=3, max_value=25))
    recs = []
    for i in range(n):
        xl = draw(st.sampled_from(LATTICE))
        yl = draw(st.sampled_from(LATTICE))
        xh = draw(st.sampled_from([c for c in LATTICE if c >= xl]))
        yh = draw(st.sampled_from([c for c in LATTICE if c >= yl]))
        recs.append((start_oid + i, xl, yl, xh, yh))
    return recs


def engine_pair_sets(left, right):
    """Every (engine, dedup) combination's pair set, labelled."""
    out = {}
    for dedup in ("rpm", "sort", "twolayer"):
        out[f"list/{dedup}"] = PBSM(
            mb(0.05), internal="sweep_list", dedup=dedup, tiles_per_partition=16
        ).run(left, right).pair_set()
        if numpy_enabled():
            out[f"kernel/{dedup}"] = PBSM(
                mb(0.05),
                internal="sweep_numpy",
                dedup=dedup,
                tiles_per_partition=16,
            ).run(left, right).pair_set()
    out["s3j"] = S3J(mb(0.05)).run(left, right).pair_set()
    return out


class TestBoundaryExactParity:
    @settings(max_examples=25, deadline=None)
    @given(left=lattice_rects(), right=lattice_rects(start_oid=1000))
    def test_three_way_parity_on_tile_edges(self, left, right):
        left = left + SENTINELS_LEFT
        right = right + SENTINELS_RIGHT
        truth = set(brute_force_pairs(left, right))
        for name, pairs in engine_pair_sets(left, right).items():
            assert pairs == truth, f"{name} diverges from brute force"

    @settings(max_examples=25, deadline=None)
    @given(
        left=lattice_rects(),
        right=lattice_rects(start_oid=1000),
        nx=st.sampled_from([1, 2, 3, 4, 6]),
        n_partitions=st.sampled_from([1, 2, 4]),
    )
    def test_twolayer_exactly_once_across_partitions(
        self, left, right, nx, n_partitions
    ):
        # Summed over all partitions of an explicit grid, the two-layer
        # mini-joins must emit every intersecting pair exactly once —
        # no per-pair filtering exists to catch a double report.
        if nx * nx < n_partitions:
            n_partitions = nx * nx
        grid = TileGrid(Space(0.0, 0.0, 1.0, 1.0), nx, nx, n_partitions)
        internal = INTERNAL_ALGORITHMS["sweep_list"]
        emitted = []
        for pid in range(n_partitions):
            emitted.extend(
                twolayer_partition_join(
                    left, right, grid, pid, internal, CpuCounters()
                )
            )
        truth = brute_force_pairs(left, right)
        assert sorted(emitted) == sorted(truth)

    @settings(max_examples=40, deadline=None)
    @given(
        xl=st.sampled_from(LATTICE),
        yl=st.sampled_from(LATTICE),
        w=st.sampled_from([0.0, 1.0 / 12.0, 0.25]),
        h=st.sampled_from([0.0, 1.0 / 12.0, 0.25]),
        nx=st.sampled_from([2, 3, 4, 6]),
    )
    def test_owner_tile_contains_both_inputs(self, xl, yl, w, h, nx):
        # The bottom-left ownership point of any intersecting pair is a
        # point of both rectangles, so the owner tile must appear in both
        # rectangles' tile lists — ownership can never escape to a tile
        # either input was not replicated to.  Degenerate point MBRs and
        # slivers (w or h zero) are the sharpest instances.
        r = (1, xl, yl, min(1.0, xl + w), min(1.0, yl + h))
        s = (2, xl, yl, min(1.0, xl + 0.25), min(1.0, yl + 0.25))
        grid = TileGrid(Space(0.0, 0.0, 1.0, 1.0), nx, nx, 1)
        x, y = bottom_left_refpoint(r, s)
        owner = grid.tile_of_point(x, y)
        assert owner in set(grid.tiles_for_rect(r))
        assert owner in set(grid.tiles_for_rect(s))
