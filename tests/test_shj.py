"""Tests for the spatial hash join (replication on one relation only)."""

import pytest

from repro.core.phases import PHASE_JOIN, PHASE_PARTITION
from repro.core.rect import KPE
from repro.internal import brute_force_pairs
from repro.shj import SpatialHashJoin, spatial_hash_join

from tests.conftest import random_kpes


class TestConfiguration:
    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            SpatialHashJoin(0)


@pytest.mark.parametrize("memory", [512, 4096, 10**7])
class TestCorrectness:
    def test_matches_brute_force(self, memory, small_pair):
        left, right = small_pair
        res = SpatialHashJoin(memory).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()

    def test_skewed(self, memory, clustered_pair):
        left, right = clustered_pair
        res = SpatialHashJoin(memory).run(left, right)
        assert res.pair_set() == set(brute_force_pairs(left, right))
        assert not res.has_duplicates()


class TestReplicationModel:
    def test_no_duplicates_means_no_suppression(self, small_pair):
        """The build side is never replicated, so each pair appears once
        and no dedup machinery exists."""
        left, right = small_pair
        res = SpatialHashJoin(2048).run(left, right)
        assert res.stats.duplicates_suppressed == 0
        assert res.stats.duplicates_sorted_out == 0

    def test_probe_side_replicated_build_side_not(self):
        """Total partitioned records: |R| exactly, plus >= the surviving
        probe records."""
        left = random_kpes(200, 21, max_edge=0.05)
        right = random_kpes(200, 22, start_oid=9_000, max_edge=0.05)
        res = SpatialHashJoin(1024).run(left, right)
        assert res.stats.records_partitioned >= len(left)
        assert res.stats.replicas_created >= 0

    def test_asymmetric_sides(self):
        """Swapping build and probe must not change the result (modulo
        pair orientation)."""
        left = random_kpes(150, 23, max_edge=0.08)
        right = random_kpes(150, 24, start_oid=9_000, max_edge=0.08)
        forward = SpatialHashJoin(2048).run(left, right)
        backward = SpatialHashJoin(2048).run(right, left)
        assert forward.pair_set() == {(b, a) for a, b in backward.pair_set()}


class TestEdgeCases:
    def test_empty_inputs(self):
        assert len(SpatialHashJoin(1024).run([], random_kpes(5, 25))) == 0
        assert len(SpatialHashJoin(1024).run(random_kpes(5, 25), [])) == 0

    def test_probe_records_outside_all_buckets_dropped_safely(self):
        left = [KPE(1, 0.1, 0.1, 0.2, 0.2)]
        right = [KPE(10, 0.8, 0.8, 0.9, 0.9)]  # overlaps no bucket extent
        res = SpatialHashJoin(1024).run(left, right)
        assert len(res) == 0

    def test_self_join(self):
        rel = random_kpes(120, 26, max_edge=0.1)
        res = SpatialHashJoin(1024).run(rel, rel)
        assert res.pair_set() == set(brute_force_pairs(rel, rel))

    def test_convenience(self, small_pair):
        left, right = small_pair
        res = spatial_hash_join(left, right, memory_bytes=2048)
        assert res.pair_set() == set(brute_force_pairs(left, right))

    def test_io_phases_recorded(self, small_pair):
        left, right = small_pair
        res = SpatialHashJoin(2048).run(left, right)
        assert res.stats.io_units_by_phase[PHASE_PARTITION] > 0
        assert res.stats.io_units_by_phase[PHASE_JOIN] > 0
