"""Unit tests for repro.core.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rect import (
    KPE,
    OID,
    SIZEOF_KPE,
    XH,
    XL,
    YH,
    YL,
    area,
    intersection,
    intersects,
    make_kpe,
    mbr_of,
    rect_contains_point,
    valid_kpe,
)


class TestKpeBasics:
    def test_kpe_is_a_tuple(self):
        k = make_kpe(1, 0.0, 0.0, 1.0, 1.0)
        assert isinstance(k, tuple)
        assert k == (1, 0.0, 0.0, 1.0, 1.0)

    def test_positional_indices_match_fields(self):
        k = make_kpe(7, 0.1, 0.2, 0.3, 0.4)
        assert k[OID] == k.oid == 7
        assert k[XL] == k.xl == 0.1
        assert k[YL] == k.yl == 0.2
        assert k[XH] == k.xh == 0.3
        assert k[YH] == k.yh == 0.4

    def test_sizeof_kpe_is_paper_layout(self):
        # 4-byte id plus four 4-byte coordinates
        assert SIZEOF_KPE == 20

    def test_degenerate_point_rectangle_is_valid(self):
        k = make_kpe(1, 0.5, 0.5, 0.5, 0.5)
        assert valid_kpe(k)

    def test_inverted_x_rejected(self):
        with pytest.raises(ValueError):
            make_kpe(1, 0.6, 0.0, 0.5, 1.0)

    def test_inverted_y_rejected(self):
        with pytest.raises(ValueError):
            make_kpe(1, 0.0, 0.6, 1.0, 0.5)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            make_kpe(1, 0.0, 0.0, math.inf, 1.0)
        with pytest.raises(ValueError):
            make_kpe(1, math.nan, 0.0, 1.0, 1.0)

    def test_valid_kpe_rejects_wrong_arity(self):
        assert not valid_kpe((1, 0.0, 0.0, 1.0))

    def test_valid_kpe_rejects_inverted(self):
        assert not valid_kpe((1, 1.0, 0.0, 0.0, 1.0))

    def test_valid_kpe_rejects_nan(self):
        assert not valid_kpe((1, math.nan, 0.0, 1.0, 1.0))


class TestIntersects:
    def test_overlapping(self):
        a = make_kpe(1, 0.0, 0.0, 0.5, 0.5)
        b = make_kpe(2, 0.4, 0.4, 1.0, 1.0)
        assert intersects(a, b)
        assert intersects(b, a)

    def test_disjoint_x(self):
        a = make_kpe(1, 0.0, 0.0, 0.3, 1.0)
        b = make_kpe(2, 0.4, 0.0, 1.0, 1.0)
        assert not intersects(a, b)

    def test_disjoint_y(self):
        a = make_kpe(1, 0.0, 0.0, 1.0, 0.3)
        b = make_kpe(2, 0.0, 0.4, 1.0, 1.0)
        assert not intersects(a, b)

    def test_touching_edge_counts_as_intersecting(self):
        a = make_kpe(1, 0.0, 0.0, 0.5, 1.0)
        b = make_kpe(2, 0.5, 0.0, 1.0, 1.0)
        assert intersects(a, b)

    def test_touching_corner_counts_as_intersecting(self):
        a = make_kpe(1, 0.0, 0.0, 0.5, 0.5)
        b = make_kpe(2, 0.5, 0.5, 1.0, 1.0)
        assert intersects(a, b)

    def test_containment_intersects(self):
        outer = make_kpe(1, 0.0, 0.0, 1.0, 1.0)
        inner = make_kpe(2, 0.4, 0.4, 0.6, 0.6)
        assert intersects(outer, inner)
        assert intersects(inner, outer)

    def test_self_intersects(self):
        a = make_kpe(1, 0.1, 0.2, 0.3, 0.4)
        assert intersects(a, a)


class TestIntersection:
    def test_overlap_rectangle(self):
        a = make_kpe(1, 0.0, 0.0, 0.6, 0.6)
        b = make_kpe(2, 0.4, 0.2, 1.0, 1.0)
        assert intersection(a, b) == (0.4, 0.2, 0.6, 0.6)

    def test_disjoint_returns_none(self):
        a = make_kpe(1, 0.0, 0.0, 0.2, 0.2)
        b = make_kpe(2, 0.5, 0.5, 1.0, 1.0)
        assert intersection(a, b) is None

    def test_touching_returns_degenerate(self):
        a = make_kpe(1, 0.0, 0.0, 0.5, 1.0)
        b = make_kpe(2, 0.5, 0.0, 1.0, 1.0)
        assert intersection(a, b) == (0.5, 0.0, 0.5, 1.0)


class TestAreaAndMbr:
    def test_area(self):
        assert area(make_kpe(1, 0.0, 0.0, 0.5, 0.25)) == pytest.approx(0.125)

    def test_area_degenerate_is_zero(self):
        assert area(make_kpe(1, 0.3, 0.3, 0.3, 0.9)) == 0.0

    def test_mbr_of_empty_is_none(self):
        assert mbr_of([]) is None

    def test_mbr_of_single(self):
        k = make_kpe(1, 0.1, 0.2, 0.3, 0.4)
        assert mbr_of([k]) == (0.1, 0.2, 0.3, 0.4)

    def test_mbr_of_many(self):
        ks = [
            make_kpe(1, 0.1, 0.5, 0.2, 0.6),
            make_kpe(2, 0.0, 0.7, 0.05, 0.9),
            make_kpe(3, 0.3, 0.2, 0.9, 0.4),
        ]
        assert mbr_of(ks) == (0.0, 0.2, 0.9, 0.9)

    def test_contains_point_closed(self):
        k = make_kpe(1, 0.0, 0.0, 1.0, 1.0)
        assert rect_contains_point(k, 0.0, 0.0)
        assert rect_contains_point(k, 1.0, 1.0)
        assert not rect_contains_point(k, 1.0001, 0.5)


rect_coords = st.tuples(
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
    st.floats(0, 1, allow_nan=False),
)


def _norm(coords):
    x1, y1, x2, y2 = coords
    return (min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestIntersectsProperties:
    @given(rect_coords, rect_coords)
    def test_symmetry(self, ca, cb):
        a = KPE(1, *_norm(ca))
        b = KPE(2, *_norm(cb))
        assert intersects(a, b) == intersects(b, a)

    @given(rect_coords, rect_coords)
    def test_intersection_consistent_with_predicate(self, ca, cb):
        a = KPE(1, *_norm(ca))
        b = KPE(2, *_norm(cb))
        assert (intersection(a, b) is not None) == intersects(a, b)

    @given(rect_coords)
    def test_reflexive(self, c):
        a = KPE(1, *_norm(c))
        assert intersects(a, a)

    @given(rect_coords, rect_coords)
    def test_intersection_contained_in_both(self, ca, cb):
        a = KPE(1, *_norm(ca))
        b = KPE(2, *_norm(cb))
        result = intersection(a, b)
        if result is None:
            return
        xl, yl, xh, yh = result
        assert a.xl <= xl <= xh <= a.xh
        assert b.xl <= xl <= xh <= b.xh
        assert a.yl <= yl <= yh <= a.yh
        assert b.yl <= yl <= yh <= b.yh
