"""The CFG builder under repro-lint's flow rules.

Two layers: a golden suite pinning the exact edge sets for the control
shapes the flow rules depend on (try/finally routing, loop-else, nested
with, early return), and a hypothesis property over randomly generated
abrupt-free programs — every statement must be reachable from entry and
must reach exit, otherwise a dataflow verdict silently covers only part
of the function.

Edges are compared via ``CFG.edge_labels()``, which renders each node as
``kind@line`` (``entry``/``exit`` for the synthetic endpoints) — stable
across builder-internal node numbering.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import make_analysis, run_forward


def cfg_of(source):
    fn = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn.body)


# ----------------------------------------------------------------------
# golden edge sets
# ----------------------------------------------------------------------
class TestGoldenShapes:
    def test_try_finally_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(x):
                a = 1
                try:
                    b = risky(x)
                finally:
                    c = 3
                return b
            """
        )
        assert cfg.edge_labels(include_exc=False) == {
            ("entry", "assign@3"),
            ("assign@3", "try@4"),
            ("try@4", "assign@5"),
            ("assign@5", "assign@7"),  # body falls into finally
            ("assign@7", "return@8"),  # normal continuation
            ("assign@7", "exit"),  # exception re-raised after finally
            ("return@8", "exit"),
        }

    def test_loop_else_runs_only_without_break(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                else:
                    found = False
                done = True
            """
        )
        assert cfg.edge_labels() == {
            ("entry", "for@3"),
            ("for@3", "if@4"),  # iterate
            ("for@3", "assign@7"),  # exhausted -> else
            ("if@4", "break@5"),
            ("if@4", "for@3"),  # back edge
            ("break@5", "assign@8"),  # break skips the else
            ("assign@7", "assign@8"),
            ("assign@8", "exit"),
        }

    def test_nested_with_is_linear(self):
        cfg = cfg_of(
            """
            def f(a, b):
                with a:
                    with b:
                        x = 1
                    y = 2
            """
        )
        assert cfg.edge_labels() == {
            ("entry", "with@3"),
            ("with@3", "with@4"),
            ("with@4", "assign@5"),
            ("assign@5", "assign@6"),
            ("assign@6", "exit"),
        }

    def test_early_return_has_its_own_exit_edge(self):
        cfg = cfg_of(
            """
            def f(flag):
                if flag:
                    return 1
                x = 2
                return x
            """
        )
        assert cfg.edge_labels() == {
            ("entry", "if@3"),
            ("if@3", "return@4"),
            ("if@3", "assign@5"),  # false arm falls through the header
            ("return@4", "exit"),
            ("assign@5", "return@6"),
            ("return@6", "exit"),
        }

    def test_return_inside_try_unwinds_through_finally(self):
        cfg = cfg_of(
            """
            def f(flag):
                try:
                    if flag:
                        return 1
                    x = 2
                finally:
                    y = 3
                return 0
            """
        )
        edges = cfg.edge_labels()
        # the return at line 5 must NOT reach exit directly ...
        assert ("return@5", "exit") not in edges
        # ... it detours through the finally body,
        assert ("return@5", "assign@8") in edges
        # which continues both to exit (for the return) and onward.
        assert ("assign@8", "exit") in edges
        assert ("assign@8", "return@9") in edges

    def test_while_true_without_break_never_reaches_exit(self):
        cfg = cfg_of(
            """
            def f():
                while True:
                    x = 1
            """
        )
        edges = cfg.edge_labels()
        assert ("while@3", "assign@4") in edges
        assert ("assign@4", "while@3") in edges
        assert not any(dst == "exit" for _, dst in edges)

    def test_except_handler_entered_via_exception_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = risky(x)
                except ValueError:
                    y = 0
                return y
            """
        )
        normal = cfg.edge_labels(include_exc=False)
        exc_only = cfg.edge_labels() - normal
        assert ("assign@4", "assign@6") in exc_only  # raise -> handler
        assert ("assign@4", "return@7") in normal  # fallthrough
        assert ("assign@6", "return@7") in normal


# ----------------------------------------------------------------------
# structural invariants on every CFG
# ----------------------------------------------------------------------
class TestInvariants:
    def assert_well_formed(self, cfg):
        reachable = cfg.reachable()
        for node in cfg.statement_nodes():
            assert node.nid in reachable, (
                f"{node.describe()} unreachable from entry"
            )
        # dataflow must visit every reachable statement: run a trivial
        # "count me" analysis and check it produced an in-state per node.
        analysis = make_analysis(
            initial=frozenset,
            join=lambda a, b: a | b,
            transfer=lambda node, state: state | {node.nid},
        )
        result = run_forward(cfg, analysis)
        for node in cfg.statement_nodes():
            if node.nid in reachable:
                assert node.nid in result.in_states

    def test_shapes_from_the_rules_are_well_formed(self):
        for source in (
            "def f():\n    pass\n",
            "def f(x):\n    try:\n        a = x\n    except OSError:\n"
            "        b = 1\n    except ValueError as exc:\n        c = 2\n"
            "    else:\n        d = 3\n    finally:\n        e = 4\n",
            "def f(xs):\n    for x in xs:\n        if x:\n            "
            "continue\n        y = x\n",
            "def f(x):\n    match x:\n        case 1:\n            a = 1\n"
            "        case _:\n            b = 2\n",
            "def f(xs):\n    while xs:\n        xs = xs[1:]\n    else:\n"
            "        done = 1\n",
        ):
            self.assert_well_formed(cfg_of(source))


# ----------------------------------------------------------------------
# hypothesis: random abrupt-free programs
# ----------------------------------------------------------------------
# The generator emits only statements that fall through (no return /
# raise / break / continue, no `while True`), so every statement both is
# reachable from entry and reaches exit.  Abrupt control flow is pinned
# by the golden suite above instead, where the expected edges can be
# written down exactly.
_assign = st.builds(lambda i: f"x{i} = {i}", st.integers(0, 9))


def _block(stmts):
    return [line for stmt in stmts for line in stmt]


def _indent(block):
    return ["    " + line for line in block]


_statement = st.recursive(
    _assign.map(lambda s: [s]),
    lambda inner: st.one_of(
        # if / if-else
        st.builds(
            lambda cond, body, orelse: (
                [f"if x{cond}:"]
                + _indent(_block(body))
                + (["else:"] + _indent(_block(orelse)) if orelse else [])
            ),
            st.integers(0, 9),
            st.lists(inner, min_size=1, max_size=2),
            st.lists(inner, min_size=0, max_size=2),
        ),
        # for over a literal
        st.builds(
            lambda var, body: (
                [f"for i{var} in (1, 2):"] + _indent(_block(body))
            ),
            st.integers(0, 9),
            st.lists(inner, min_size=1, max_size=2),
        ),
        # while with a name test (terminating shape irrelevant: CFG only)
        st.builds(
            lambda cond, body: (
                [f"while x{cond}:"] + _indent(_block(body))
            ),
            st.integers(0, 9),
            st.lists(inner, min_size=1, max_size=2),
        ),
        # try/except/finally
        st.builds(
            lambda body, handler, final: (
                ["try:"]
                + _indent(_block(body))
                + ["except ValueError:"]
                + _indent(_block(handler))
                + (["finally:"] + _indent(_block(final)) if final else [])
            ),
            st.lists(inner, min_size=1, max_size=2),
            st.lists(inner, min_size=1, max_size=2),
            st.lists(inner, min_size=0, max_size=2),
        ),
        # with
        st.builds(
            lambda body: ["with ctx():"] + _indent(_block(body)),
            st.lists(inner, min_size=1, max_size=2),
        ),
    ),
    max_leaves=12,
)

_program = st.lists(_statement, min_size=1, max_size=5).map(
    lambda stmts: "def f(ctx, x0):\n" + "\n".join(_indent(_block(stmts))) + "\n"
)


class TestHypothesis:
    @settings(max_examples=120, deadline=None)
    @given(_program)
    def test_every_statement_reachable_and_reaches_exit(self, source):
        cfg = cfg_of(source)
        reachable = cfg.reachable()
        statement_ids = {node.nid for node in cfg.statement_nodes()}

        # (1) every statement is reachable from entry
        assert statement_ids <= reachable

        # (2) every statement reaches exit: walk the reverse graph
        seen = {cfg.exit}
        frontier = [cfg.exit]
        while frontier:
            nid = frontier.pop()
            for pred in cfg.predecessors(nid):
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        assert statement_ids <= seen

        # (3) the fixpoint solver assigns an in-state to every statement
        analysis = make_analysis(
            initial=frozenset,
            join=lambda a, b: a | b,
            transfer=lambda node, state: state | {node.nid},
        )
        result = run_forward(cfg, analysis)
        assert statement_ids <= set(result.in_states)
