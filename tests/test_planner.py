"""The cost-based join planner: profiles, costs, cache, and method="auto"."""

from __future__ import annotations

import pytest

from repro import JOIN_METHODS, SPATIAL_JOIN_METHODS, mb, spatial_join
from repro.bench.workloads import (
    PLANNER_PATTERNS,
    memory_for_fraction,
    planner_pair,
)
from repro.datasets import clustered_rects, uniform_rects
from repro.datasets.patterns import mixed_scale
from repro.io.costmodel import CostModel
from repro.planner import (
    DEFAULT_T_GRID,
    JoinPlan,
    PlanCandidate,
    PlannerCache,
    enumerate_candidates,
    estimate_pbsm,
    estimate_shj,
    estimate_sssj,
    plan_join,
    profile_join,
    relation_fingerprint,
)
from repro.planner.stats import RelationProfile

from tests.conftest import random_kpes


COST = CostModel()


# ----------------------------------------------------------------------
# profiles and fingerprints
# ----------------------------------------------------------------------
class TestRelationProfile:
    def test_profile_derivation(self):
        kpes = random_kpes(500, seed=7, max_edge=0.1)
        profile = RelationProfile.build(kpes)
        assert profile.n == 500
        # random_kpes edges are uniform on [0, 0.1): the mean is ~0.05.
        assert 0.03 < profile.avg_width < 0.07
        assert 0.03 < profile.avg_height < 0.07
        assert profile.coverage > 0
        assert profile.skew >= 1.0
        # E[w*h] of independent edges ~ E[w]*E[h].
        assert profile.avg_area == pytest.approx(
            profile.avg_width * profile.avg_height, rel=0.25
        )

    def test_empty_relation(self):
        profile = RelationProfile.build([])
        assert profile.n == 0
        assert profile.skew == 1.0

    def test_skew_orders_clustered_above_uniform(self):
        uniform = RelationProfile.build(uniform_rects(800, seed=1))
        clustered = RelationProfile.build(clustered_rects(800, seed=1))
        assert clustered.skew > uniform.skew

    def test_heavy_tail_shows_in_avg_area(self):
        uniform = RelationProfile.build(uniform_rects(800, seed=1))
        mixed = RelationProfile.build(mixed_scale(800, seed=1))
        uniform_gap = uniform.avg_area / (uniform.avg_width * uniform.avg_height)
        mixed_gap = mixed.avg_area / (mixed.avg_width * mixed.avg_height)
        assert mixed_gap > uniform_gap * 2

    def test_fingerprint_distinguishes_content(self):
        a = random_kpes(300, seed=1)
        b = random_kpes(300, seed=2)
        assert relation_fingerprint(a) == relation_fingerprint(a)
        assert relation_fingerprint(a) != relation_fingerprint(b)
        assert relation_fingerprint(a) != relation_fingerprint(a[:-1])


class TestJoinProfile:
    def test_estimates_result_cardinality(self, small_pair):
        left, right = small_pair
        actual = len(spatial_join(left, right, mb(0.25)))
        jp = profile_join(left, right)
        assert jp.n_left == len(left)
        assert jp.n_right == len(right)
        # Order-of-magnitude sanity: the planner only needs ranking.
        assert actual / 4 <= jp.est_results <= actual * 4

    def test_profiles_carry_joint_space(self, small_pair):
        jp = profile_join(*small_pair)
        xl, yl, xh, yh = jp.space
        assert xl < xh and yl < yh


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
class TestCostRanking:
    def _profile(self, n):
        left = random_kpes(n, seed=3, max_edge=0.05)
        right = random_kpes(n, seed=4, start_oid=10**6, max_edge=0.05)
        return profile_join(left, right)

    def test_costs_monotone_in_input_size(self):
        """Bigger inputs never get cheaper, for every estimator."""
        small = self._profile(300)
        large = self._profile(3000)
        memory = 16_000
        for estimate in (estimate_pbsm, estimate_shj, estimate_sssj):
            cheap = estimate(small, memory, COST)
            dear = estimate(large, memory, COST)
            assert dear.total_seconds > cheap.total_seconds, estimate.__name__

    def test_pbsm_cost_monotone_in_memory(self):
        jp = self._profile(2000)
        tight = estimate_pbsm(jp, 8_000, COST)
        roomy = estimate_pbsm(jp, 160_000, COST)
        assert roomy.total_seconds < tight.total_seconds

    def test_estimates_have_breakdown_and_predictions(self):
        jp = self._profile(500)
        est = estimate_pbsm(jp, 16_000, COST)
        assert est.total_seconds == pytest.approx(
            est.io_seconds + est.cpu_seconds
        )
        assert est.breakdown
        assert est.predicted["n_partitions"] >= 1
        assert est.predicted["detected_pairs"] >= est.predicted["est_results"]


class TestEnumeration:
    def test_candidates_cover_methods_and_sort_by_cost(self, small_pair):
        jp = profile_join(*small_pair)
        candidates = enumerate_candidates(jp, 16_000, COST)
        methods = {c.method for c in candidates}
        assert {"pbsm", "s3j", "sssj", "shj"} <= methods
        totals = [c.estimate.total_seconds for c in candidates]
        assert totals == sorted(totals)
        # The PBSM family spans the full internal x t grid.
        pbsm = [c for c in candidates if c.method == "pbsm"]
        assert len(pbsm) >= 3 * len(DEFAULT_T_GRID)

    def test_methods_filter(self, small_pair):
        jp = profile_join(*small_pair)
        only = enumerate_candidates(jp, 16_000, COST, methods=("sssj",))
        assert {c.method for c in only} == {"sssj"}

    def test_describe_is_readable(self, small_pair):
        jp = profile_join(*small_pair)
        candidates = enumerate_candidates(jp, 16_000, COST)
        described = " ".join(c.describe() for c in candidates)
        assert "pbsm(" in described and "t=1.2" in described


# ----------------------------------------------------------------------
# planner cache
# ----------------------------------------------------------------------
class TestPlannerCache:
    def test_profile_cache_hits_on_same_content(self, small_pair):
        left, right = small_pair
        cache = PlannerCache()
        plan_join(left, right, 16_000, cache=cache)
        first = dict(cache.stats())
        plan_join(list(left), list(right), 16_000, cache=cache)
        second = cache.stats()
        assert second["plan_hits"] == first["plan_hits"] + 1
        assert second["profile_misses"] == first["profile_misses"]

    def test_cached_plan_skips_profiling(self, small_pair):
        left, right = small_pair
        cache = PlannerCache()
        cold = plan_join(left, right, 16_000, cache=cache)
        cold_choice = cold.chosen.describe()
        cold_seconds = cold.planning_seconds
        warm = plan_join(left, right, 16_000, cache=cache)
        assert warm.from_cache
        assert warm.chosen.describe() == cold_choice
        # A cache hit must cost (near) nothing: no re-profiling.
        assert warm.planning_seconds < cold_seconds

    def test_memory_budget_is_part_of_the_key(self, small_pair):
        left, right = small_pair
        cache = PlannerCache()
        plan_join(left, right, 16_000, cache=cache)
        other = plan_join(left, right, 64_000, cache=cache)
        assert not other.from_cache

    def test_plan_eviction_bounds_the_cache(self, small_pair):
        left, right = small_pair
        cache = PlannerCache(max_plans=2)
        for memory in (8_000, 16_000, 32_000):
            plan_join(left, right, memory, cache=cache)
        assert cache.stats()["plans"] <= 2

    def test_eviction_is_lru_not_fifo(self, small_pair):
        """A hit refreshes recency: the hot query survives eviction."""
        left, right = small_pair
        cache = PlannerCache(max_plans=2)
        plan_join(left, right, 8_000, cache=cache)   # A (oldest inserted)
        plan_join(left, right, 16_000, cache=cache)  # B
        plan_join(left, right, 8_000, cache=cache)   # touch A
        plan_join(left, right, 32_000, cache=cache)  # C evicts B, not A
        assert plan_join(left, right, 8_000, cache=cache).from_cache
        assert not plan_join(left, right, 16_000, cache=cache).from_cache

    def test_cache_is_thread_safe_under_concurrent_planning(self, small_pair):
        """The serve path plans from worker threads against one shared
        cache; hammer it from several threads and demand consistency."""
        import threading

        left, right = small_pair
        cache = PlannerCache(max_plans=8)
        errors = []

        def worker(memory):
            try:
                for _ in range(5):
                    plan = plan_join(left, right, memory, cache=cache)
                    assert plan.chosen is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                raise

        threads = [
            threading.Thread(target=worker, args=(8_000 + 1_000 * i,))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = cache.stats()
        assert stats["plans"] <= 8
        # 4 distinct keys x 5 rounds: every round after the first hits.
        assert stats["plan_hits"] >= 4 * 4


# ----------------------------------------------------------------------
# end-to-end: method="auto"
# ----------------------------------------------------------------------
def _pair_set(result):
    return set(result.pairs)


WORKLOADS = [
    ("uniform", lambda: (
        uniform_rects(400, seed=3),
        uniform_rects(400, seed=4, start_oid=10**6),
    )),
    ("clustered", lambda: (
        clustered_rects(400, seed=5),
        clustered_rects(400, seed=6, start_oid=10**6),
    )),
    ("mixed", lambda: (
        mixed_scale(400, seed=7),
        mixed_scale(400, seed=8, start_oid=10**6),
    )),
]


class TestAutoMethod:
    @pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_auto_matches_every_fixed_method(self, name, make):
        left, right = make()
        memory = 6_000
        auto = spatial_join(left, right, memory, method="auto")
        expected = _pair_set(auto)
        assert expected, "workload must produce results"
        for method in JOIN_METHODS:
            fixed = spatial_join(left, right, memory, method=method)
            assert _pair_set(fixed) == expected, (name, method)

    def test_auto_attaches_plan(self, small_pair):
        left, right = small_pair
        result = spatial_join(left, right, 16_000, method="auto")
        assert isinstance(result.plan, JoinPlan)
        assert isinstance(result.plan.chosen, PlanCandidate)
        assert result.plan.last_result is result

    def test_choice_is_cost_based_not_hardcoded(self):
        """Different workload shapes must produce different choices.

        Small inputs all route to SSSJ (correctly — sorting a few pages
        beats partitioning), so this runs at a size where the regimes
        separate: the planner must not collapse to one answer.
        """
        chosen = set()
        for pattern in PLANNER_PATTERNS:
            left, right = planner_pair(pattern, 3000)
            for fraction in (0.15, 1.0):
                memory = memory_for_fraction(left, right, fraction)
                plan = plan_join(left, right, memory)
                chosen.add(plan.chosen.describe())
        assert len(chosen) > 1

    def test_auto_rejects_unknown_method(self, small_pair):
        left, right = small_pair
        with pytest.raises(ValueError, match="auto"):
            spatial_join(left, right, 16_000, method="nope")

    def test_registry_exposes_auto(self):
        assert "auto" in SPATIAL_JOIN_METHODS
        assert "auto" not in JOIN_METHODS


class TestExplain:
    def test_explain_lists_chosen_and_rejected(self, small_pair):
        left, right = small_pair
        plan = plan_join(left, right, 16_000)
        text = plan.explain()
        assert "JOIN PLAN" in text
        assert plan.chosen.describe() in text
        # All rejected candidates are visible too.
        for candidate in plan.candidates:
            assert candidate.describe() in text
        assert "estimated vs. actual" not in text

    def test_explain_after_execution_reports_actuals(self, small_pair):
        left, right = small_pair
        plan = plan_join(left, right, 16_000)
        result = plan.execute(left, right)
        text = plan.explain(verbose=True)
        assert "estimated vs. actual" in text
        assert f"{result.stats.n_results:,}" in text
        assert "sim seconds" in text
        assert "phase estimate" in text

    def test_estimates_land_near_actuals(self, small_pair):
        """The EXPLAIN est-vs-actual ratio stays within a small factor."""
        left, right = small_pair
        plan = plan_join(left, right, 16_000)
        result = plan.execute(left, right)
        est = plan.chosen.estimate.total_seconds
        actual = result.stats.sim_seconds
        assert actual / 3 <= est <= actual * 3
